"""Fig. 11 — percentage of gadgets removed by randomization.

Regenerates the per-application removal series with the ROPgadget-style
scanner (paper: ~98% average; no payload can be assembled afterwards)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig11


def test_fig11(runner, benchmark, show):
    result = run_once(benchmark, fig11, runner)
    show(format_result(result))
    gate_result(result)
