"""Micro-benchmark: span tracing must stay cheap when enabled.

Compares a sequential three-spec sweep with a live
:class:`~repro.obs.trace.Tracer` against the same sweep with tracing
off, and asserts the overhead is below 5% of host runtime (ISSUE 6
acceptance criterion).  Tracing adds a handful of spans per spec
(spec -> attempt -> build/randomize/simulate), each costing one dict,
two clock reads, and a SHA-256 of a short key — nothing per retired
instruction — so the measured overhead should be far inside the budget.

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py

or through pytest: ``pytest benchmarks/bench_trace_overhead.py -q``.
Timing uses min-of-N interleaved repetitions, which is robust to
transient host noise.
"""

import time

from repro.harness import RunSpec, sweep
from repro.obs.trace import Tracer
from repro.tools.benchgate import gate

MAX_INSTRUCTIONS = 30_000
REPETITIONS = 5
OVERHEAD_LIMIT = 0.05

SPECS = [
    RunSpec("gcc", "baseline", max_instructions=MAX_INSTRUCTIONS,
            scale=0.5),
    RunSpec("gcc", "naive_ilr", max_instructions=MAX_INSTRUCTIONS,
            scale=0.5),
    RunSpec("gcc", "vcfr", 64, max_instructions=MAX_INSTRUCTIONS,
            scale=0.5),
]


def _run_once(traced: bool) -> float:
    """One fresh sequential sweep; returns host seconds."""
    tracer = Tracer() if traced else None
    start = time.perf_counter()
    sweep(list(SPECS), workers=0, tracer=tracer)
    return time.perf_counter() - start


def measure_overhead():
    """Returns (seconds_plain, seconds_traced, overhead_fraction)."""
    # Warm both paths once (decode caches, allocator, module imports).
    _run_once(False)
    _run_once(True)
    plain = []
    traced = []
    for _ in range(REPETITIONS):  # interleave to share host noise
        plain.append(_run_once(False))
        traced.append(_run_once(True))
    best_plain = min(plain)
    best_traced = min(traced)
    overhead = (best_traced - best_plain) / best_plain
    return best_plain, best_traced, overhead


def test_span_tracing_overhead_under_5_percent():
    plain, traced, overhead = measure_overhead()
    print(
        "\ntrace overhead: plain %.4fs, traced %.4fs -> %+.2f%%"
        % (plain, traced, 100 * overhead)
    )
    gate("span_trace_overhead", "tracing_overhead", round(overhead, 4),
         OVERHEAD_LIMIT, op="<")


if __name__ == "__main__":
    test_span_tracing_overhead_under_5_percent()
    print("OK: span tracing overhead within the %.0f%% budget"
          % (100 * OVERHEAD_LIMIT))
