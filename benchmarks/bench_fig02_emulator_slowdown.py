"""Fig. 2 — software-ILR emulator slowdown vs native execution.

Regenerates the per-application slowdown series (paper: hundreds of
times) from the deterministic host-cost emulator and the cycle simulator."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig2


def test_fig2(runner, benchmark, show):
    result = run_once(benchmark, fig2, runner)
    show(format_result(result))
    gate_result(result)
