"""Ablation — IL1 next-line prefetcher on/off per execution mode
(Table I's 'instruction prefetch' row, measured)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import prefetcher


def test_prefetcher(runner, benchmark, show):
    result = run_once(benchmark, prefetcher, runner)
    show(format_result(result))
    gate_result(result)
