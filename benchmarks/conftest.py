"""Shared fixtures for the per-figure benchmark suite.

All benches share one :class:`~repro.harness.Runner`, so each
(workload, mode, DRC-size) cycle simulation happens exactly once per
pytest session regardless of how many figures consume it.
"""

import pytest

from repro.harness import Runner
from repro.tools.benchgate import emit_experiment

#: Per-run instruction budget.  300k instructions gives steady-state cache
#: and DRC behaviour for every workload while keeping the full suite
#: within a few minutes of wall-clock.
BENCH_MAX_INSTRUCTIONS = 300_000


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(max_instructions=BENCH_MAX_INSTRUCTIONS)


@pytest.fixture
def show(request):
    """Print a regenerated table through pytest's output capture.

    The whole point of the bench suite is the figure/table data it
    regenerates; this writes it to the real stdout so
    ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
    records it.
    """
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _show(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print("\n" + text, flush=True)
        else:  # pragma: no cover - capture disabled already
            print("\n" + text, flush=True)

    return _show


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end simulations — re-running
    them for statistical timing would multiply minutes of simulation per
    figure for no measurement benefit.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)


def gate_result(result):
    """Emit ``BENCH_<exp_id>.json`` for an experiment, then gate on it.

    The report is written before the assert so failing checks still
    land on disk for the perf-trajectory diff."""
    emit_experiment(result)
    assert result.passed, [d for d, ok in result.checks if not ok]
