"""Ablation — layout spread factor (entropy) vs performance.

The paper's core claim, quantified: under VCFR entropy is free (IPC is
spread-insensitive) while naive ILR pays for every extra bit."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import spread_factor


def test_spread_factor(runner, benchmark, show):
    result = run_once(benchmark, spread_factor, runner)
    show(format_result(result))
    gate_result(result)
