"""Fig. 4 — normalized IPC of straightforward hardware ILR.

Regenerates the per-application normalized-IPC series (paper: average
drops to 0.61-0.66 of baseline)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig4


def test_fig4(runner, benchmark, show):
    result = run_once(benchmark, fig4, runner)
    show(format_result(result))
    gate_result(result)
