"""Ablation — context-switch sensitivity (§IV-D system-level impact).

The RDR tables are part of the process context; switches flush the DRC.
Measures how VCFR IPC degrades as scheduling quanta shrink."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import context_switching


def test_context_switching(runner, benchmark, show):
    result = run_once(benchmark, context_switching, runner)
    show(format_result(result))
    gate_result(result)
