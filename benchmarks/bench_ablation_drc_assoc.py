"""Ablation — DRC associativity (paper §IV-B claims direct-mapped suffices).

Compares direct-mapped vs 4-way vs fully-associative 128-entry DRCs on
the translation-heavy workloads and checks the paper's claim that the
direct-mapped design is performance-adequate."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import drc_associativity


def test_drc_associativity(runner, benchmark, show):
    result = run_once(benchmark, drc_associativity, runner)
    show(format_result(result))
    gate_result(result)
