"""Fig. 14 — DRC miss rates under different DRC sizes.

Paper: 4.5% average at 512 entries, 20.6% at 64."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig14


def test_fig14(runner, benchmark, show):
    result = run_once(benchmark, fig14, runner)
    show(format_result(result))
    gate_result(result)
