"""Fig. 15 — DRC dynamic power overhead (paper: 0.18% of CPU dynamic power)."""

from conftest import run_once

from repro.harness import format_result
from repro.harness.experiments import fig15


def test_fig15(runner, benchmark, show):
    result = run_once(benchmark, fig15, runner)
    show(format_result(result))
    assert result.passed, [d for d, ok in result.checks if not ok]
