"""Fig. 15 — DRC dynamic power overhead (paper: 0.18% of CPU dynamic power)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig15


def test_fig15(runner, benchmark, show):
    result = run_once(benchmark, fig15, runner)
    show(format_result(result))
    gate_result(result)
