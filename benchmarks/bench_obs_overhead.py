"""Micro-benchmark: the always-on observability path must stay cheap.

Compares a 50k-instruction cycle simulation with the always-on metrics
path active (global registry enabled + periodic checkpointing into a
null event log) against the same simulation with everything disabled,
and asserts the overhead is below 5% of host runtime (ISSUE 1
acceptance criterion).

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or through pytest: ``pytest benchmarks/bench_obs_overhead.py -q``.
Timing uses min-of-N interleaved repetitions, which is robust to
transient host noise; the bound itself (5%) is ~10x the typical
measured overhead (one integer compare per retired instruction plus a
per-run registry sync).
"""

import time

from repro.arch.cpu import CycleCPU
from repro.ilr import RandomizerConfig, make_flow, randomize
from repro.obs.metrics import get_registry
from repro.tools.benchgate import gate
from repro.workloads import build_image

MAX_INSTRUCTIONS = 50_000
REPETITIONS = 5
OVERHEAD_LIMIT = 0.05


def _build_program():
    image = build_image("gcc", scale=0.5)
    return randomize(image, RandomizerConfig(seed=42))


def _run_once(program, instrumented: bool) -> float:
    """One fresh simulation; returns host seconds for the run itself."""
    cpu = CycleCPU(
        program.vcfr_image,
        make_flow("vcfr", program),
        checkpoint_interval=MAX_INSTRUCTIONS // 100 if instrumented else 0,
    )
    registry = get_registry()
    was_enabled = registry.enabled
    registry.enabled = instrumented
    try:
        start = time.perf_counter()
        cpu.run(max_instructions=MAX_INSTRUCTIONS)
        return time.perf_counter() - start
    finally:
        registry.enabled = was_enabled


def measure_overhead():
    """Returns (seconds_plain, seconds_instrumented, overhead_fraction)."""
    program = _build_program()
    # Warm both paths once (decode caches, allocator, JIT-less but fair).
    _run_once(program, False)
    _run_once(program, True)
    plain = []
    instrumented = []
    for _ in range(REPETITIONS):  # interleave to share host noise
        plain.append(_run_once(program, False))
        instrumented.append(_run_once(program, True))
    best_plain = min(plain)
    best_instrumented = min(instrumented)
    overhead = (best_instrumented - best_plain) / best_plain
    return best_plain, best_instrumented, overhead


def test_always_on_metrics_overhead_under_5_percent():
    plain, instrumented, overhead = measure_overhead()
    print(
        "\nobs overhead: plain %.4fs, instrumented %.4fs -> %+.2f%%"
        % (plain, instrumented, 100 * overhead)
    )
    gate("obs_overhead", "metrics_overhead", round(overhead, 4),
         OVERHEAD_LIMIT, op="<")


if __name__ == "__main__":
    test_always_on_metrics_overhead_under_5_percent()
    print("OK: always-on metrics overhead within the %.0f%% budget"
          % (100 * OVERHEAD_LIMIT))
