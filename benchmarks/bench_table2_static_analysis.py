"""Table II — static analysis of control flow per application.

Regenerates the direct/indirect transfer and call counts and checks the
shape facts (gcc most direct transfers; xalan most indirect calls)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import table2


def test_table2(runner, benchmark, show):
    result = run_once(benchmark, table2, runner)
    show(format_result(result))
    gate_result(result)
