"""Ablation — page-confined randomization (§IV-D iTLB mitigation).

Confining the permutation within pages trades entropy for a large
reduction in naive-ILR iTLB misses, as the paper suggests."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import page_confined_layout


def test_page_confined_layout(runner, benchmark, show):
    result = run_once(benchmark, page_confined_layout, runner)
    show(format_result(result))
    gate_result(result)
