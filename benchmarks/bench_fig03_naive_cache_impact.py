"""Fig. 3 — impact of naive hardware ILR on the IL1 and L2.

Regenerates the IL1 miss-rate inflation, prefetch-waste increase and L2
pressure increase series (paper: x9.4 avg IL1, one ~558x outlier)."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig3


def test_fig3(runner, benchmark, show):
    result = run_once(benchmark, fig3, runner)
    show(format_result(result))
    gate_result(result)
