"""Fig. 12 — VCFR speedup over straightforward hardware ILR (DRC 128).

Paper: average 1.63x; namd/h264ref/mcf/xalan exceed 2x."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig12


def test_fig12(runner, benchmark, show):
    result = run_once(benchmark, fig12, runner)
    show(format_result(result))
    gate_result(result)
