"""Throughput benchmark: the quick fuzz tier must stay quick.

``make verify`` gates on ``make fuzz-quick`` pushing 200 seeded
programs through the full engine × flow differential matrix in under a
minute.  This benchmark measures the sustained rate on a smaller fixed
batch and asserts a conservative floor well above what the 60-second
budget requires, so a throughput regression (a slower oracle leg, a
generator producing bloated programs) fails here before it slows the
verification gate.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fuzz_throughput.py

or through pytest: ``pytest benchmarks/bench_fuzz_throughput.py -q``.
"""

import time

from repro.qa import FuzzSession, OracleConfig
from repro.tools.benchgate import gate

PROGRAMS = 40
SEED = 1
#: programs/minute floor.  The `make fuzz-quick` gate needs 200 in 60 s
#: = 200/min; a healthy host sustains well over 1000/min, so 400/min
#: trips on a real 3-4x regression, not on host noise.
MIN_PROGRAMS_PER_MINUTE = 400


def measure() -> tuple:
    session = FuzzSession(SEED, PROGRAMS, oracle_config=OracleConfig())
    t0 = time.perf_counter()
    stats = session.run()
    elapsed = time.perf_counter() - t0
    return stats, elapsed


def test_fuzz_throughput():
    stats, elapsed = measure()
    rate = stats.programs / elapsed * 60
    print(
        "\nfuzz throughput: %d programs, %d engine runs in %.2fs "
        "-> %.0f programs/min (floor %d)"
        % (stats.programs, stats.engine_runs, elapsed, rate,
           MIN_PROGRAMS_PER_MINUTE)
    )
    gate("fuzz_throughput", "divergences", len(stats.findings), 0,
         op="==")
    gate("fuzz_throughput", "programs_per_minute", round(rate, 1),
         MIN_PROGRAMS_PER_MINUTE)


if __name__ == "__main__":
    test_fuzz_throughput()
    print("OK: fuzz throughput above %d programs/min"
          % MIN_PROGRAMS_PER_MINUTE)
