"""Table I — qualitative comparison of the three execution modes.

Regenerates the paper's Table I from measured simulator behaviour and
asserts the four qualitative properties.
"""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import table1


def test_table1_mode_properties(runner, benchmark, show):
    result = run_once(benchmark, table1, runner)
    show(format_result(result))
    gate_result(result)
