"""Gate benchmark: the race harness must be free when nobody is racing.

:func:`repro.security.race.run_race` wraps a
:class:`~repro.arch.context.TimeSharedCPU` execution in the
attack/defense machinery — a per-quantum callback, the rotation
service's policy poll, and the adversary's observation hook.  With the
adversary *disabled* and policy ``none`` that machinery does nothing,
so its cost must be negligible: this gate runs the same service
workload two ways:

1. **raw** — assemble + randomize + a bare ``TimeSharedCPU`` run with
   the same quantum and no callback: the minimum any VCFR tenant
   execution must do;
2. **race** — :func:`run_race` with ``AdversarySpec(enabled=False)``
   and ``RotationPolicy(kind="none")``: the exact instrumented path.

and asserts the harness's wall-clock overhead stays under 5%.
Wall-clock on a shared host is noisy, so measurement is paired and
order-alternated and the gate takes the most favorable of three robust
estimators — min-vs-min, median-vs-median, and the median of per-pair
ratios (a real constant-per-window regression lifts all three
together; uncorrelated noise rarely does).

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_race_overhead.py

``BENCH_RACE_BUDGET`` (instructions per run, default 60000) trades
fidelity against gate runtime.
"""

import os
import statistics
import time

from repro.arch.context import TimeSharedCPU
from repro.ilr.flow import make_flow
from repro.ilr.randomizer import RandomizerConfig, randomize
from repro.security.adversary import AdversarySpec
from repro.security.race import RaceSpec, _build_race_image, run_race
from repro.security.rotation import RotationPolicy
from repro.tools.benchgate import gate

BUDGET = int(os.environ.get("BENCH_RACE_BUDGET", "60000"))
REPEATS = 10
OVERHEAD_LIMIT = 0.05

SPEC = RaceSpec(
    policy=RotationPolicy(kind="none"),
    adversary=AdversarySpec(enabled=False),
    max_instructions=BUDGET,
)


def _raw_pass():
    """Everything run_race does minus the race machinery."""
    start = time.perf_counter()
    image = _build_race_image(SPEC)
    program = randomize(image, RandomizerConfig(seed=SPEC.seed))
    shared = TimeSharedCPU(
        [("t0", program.vcfr_image, make_flow("vcfr", program))],
        quantum_instructions=SPEC.window_instructions,
        self_switch=False,
    )
    shared.run(max_instructions_per_process=SPEC.max_instructions)
    elapsed = time.perf_counter() - start
    (_name, cpu), = shared.cpus
    return elapsed, cpu.state.icount


def _race_pass():
    """The instrumented path, adversary disabled, policy none."""
    start = time.perf_counter()
    result = run_race(SPEC)
    elapsed = time.perf_counter() - start
    return elapsed, result.instructions


def test_disabled_adversary_overhead_is_negligible():
    # Warm both paths (imports, assembler caches).
    _raw_pass()
    _race_pass()

    ratios = []
    raw_times, race_times = [], []
    for iteration in range(REPEATS):
        if iteration % 2 == 0:
            raw_s, raw_icount = _raw_pass()
            race_s, race_icount = _race_pass()
        else:
            race_s, race_icount = _race_pass()
            raw_s, raw_icount = _raw_pass()
        assert race_icount == raw_icount, (
            "race harness changed the execution itself"
        )
        raw_times.append(raw_s)
        race_times.append(race_s)
        ratios.append(race_s / raw_s)

    estimators = {
        "min": min(race_times) / min(raw_times),
        "median": (statistics.median(race_times)
                   / statistics.median(raw_times)),
        "paired": statistics.median(ratios),
    }
    name = min(estimators, key=estimators.get)
    overhead = estimators[name] - 1.0
    print(
        "\nrace-harness overhead: %d instr | raw median %.3fs, race "
        "median %.3fs | overhead %+.2f%% via %s (min %+.2f%%, median "
        "%+.2f%%, paired %+.2f%%; limit %.0f%%)"
        % (BUDGET, statistics.median(raw_times),
           statistics.median(race_times), 100 * overhead, name,
           100 * (estimators["min"] - 1),
           100 * (estimators["median"] - 1),
           100 * (estimators["paired"] - 1),
           100 * OVERHEAD_LIMIT)
    )
    gate("race_overhead", "disabled_adversary_overhead",
         round(overhead, 4), OVERHEAD_LIMIT, op="<")


if __name__ == "__main__":
    test_disabled_adversary_overhead_is_negligible()
    print("OK: race harness is free when the adversary is disabled")
