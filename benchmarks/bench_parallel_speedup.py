"""Gate benchmark: the sweep engine must actually buy wall-clock time.

Runs the cold experiment-suite sweep (every cycle-simulation RunSpec the
paper suite needs) three ways and asserts the contract ISSUE 2 commits
to:

1. **cold sequential** — baseline wall-clock, no cache;
2. **cold parallel** — same specs, ``--workers 4``: results must be
   bit-identical and, when the host actually has >= 4 cores, at least
   1.8x faster (>= 2 cores: >= 1.2x — the threshold scales with the
   parallelism the machine can physically deliver; on a single-core host
   the speedup is reported, and only a bounded-overhead sanity check is
   enforced, since no process pool can beat sequential there);
3. **warm cached** — a rerun against the populated result cache: zero
   ``simulate`` profiler phases and near-instant (< 20% of the cold
   sequential time).

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py

or through pytest: ``pytest benchmarks/bench_parallel_speedup.py -q``.
``BENCH_SWEEP_BUDGET`` (instructions per run, default 20000) trades
fidelity against gate runtime.
"""

import os
import shutil
import tempfile
import time

from repro.harness import Runner, suite_specs
from repro.harness.spec import RunSpec
from repro.tools.benchgate import gate

WORKERS = 4
BUDGET = int(os.environ.get("BENCH_SWEEP_BUDGET", "20000"))
SPEEDUP_4CORE = 1.8
SPEEDUP_2CORE = 1.2
#: Pool bring-up + pickling overhead tolerated on a single-core host.
SINGLE_CORE_SLOWDOWN_LIMIT = 1.6
WARM_FRACTION_LIMIT = 0.20


def _suite() -> list:
    """The cold suite: every distinct cycle-simulation spec the paper
    experiments need (emulation excluded: this gate times the cycle
    simulator's sweep)."""
    runner = Runner(max_instructions=BUDGET)
    return [spec for spec in suite_specs(runner) if spec.is_simulation]


def _timed_sweep(specs, workers=0, cache_dir=None):
    """(seconds, results-as-dicts, runner) for one fresh sweep."""
    runner = Runner(max_instructions=BUDGET, workers=workers,
                    cache_dir=cache_dir)
    start = time.perf_counter()
    runner.prefetch(specs)
    elapsed = time.perf_counter() - start
    results = [runner.run(spec).as_dict() for spec in specs]
    return elapsed, results, runner


def test_parallel_sweep_speedup_and_warm_cache():
    specs = _suite()
    cache_dir = tempfile.mkdtemp(prefix="bench-sweep-cache-")
    try:
        seq_s, seq_results, _ = _timed_sweep(specs)
        par_s, par_results, _ = _timed_sweep(specs, workers=WORKERS,
                                             cache_dir=cache_dir)
        warm_s, warm_results, warm_runner = _timed_sweep(
            specs, workers=WORKERS, cache_dir=cache_dir
        )

        cores = os.cpu_count() or 1
        speedup = seq_s / par_s if par_s else float("inf")
        print(
            "\nparallel sweep: %d specs @ %d instr, %d cores | "
            "sequential %.2fs, %d workers %.2fs (%.2fx), warm %.2fs"
            % (len(specs), BUDGET, cores, seq_s, WORKERS, par_s, speedup,
               warm_s)
        )

        # Correctness before speed: the pool and the cache must be
        # invisible in the numbers.
        assert par_results == seq_results, (
            "parallel sweep changed simulation results"
        )
        assert warm_results == seq_results, (
            "cached results differ from fresh simulation"
        )

        # Warm rerun: zero simulations, near-instant.
        assert "simulate" not in warm_runner.profiler.stats, (
            "warm rerun still performed cycle simulations"
        )
        assert warm_runner.cache.stats()["hits"] == len(specs)
        gate("parallel_speedup", "warm_fraction",
             round(warm_s / seq_s, 4), WARM_FRACTION_LIMIT, op="<")

        # Speedup, scaled to what the host can physically provide.
        if cores >= 4:
            gate("parallel_speedup", "speedup_4core",
                 round(speedup, 2), SPEEDUP_4CORE)
        elif cores >= 2:
            gate("parallel_speedup", "speedup_2core",
                 round(speedup, 2), SPEEDUP_2CORE)
        else:
            # One core: parallel cannot win; just bound the overhead.
            gate("parallel_speedup", "single_core_slowdown",
                 round(par_s / seq_s, 4), SINGLE_CORE_SLOWDOWN_LIMIT,
                 op="<=")
            print("single-core host: %.1fx threshold not applicable, "
                  "overhead bound %.2fx enforced instead"
                  % (SPEEDUP_4CORE, SINGLE_CORE_SLOWDOWN_LIMIT))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _smoke_spec_sanity():
    # The suite must contain the DRC sweep (the sweep-shaped workload
    # this engine exists for).
    specs = _suite()
    drc_sizes = {spec.drc_entries for spec in specs
                 if spec.mode == "vcfr"}
    assert {64, 128, 512} <= drc_sizes, drc_sizes
    assert all(isinstance(spec, RunSpec) for spec in specs)


if __name__ == "__main__":
    _smoke_spec_sanity()
    test_parallel_sweep_speedup_and_warm_cache()
    print("OK: parallel sweep + warm cache within budget")
