"""Gate benchmark: the fleet harness must cost ~nothing over time-sharing.

:func:`repro.fleet.run_fleet` wraps per-tenant :class:`CycleCPU` slices
in the datacenter machinery — arrival admission, per-core scheduling,
queue accounting, and latency attribution.  For a single saturated
tenant on one core that machinery schedules exactly the same back-to-
back quanta a bare :class:`~repro.arch.context.TimeSharedCPU` loop
runs, so its cost must be negligible: this gate runs the same service
workload two ways:

1. **raw** — assemble + randomize + a bare ``TimeSharedCPU`` run with
   the same quantum and no callback: the minimum any VCFR tenant
   execution must do;
2. **fleet** — :func:`run_fleet` with one tenant, one core, and a
   saturation trace (every request arrives at cycle zero), sized so
   the request work equals the raw budget exactly.

and asserts the harness's wall-clock overhead stays under 5%.
Wall-clock on a shared host is noisy, so measurement is paired and
order-alternated and the gate takes the most favorable of three robust
estimators — min-vs-min, median-vs-median, and the median of per-pair
ratios (a real constant-per-quantum regression lifts all three
together; uncorrelated noise rarely does).

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_fleet_overhead.py

``BENCH_FLEET_BUDGET`` (instructions per run, default 60000) trades
fidelity against gate runtime.
"""

import os
import statistics
import time

from repro.arch.context import TimeSharedCPU
from repro.fleet import ArrivalSpec, FleetSpec, run_fleet
from repro.ilr.flow import make_flow
from repro.ilr.randomizer import RandomizerConfig, randomize
from repro.security.race import build_service_image
from repro.tools.benchgate import gate

BUDGET = int(os.environ.get("BENCH_FLEET_BUDGET", "60000"))
REPEATS = 10
OVERHEAD_LIMIT = 0.05

REQUEST_INSTRUCTIONS = 600
QUANTUM = 2_000

SPEC = FleetSpec(
    tenants=1,
    cores=1,
    quantum_instructions=QUANTUM,
    request_instructions=REQUEST_INSTRUCTIONS,
    # Saturation: the whole trace is pending from cycle zero, so the
    # scheduler runs back-to-back quanta exactly like the raw loop.
    arrival=ArrivalSpec(
        kind="uniform",
        requests=BUDGET // REQUEST_INSTRUCTIONS,
        mean_gap=0,
    ),
    max_instructions=BUDGET,
)


def _raw_pass():
    """Everything run_fleet does minus the fleet machinery."""
    start = time.perf_counter()
    image = build_service_image()
    program = randomize(image, RandomizerConfig(seed=SPEC.seed))
    shared = TimeSharedCPU(
        [("t0", program.vcfr_image, make_flow("vcfr", program))],
        quantum_instructions=SPEC.quantum_instructions,
        self_switch=False,
    )
    shared.run(max_instructions_per_process=BUDGET)
    elapsed = time.perf_counter() - start
    (_name, cpu), = shared.cpus
    return elapsed, cpu.state.icount


def _fleet_pass():
    """The instrumented path: one saturated tenant, one core."""
    start = time.perf_counter()
    result = run_fleet(SPEC)
    elapsed = time.perf_counter() - start
    return elapsed, result.instructions


def test_fleet_harness_overhead_is_negligible():
    # Warm both paths (imports, assembler caches).
    _raw_pass()
    _fleet_pass()

    ratios = []
    raw_times, fleet_times = [], []
    for iteration in range(REPEATS):
        if iteration % 2 == 0:
            raw_s, raw_icount = _raw_pass()
            fleet_s, fleet_icount = _fleet_pass()
        else:
            fleet_s, fleet_icount = _fleet_pass()
            raw_s, raw_icount = _raw_pass()
        assert fleet_icount == raw_icount, (
            "fleet harness changed the execution itself"
        )
        raw_times.append(raw_s)
        fleet_times.append(fleet_s)
        ratios.append(fleet_s / raw_s)

    estimators = {
        "min": min(fleet_times) / min(raw_times),
        "median": (statistics.median(fleet_times)
                   / statistics.median(raw_times)),
        "paired": statistics.median(ratios),
    }
    name = min(estimators, key=estimators.get)
    overhead = estimators[name] - 1.0
    print(
        "\nfleet-harness overhead: %d instr | raw median %.3fs, fleet "
        "median %.3fs | overhead %+.2f%% via %s (min %+.2f%%, median "
        "%+.2f%%, paired %+.2f%%; limit %.0f%%)"
        % (BUDGET, statistics.median(raw_times),
           statistics.median(fleet_times), 100 * overhead, name,
           100 * (estimators["min"] - 1),
           100 * (estimators["median"] - 1),
           100 * (estimators["paired"] - 1),
           100 * OVERHEAD_LIMIT)
    )
    gate("fleet_overhead", "fleet_harness_overhead",
         round(overhead, 4), OVERHEAD_LIMIT, op="<")


if __name__ == "__main__":
    test_fleet_harness_overhead_is_negligible()
    print("OK: the fleet harness is free for a lone saturated tenant")
