"""Fig. 13 — VCFR normalized IPC under 64/128/512-entry DRCs.

Paper: 98.9% of baseline at 512 entries, 97.9% at 64."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig13


def test_fig13(runner, benchmark, show):
    result = run_once(benchmark, fig13, runner)
    show(format_result(result))
    gate_result(result)
