"""Fig. 9 — functions with and without ret instructions."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.experiments import fig9


def test_fig9(runner, benchmark, show):
    result = run_once(benchmark, fig9, runner)
    show(format_result(result))
    gate_result(result)
