"""Ablation — return-address randomization policy (§IV-A software vs
§IV-C architectural).  Measures randomized-return coverage, residual
failover surface and the IPC cost of each policy."""

from conftest import gate_result, run_once

from repro.harness import format_result
from repro.harness.ablations import retaddr_policy


def test_retaddr_policy(runner, benchmark, show):
    result = run_once(benchmark, retaddr_policy, runner)
    show(format_result(result))
    gate_result(result)
