"""Micro-benchmark: the block + trace fast path must actually be fast.

Runs a branchy-but-hot kernel (a long straight-line inner loop, a call
per outer iteration — the shape the block cache and the superblock
trace tier are built for) under all three cycle-simulated modes, once
with the full fast path (``fastpath=True`` with the trace tier
compiling hot superblocks) and once with the reference execute loop,
and asserts two things:

1. **Equivalence** — the two paths return *identical* ``SimResult``
   serializations (every cycle, every counter).  Speed that changes the
   numbers is not an optimization.
2. **Speedup** — the fast path is at least :data:`MIN_SPEEDUP` times
   faster than the reference loop in every mode (the trace-tier
   acceptance floor is 3.0x; blocks alone gated 1.8x).

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_hot_loop.py

or through pytest: ``pytest benchmarks/bench_hot_loop.py -q``.  Timing
uses min-of-N interleaved repetitions, which is robust to transient
host noise.
"""

import time

from repro.arch.config import default_config
from repro.arch.cpu import CycleCPU
from repro.ilr import RandomizerConfig, make_flow, randomize
from repro.tools.benchgate import record
from repro.workloads.builder import ProgramBuilder

MAX_INSTRUCTIONS = 120_000
REPETITIONS = 3
MIN_SPEEDUP = 3.0
MODES = ("baseline", "naive_ilr", "vcfr")

_INNER_ITERS = 40
_OUTER_ITERS = 100_000  # never reached; MAX_INSTRUCTIONS bounds the run


def build_hot_loop_image():
    """A kernel dominated by one long, hot basic block.

    The inner loop is ten straight-line instructions ending in a single
    conditional branch; the outer loop adds a call/return pair so the
    block cache sees calls, returns, and a taken back-edge — the common
    control shapes — while still spending ~80% of retirement inside one
    block.
    """
    b = ProgramBuilder("hotloop")
    b.label("main")
    b.emits("movi esi, buf", "movi ecx, 0", "movi eax, 1")
    b.label("outer")
    b.emit("movi edi, 0")
    b.label("inner")
    b.emits(
        "mov edx, [esi+0]",
        "add eax, edx",
        "movi ebx, 40503",
        "imul eax, ebx",
        "xor eax, ecx",
        "and eax, 268435455",
        "mov [esi+4], eax",
        "add edi, 1",
        "cmp edi, %d" % _INNER_ITERS,
        "jl inner",
    )
    b.emits(
        "call helper",
        "add ecx, 1",
        "cmp ecx, %d" % _OUTER_ITERS,
        "jl outer",
    )
    b.emit_word("eax")
    b.exit(0)
    b.func("helper")
    b.emits("add eax, 7", "shr eax, 1")
    b.endfunc()
    b.data_label("buf")
    b.data(".space 4096")
    return b.image()


def _build_program():
    return randomize(build_hot_loop_image(), RandomizerConfig(seed=42))


def _image_for(mode, program):
    return {
        "baseline": program.original,
        "naive_ilr": program.naive_image,
        "vcfr": program.vcfr_image,
    }[mode]


def _run_once(program, mode, fastpath):
    """One fresh simulation; returns (host_seconds, result_dict)."""
    config = default_config()
    config.fastpath = fastpath
    cpu = CycleCPU(_image_for(mode, program), make_flow(mode, program),
                   config)
    start = time.perf_counter()
    result = cpu.run(max_instructions=MAX_INSTRUCTIONS)
    return time.perf_counter() - start, result.to_dict()


def measure_mode(program, mode):
    """Returns (seconds_ref, seconds_fast, speedup) after asserting the
    two loops produced identical results."""
    # Warm both paths once (allocator, bytecode caches) before timing.
    _, warm_fast = _run_once(program, mode, True)
    _, warm_ref = _run_once(program, mode, False)
    assert warm_fast == warm_ref, (
        "%s: fast path diverged from the reference loop" % mode
    )
    fast_times, ref_times = [], []
    for _ in range(REPETITIONS):  # interleave to share host noise
        seconds, _result = _run_once(program, mode, True)
        fast_times.append(seconds)
        seconds, _result = _run_once(program, mode, False)
        ref_times.append(seconds)
    best_fast = min(fast_times)
    best_ref = min(ref_times)
    return best_ref, best_fast, best_ref / best_fast


def test_fast_path_speedup_and_equivalence():
    program = _build_program()
    failures = []
    for mode in MODES:
        ref, fast, speedup = measure_mode(program, mode)
        print(
            "\nhot loop [%s]: ref %.4fs, fast %.4fs -> %.2fx"
            % (mode, ref, fast, speedup)
        )
        if not record("hot_loop", "%s_speedup" % mode,
                      round(speedup, 2), MIN_SPEEDUP):
            failures.append((mode, speedup))
    assert not failures, (
        "fast path below the %.1fx floor: %s"
        % (MIN_SPEEDUP,
           ", ".join("%s %.2fx" % pair for pair in failures))
    )


if __name__ == "__main__":
    test_fast_path_speedup_and_equivalence()
    print("OK: fast path >= %.1fx in every mode, results identical"
          % MIN_SPEEDUP)
