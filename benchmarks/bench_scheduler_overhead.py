"""Gate benchmark: streaming intake must be free on batch workloads.

ISSUE 7 replaced the one-shot pooled fan-out with the streaming
:class:`~repro.harness.scheduler.AsyncScheduler`.  Batch callers (the
``sweep()`` shim, ``prefetch``) now hand their whole spec list to the
same engine that also serves million-spec generators, so the streaming
machinery — bounded intake window, input-order emission parking,
async bridging on the pooled path — must cost ~nothing when the
source is just a 200-spec batch.  This gate runs the same 200 specs
two ways:

1. **batch** — the list-in/list-out ``sweep()`` shim, i.e. exactly
   what every pre-ISSUE-7 caller gets;
2. **streamed** — the same specs fed one by one from a generator
   through :meth:`AsyncScheduler.stream`;

and asserts the streamed pass stays within 5% of the batch pass (plus
results bit-identical, as everywhere else).  Timing is median-of-3
with order-alternated pairs, and the gate takes the most favorable of
three robust estimators (min-vs-min, median-vs-median, median of
per-pair ratios) — the same anti-flake scheme as
``bench_fault_overhead``: a real constant-per-spec regression lifts
all three estimators together, host noise rarely does.

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_scheduler_overhead.py

or through pytest: ``pytest benchmarks/bench_scheduler_overhead.py -q``.
``BENCH_SCHED_BUDGET`` (instructions per run, default 1500),
``BENCH_SCHED_SPECS`` (spec count, default 200), and
``BENCH_SCHED_WORKERS`` (default 0: the pooled path's process pools
add their own wall-clock noise on small hosts; set 2+ to gate the
async-pooled bridge instead) trade fidelity against gate runtime.
"""

import dataclasses
import json
import os
import statistics
import time

from repro.arch.config import default_config
from repro.harness.scheduler import AsyncScheduler
from repro.harness.spec import RunSpec
from repro.harness.sweep import sweep
from repro.tools.benchgate import gate

BUDGET = int(os.environ.get("BENCH_SCHED_BUDGET", "1500"))
SPEC_COUNT = int(os.environ.get("BENCH_SCHED_SPECS", "200"))
WORKERS = int(os.environ.get("BENCH_SCHED_WORKERS", "0"))
REPEATS = 3
OVERHEAD_LIMIT = 0.05

#: Seed-varied specs over a few workloads: 200 distinct cache keys and
#: programs, each cheap enough that per-spec engine bookkeeping is a
#: measurable fraction of the pass.
_BASES = [
    RunSpec("mcf", "baseline", max_instructions=BUDGET),
    RunSpec("mcf", "vcfr", drc_entries=64, max_instructions=BUDGET),
    RunSpec("bzip2", "baseline", max_instructions=BUDGET),
    RunSpec("bzip2", "vcfr", drc_entries=128, max_instructions=BUDGET),
]
SPECS = [
    dataclasses.replace(_BASES[i % len(_BASES)],
                        seed=1 + i // len(_BASES)).normalized()
    for i in range(SPEC_COUNT)
]


def _batch_pass(config, program_cache):
    """The legacy batch surface: one sweep() call over the full list."""
    start = time.perf_counter()
    outcomes = sweep(SPECS, config, workers=WORKERS,
                     program_cache=program_cache)
    elapsed = time.perf_counter() - start
    return elapsed, [json.dumps(o.result.as_dict(), sort_keys=True)
                     for o in outcomes]


def _stream_pass(config, program_cache):
    """The streaming surface: the same specs fed from a generator."""
    scheduler = AsyncScheduler(config, workers=WORKERS,
                               program_cache=program_cache)
    start = time.perf_counter()
    outcomes = list(scheduler.stream(spec for spec in SPECS))
    elapsed = time.perf_counter() - start
    assert scheduler.high_water <= scheduler.window
    return elapsed, [json.dumps(o.result.as_dict(), sort_keys=True)
                     for o in outcomes]


def test_streaming_overhead_is_negligible():
    config = default_config()
    # One shared program cache: both paths then pay the randomization
    # cost once, and the measured passes compare pure engine overhead.
    program_cache = {}
    _batch_pass(config, program_cache)
    _stream_pass(config, program_cache)

    ratios, batch_times, stream_times = [], [], []
    reference = None
    for iteration in range(REPEATS):
        if iteration % 2 == 0:
            batch_s, batch_results = _batch_pass(config, program_cache)
            stream_s, stream_results = _stream_pass(config, program_cache)
        else:
            stream_s, stream_results = _stream_pass(config, program_cache)
            batch_s, batch_results = _batch_pass(config, program_cache)
        batch_times.append(batch_s)
        stream_times.append(stream_s)
        ratios.append(stream_s / batch_s)
        reference = reference or batch_results
        assert batch_results == reference
        assert stream_results == reference, (
            "streaming scheduler changed simulation results"
        )

    estimators = {
        "min": min(stream_times) / min(batch_times),
        "median": (statistics.median(stream_times)
                   / statistics.median(batch_times)),
        "paired": statistics.median(ratios),
    }
    name = min(estimators, key=estimators.get)
    overhead = estimators[name] - 1.0
    print(
        "\nstreaming-intake overhead: %d specs @ %d instr, %d workers | "
        "batch median %.3fs, streamed median %.3fs | overhead %+.2f%% "
        "via %s (min %+.2f%%, median %+.2f%%, paired %+.2f%%; limit "
        "%.0f%%)"
        % (SPEC_COUNT, BUDGET, WORKERS,
           statistics.median(batch_times), statistics.median(stream_times),
           100 * overhead, name,
           100 * (estimators["min"] - 1),
           100 * (estimators["median"] - 1),
           100 * (estimators["paired"] - 1),
           100 * OVERHEAD_LIMIT)
    )
    gate("scheduler_overhead", "streaming_overhead", round(overhead, 4),
         OVERHEAD_LIMIT, op="<")


if __name__ == "__main__":
    test_streaming_overhead_is_negligible()
    print("OK: streaming scheduler is free on batch sweeps")
