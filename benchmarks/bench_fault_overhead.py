"""Gate benchmark: fault tolerance must be free when nothing faults.

The sweep engine wraps every execution in its retry/commit machinery
(attempt accounting, exception fencing, commit-as-you-go cache writes).
This gate runs the same specs two ways:

1. **raw** — a bare loop over :func:`execute_spec` plus a direct
   ``cache.get``/``cache.put`` per spec: the minimum any correct
   cache-aware harness must do;
2. **engine** — :func:`sweep` with the default :class:`RetryPolicy`
   and no fault plan: the exact no-fault production path.

and asserts the engine's wall-clock overhead stays under 2% (plus
results bit-identical, as everywhere else).  Wall-clock on a shared
host is noisy at the couple-percent level (frequency scaling, sibling
load — this gate shares ``make verify`` with pool-heavy benchmarks),
so measurement is paired and order-alternated (raw-first on even
iterations, engine-first on odd) and the gate takes the most favorable
of three robust estimators — min-vs-min, median-vs-median, and the
median of per-pair ratios.  A *real* constant-per-spec regression
shifts the engine's whole timing distribution and therefore lifts all
three estimators together; uncorrelated host noise rarely lifts all
three at once, so the gate stays sharp without flaking.

Run directly (the ``Makefile verify`` target does)::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py

or through pytest: ``pytest benchmarks/bench_fault_overhead.py -q``.
``BENCH_FAULT_BUDGET`` (instructions per run, default 40000) trades
fidelity against gate runtime.
"""

import json
import os
import shutil
import statistics
import tempfile
import time

from repro.arch.config import default_config
from repro.harness.resultcache import ResultCache
from repro.harness.spec import RunSpec
from repro.harness.sweep import execute_spec, sweep
from repro.tools.benchgate import gate

#: Per-spec instruction budget.  Sized so one pass runs long enough
#: that the engine's constant-per-spec machinery (retry bookkeeping,
#: one digest, one cache transaction) is well under the gate if it is
#: under it at production budgets, while a full 2x``REPEATS``-pass
#: measurement stays around ten seconds.
BUDGET = int(os.environ.get("BENCH_FAULT_BUDGET", "60000"))
REPEATS = 12
OVERHEAD_LIMIT = 0.02

SPECS = [
    RunSpec("mcf", "baseline", max_instructions=BUDGET),
    RunSpec("mcf", "vcfr", drc_entries=64, max_instructions=BUDGET),
    RunSpec("bzip2", "naive_ilr", max_instructions=BUDGET),
    RunSpec("bzip2", "vcfr", drc_entries=128, max_instructions=BUDGET),
]


def _raw_pass(config, workdir):
    """The minimal correct cache-aware loop: look up, execute, persist."""
    cache = ResultCache(tempfile.mkdtemp(dir=workdir))
    program_cache = {}
    results = []
    start = time.perf_counter()
    for spec in SPECS:
        spec = spec.normalized()
        result = cache.get(spec, config)
        if result is None:
            result = execute_spec(spec, config,
                                  program_cache=program_cache)
            cache.put(spec, config, result)
        results.append(result)
    elapsed = time.perf_counter() - start
    return elapsed, [json.dumps(r.as_dict(), sort_keys=True)
                     for r in results]


def _engine_pass(config, workdir):
    """The production path: cold cache, default retry policy, no faults."""
    cache = ResultCache(tempfile.mkdtemp(dir=workdir))
    start = time.perf_counter()
    outcomes = sweep(SPECS, config, workers=0, cache=cache,
                     program_cache={})
    elapsed = time.perf_counter() - start
    return elapsed, [json.dumps(o.result.as_dict(), sort_keys=True)
                     for o in outcomes]


def test_no_fault_overhead_is_negligible():
    config = default_config()
    workdir = tempfile.mkdtemp(prefix="bench-fault-overhead-")
    try:
        # Warm both paths once (imports, program build JIT-ish costs).
        _raw_pass(config, workdir)
        _engine_pass(config, workdir)

        ratios = []
        raw_times, engine_times = [], []
        reference = None
        for iteration in range(REPEATS):
            if iteration % 2 == 0:
                raw_s, raw_results = _raw_pass(config, workdir)
                engine_s, engine_results = _engine_pass(config, workdir)
            else:
                engine_s, engine_results = _engine_pass(config, workdir)
                raw_s, raw_results = _raw_pass(config, workdir)
            raw_times.append(raw_s)
            engine_times.append(engine_s)
            ratios.append(engine_s / raw_s)
            reference = reference or raw_results
            assert raw_results == reference
            assert engine_results == reference, (
                "fault-tolerant engine changed simulation results"
            )

        estimators = {
            "min": min(engine_times) / min(raw_times),
            "median": (statistics.median(engine_times)
                       / statistics.median(raw_times)),
            "paired": statistics.median(ratios),
        }
        name = min(estimators, key=estimators.get)
        overhead = estimators[name] - 1.0
        print(
            "\nfault-tolerance overhead: %d specs @ %d instr | raw median "
            "%.3fs, engine median %.3fs | overhead %+.2f%% via %s "
            "(min %+.2f%%, median %+.2f%%, paired %+.2f%%; limit %.0f%%)"
            % (len(SPECS), BUDGET, statistics.median(raw_times),
               statistics.median(engine_times), 100 * overhead, name,
               100 * (estimators["min"] - 1),
               100 * (estimators["median"] - 1),
               100 * (estimators["paired"] - 1),
               100 * OVERHEAD_LIMIT)
        )
        gate("fault_overhead", "sweep_overhead", round(overhead, 4),
             OVERHEAD_LIMIT, op="<")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    test_no_fault_overhead_is_negligible()
    print("OK: fault-tolerance layer is free when nothing faults")
