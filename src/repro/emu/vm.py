"""The software-ILR virtual machine (paper §III baseline, Fig. 2).

An instruction-level emulator in the style of Hiser et al.'s ILR VM: it
executes a randomized binary by, *for every guest instruction*,

1. de-randomizing the virtual PC through the (software) RDR mapping,
2. fetching and decoding the instruction bytes,
3. interpreting its semantics (registers/flags live in host memory),
4. applying the rewrite rules to compute the next virtual PC.

Complete ILR makes every instruction its own translation unit, so no
block-level caching is possible — which is exactly why the paper measures
hundreds-of-times slowdowns for this design and proposes hardware support
instead.

The VM is architecturally exact (it reuses the shared executor, so its
output must equal every other mode) and accounts deterministic host costs
via :class:`HostCostParams`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..arch.executor import CTRL_HALT, CTRL_NONE, execute
from ..arch.functional import RunResult
from ..arch.memory import SparseMemory
from ..arch.state import ExitProgram, MachineState
from ..binary import load_image
from ..ilr.flow import NaiveILRFlow
from ..ilr.randomizer import RandomizedProgram
from ..isa.decoder import decode
from ..isa.syscalls import OutputStream
from ..obs.events import EventLog
from .hostcost import HostCostCounters, HostCostParams


@dataclass
class EmulationResult:
    """Functional result + host cost of one emulated run."""

    run: RunResult
    host_instructions: int
    counters: HostCostCounters
    #: periodic progress samples: dicts with guest ``instructions``,
    #: cumulative ``host_instructions``, instantaneous ``host_per_guest``
    #: over the window, and ``host_seconds`` wall time.
    checkpoints: List[dict] = field(default_factory=list)

    def slowdown_vs(self, native_cycles: int, host_ipc: float = 1.0) -> float:
        """Fig. 2 metric: emulated host cycles over native cycles."""
        if native_cycles <= 0:
            return 0.0
        return (self.host_instructions / host_ipc) / native_cycles

    # -- observable serialization ------------------------------------------

    def as_dict(self) -> dict:
        """JSON form of the *observable* result.

        Emulation results drag the full :class:`MachineState` behind
        ``run.state``; that graph is neither canonical nor worth
        persisting.  This view carries exactly what the experiments and
        the qa oracle consume — architectural outcome plus host-cost
        accounting — and is the canonical payload for integrity digests
        (:mod:`repro.harness.sweep`) and round-trip checks.
        ``from_dict(as_dict())`` reproduces every one of these fields
        bit-identically (``run.state`` comes back as ``None``).
        """
        run = self.run
        output = {
            "chars": bytes(run.output.chars).decode("latin-1"),
            "words": list(run.output.words),
        }
        return {
            "exit_code": run.exit_code,
            "icount": run.icount,
            "halted": run.halted,
            "output": output,
            "host_instructions": self.host_instructions,
            "counters": dict(self.counters.by_activity),
            "checkpoints": [dict(cp) for cp in self.checkpoints],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EmulationResult":
        run = RunResult(
            exit_code=data.get("exit_code"),
            icount=data.get("icount", 0),
            output=OutputStream(
                chars=bytearray(data["output"]["chars"], "latin-1"),
                words=list(data["output"]["words"]),
            ),
            state=None,
            halted=data.get("halted", False),
        )
        counters = HostCostCounters(
            by_activity=dict(data.get("counters", {}))
        )
        return cls(
            run=run,
            host_instructions=data.get("host_instructions", 0),
            counters=counters,
            checkpoints=[dict(cp) for cp in data.get("checkpoints", [])],
        )


class ILREmulator:
    """Instruction-level emulator for a randomized program."""

    def __init__(
        self,
        program: RandomizedProgram,
        params: Optional[HostCostParams] = None,
        max_instructions: int = 50_000_000,
        events: Optional[EventLog] = None,
        checkpoint_interval: int = 0,
        event_fields: Optional[dict] = None,
    ):
        self.program = program
        self.params = params or HostCostParams()
        self.max_instructions = max_instructions
        self.events = events if events is not None else EventLog()
        self.checkpoint_interval = max(0, checkpoint_interval)
        self.event_fields = dict(event_fields or {})
        self.event_fields.setdefault("mode", "emulate")
        self.checkpoints: List[dict] = []

        self.mem = SparseMemory()
        info = load_image(program.naive_image, self.mem)
        self.state = MachineState(self.mem, stack_top=info.stack_top)
        # The emulator implements the same architectural semantics as the
        # naive flow: the guest sees the randomized instruction space.
        self.flow = NaiveILRFlow(program.rdr, program.entry_rand)
        self.counters = HostCostCounters()

    def run(self) -> EmulationResult:
        """Interpret to completion, charging host costs per instruction."""
        params = self.params
        counters = self.counters
        state = self.state
        flow = self.flow
        charge = counters.charge

        self.events.emit(
            "run_start",
            max_instructions=self.max_instructions,
            checkpoint_interval=self.checkpoint_interval,
            **self.event_fields,
        )
        run_t0 = time.perf_counter()
        next_checkpoint = (
            self.checkpoint_interval or self.max_instructions + 1
        )
        ckpt_icount = 0
        ckpt_host = 0

        vpc = flow.initial_fetch_pc()
        halted = False

        while state.icount < self.max_instructions:
            # 1. dispatch + software de-randomization of the virtual PC.
            charge("dispatch", params.dispatch)
            charge("derand_lookup", params.derand_lookup)
            # (the actual translation: randomized vpc -> original address
            # is what a hardware DRC would do; here it costs host work)
            _original = self.program.rdr.to_original(vpc)

            # 2. fetch + decode, every time — complete ILR has no block
            # cache to reuse decoded instructions across executions.
            raw = self.mem.read_block(vpc, 8)
            inst = decode(raw, 0, vpc)
            charge("decode", params.decode_base + params.decode_per_byte * inst.length)

            # 3. interpret semantics.
            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                charge("syscall", params.syscall)
                break
            charge("execute", params.execute)
            if inst.mnemonic == "int":
                charge("syscall", params.syscall)
            if state.last_load_addr is not None or state.last_store_addr is not None:
                charge("memory_op", params.memory_op)
            charge("flags", params.flags_update)

            # 4. rewrite rules for the next virtual PC.
            if kind == CTRL_NONE:
                vpc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                halted = True
                break
            else:
                charge("control_transfer", params.control_transfer)
                vpc = flow.transfer(target)

            if state.icount >= next_checkpoint:
                window = state.icount - ckpt_icount
                checkpoint = {
                    "instructions": state.icount,
                    "host_instructions": counters.total,
                    "host_per_guest": round(
                        (counters.total - ckpt_host) / window, 3
                    ) if window else 0.0,
                    "host_seconds": round(
                        time.perf_counter() - run_t0, 6
                    ),
                }
                self.checkpoints.append(checkpoint)
                self.events.emit(
                    "checkpoint", **checkpoint, **self.event_fields
                )
                ckpt_icount = state.icount
                ckpt_host = counters.total
                next_checkpoint = state.icount + self.checkpoint_interval

        run = RunResult(
            exit_code=state.exit_code,
            icount=state.icount,
            output=state.out,
            state=state,
            halted=halted,
        )
        self.events.emit(
            "run_end",
            instructions=run.icount,
            host_instructions=counters.total,
            halted=halted,
            host_seconds=round(time.perf_counter() - run_t0, 6),
            **self.event_fields,
        )
        return EmulationResult(
            run=run,
            host_instructions=counters.total,
            counters=counters,
            checkpoints=list(self.checkpoints),
        )


def emulate(program: RandomizedProgram, **kwargs) -> EmulationResult:
    """One-shot helper."""
    return ILREmulator(program, **kwargs).run()
