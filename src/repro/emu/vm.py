"""The software-ILR virtual machine (paper §III baseline, Fig. 2).

An instruction-level emulator in the style of Hiser et al.'s ILR VM: it
executes a randomized binary by, *for every guest instruction*,

1. de-randomizing the virtual PC through the (software) RDR mapping,
2. fetching and decoding the instruction bytes,
3. interpreting its semantics (registers/flags live in host memory),
4. applying the rewrite rules to compute the next virtual PC.

Complete ILR makes every instruction its own translation unit, so no
block-level caching is possible — which is exactly why the paper measures
hundreds-of-times slowdowns for this design and proposes hardware support
instead.

The VM is architecturally exact (it reuses the shared executor, so its
output must equal every other mode) and accounts deterministic host costs
via :class:`HostCostParams`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.executor import CTRL_HALT, CTRL_NONE, execute
from ..arch.functional import RunResult
from ..arch.memory import SparseMemory
from ..arch.state import ExitProgram, MachineState
from ..binary import load_image
from ..ilr.flow import NaiveILRFlow
from ..ilr.randomizer import RandomizedProgram
from ..isa.decoder import decode
from .hostcost import HostCostCounters, HostCostParams


@dataclass
class EmulationResult:
    """Functional result + host cost of one emulated run."""

    run: RunResult
    host_instructions: int
    counters: HostCostCounters

    def slowdown_vs(self, native_cycles: int, host_ipc: float = 1.0) -> float:
        """Fig. 2 metric: emulated host cycles over native cycles."""
        if native_cycles <= 0:
            return 0.0
        return (self.host_instructions / host_ipc) / native_cycles


class ILREmulator:
    """Instruction-level emulator for a randomized program."""

    def __init__(
        self,
        program: RandomizedProgram,
        params: Optional[HostCostParams] = None,
        max_instructions: int = 50_000_000,
    ):
        self.program = program
        self.params = params or HostCostParams()
        self.max_instructions = max_instructions

        self.mem = SparseMemory()
        info = load_image(program.naive_image, self.mem)
        self.state = MachineState(self.mem, stack_top=info.stack_top)
        # The emulator implements the same architectural semantics as the
        # naive flow: the guest sees the randomized instruction space.
        self.flow = NaiveILRFlow(program.rdr, program.entry_rand)
        self.counters = HostCostCounters()

    def run(self) -> EmulationResult:
        """Interpret to completion, charging host costs per instruction."""
        params = self.params
        counters = self.counters
        state = self.state
        flow = self.flow
        charge = counters.charge

        vpc = flow.initial_fetch_pc()
        halted = False

        while state.icount < self.max_instructions:
            # 1. dispatch + software de-randomization of the virtual PC.
            charge("dispatch", params.dispatch)
            charge("derand_lookup", params.derand_lookup)
            # (the actual translation: randomized vpc -> original address
            # is what a hardware DRC would do; here it costs host work)
            _original = self.program.rdr.to_original(vpc)

            # 2. fetch + decode, every time — complete ILR has no block
            # cache to reuse decoded instructions across executions.
            raw = self.mem.read_block(vpc, 8)
            inst = decode(raw, 0, vpc)
            charge("decode", params.decode_base + params.decode_per_byte * inst.length)

            # 3. interpret semantics.
            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                charge("syscall", params.syscall)
                break
            charge("execute", params.execute)
            if inst.mnemonic == "int":
                charge("syscall", params.syscall)
            if state.last_load_addr is not None or state.last_store_addr is not None:
                charge("memory_op", params.memory_op)
            charge("flags", params.flags_update)

            # 4. rewrite rules for the next virtual PC.
            if kind == CTRL_NONE:
                vpc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                halted = True
                break
            else:
                charge("control_transfer", params.control_transfer)
                vpc = flow.transfer(target)

        run = RunResult(
            exit_code=state.exit_code,
            icount=state.icount,
            output=state.out,
            state=state,
            halted=halted,
        )
        return EmulationResult(
            run=run,
            host_instructions=counters.total,
            counters=counters,
        )


def emulate(program: RandomizedProgram, **kwargs) -> EmulationResult:
    """One-shot helper."""
    return ILREmulator(program, **kwargs).run()
