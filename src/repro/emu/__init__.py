"""Software-based ILR execution: the paper's Fig. 2 baseline.

:class:`ILREmulator` interprets a randomized binary one instruction at a
time (de-randomize PC, fetch, decode, execute, apply rewrite rules) and
accounts deterministic host costs, reproducing the hundreds-of-times
slowdown that motivates hardware support.
"""

from .hostcost import HostCostCounters, HostCostParams
from .vm import EmulationResult, ILREmulator, emulate

__all__ = [
    "ILREmulator",
    "EmulationResult",
    "emulate",
    "HostCostParams",
    "HostCostCounters",
]
