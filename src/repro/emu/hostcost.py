"""Host-cost model of the software-ILR instruction-level emulator.

Paper Fig. 2 compares software ILR (a binary emulator de-randomizing the
instruction space *per executed instruction*) against native execution and
finds slowdowns of hundreds of times.  Our emulator reproduces the
comparison with a deterministic host-cost model: every interpreter
activity is charged a number of host instructions, calibrated against the
published per-guest-instruction budgets of interpretive emulators (Bochs,
QEMU's TCG in single-step mode, Valgrind's --tool=none, Pin's strict
per-instruction instrumentation all land in the 10²–10³ host
instructions/guest instruction range when no translation caching is
allowed — and per-instruction ILR forbids block caching, because every
instruction ends a "block").

The slowdown reported by the Fig. 2 experiment is::

    host_cycles(emulated run) / cycles(native run on the cycle simulator)

with host IPC conservatively taken as 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class HostCostParams:
    """Host instructions charged per interpreter activity."""

    #: main dispatch loop: fetch RPC, bounds checks, indirect dispatch
    #: (typically mispredicted), loop overhead.
    dispatch: int = 45
    #: software de-randomization: hash the randomized PC, probe the
    #: mapping table, load the translation (per instruction in complete ILR).
    derand_lookup: int = 40
    #: decode of one guest instruction: per-byte fetch + table decode.
    decode_base: int = 30
    decode_per_byte: int = 8
    #: semantic execution of the decoded operation (register file in
    #: memory, flags recomputation in software).
    execute: int = 25
    flags_update: int = 18
    #: guest memory access: address translation + host access + checks.
    memory_op: int = 22
    #: control transfer: apply ILR rewrite rules, map the target, update
    #: the virtual PC, verify the landing site.
    control_transfer: int = 60
    #: syscall marshalling.
    syscall: int = 150


@dataclass
class HostCostCounters:
    """Accumulated host instructions, by activity."""

    by_activity: Dict[str, int] = field(default_factory=dict)

    def charge(self, activity: str, amount: int) -> None:
        self.by_activity[activity] = self.by_activity.get(activity, 0) + amount

    @property
    def total(self) -> int:
        return sum(self.by_activity.values())

    def rows(self):
        return sorted(self.by_activity.items(), key=lambda kv: -kv[1])
