"""Security analysis tooling: gadget scanning, payload compilation,
attack simulation and entropy analysis (paper §V)."""

from .attack import (
    SERVICE_OK,
    AttackDemo,
    AttackOutcome,
    build_vulnerable_image,
    craft_exploit_input,
    deliver,
    inject_input,
    simulate_attack,
)
from .entropy import EntropyReport, analyze_entropy
from .probing import ProbeReport, probes_to_defeat, simulate_probing
from .gadgets import (
    END_CALL,
    END_JMP,
    END_RET,
    Gadget,
    GadgetSurvey,
    attacker_visible_gadgets,
    scan_gadgets,
    survey_image,
)
from .payload import (
    SHELL_MAGIC,
    Payload,
    PayloadError,
    can_build_payload,
    classify_roles,
    compile_shell_payload,
)
from .adversary import AdversaryReport, AdversarySpec, JITROPAdversary
from .rotation import RotationPolicy, RotationService, RotationStats
from .race import (
    SERVICE_WORKLOAD,
    RaceResult,
    RaceSpec,
    run_race,
    sweep_race,
)

__all__ = [
    "Gadget",
    "GadgetSurvey",
    "scan_gadgets",
    "attacker_visible_gadgets",
    "survey_image",
    "END_RET",
    "END_JMP",
    "END_CALL",
    "Payload",
    "PayloadError",
    "compile_shell_payload",
    "can_build_payload",
    "classify_roles",
    "SHELL_MAGIC",
    "AttackDemo",
    "AttackOutcome",
    "simulate_attack",
    "build_vulnerable_image",
    "craft_exploit_input",
    "inject_input",
    "deliver",
    "SERVICE_OK",
    "EntropyReport",
    "analyze_entropy",
    "ProbeReport",
    "simulate_probing",
    "probes_to_defeat",
    "AdversarySpec",
    "AdversaryReport",
    "JITROPAdversary",
    "RotationPolicy",
    "RotationService",
    "RotationStats",
    "RaceSpec",
    "RaceResult",
    "run_race",
    "sweep_race",
    "SERVICE_WORKLOAD",
]
