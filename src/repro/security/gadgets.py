"""ROP gadget scanning (ROPgadget stand-in, paper §V-B).

A gadget is a short instruction sequence ending in a ``ret`` or an
indirect transfer, decoded starting at *any byte offset* of an executable
section — including unintended offsets inside other instructions, which
variable-length encoding makes plentiful (that is why the scanner works on
raw bytes, not on the disassembly).

``attacker_visible_gadgets`` models the paper's modified ROPgadget, which
"searches for gadgets using un-randomized instruction locations": after
randomization, a gadget is only *usable* if control can still legally
enter at its original address — i.e. its address survived as a failover
redirect entry in the RDR table.  Everything else faults on entry
(randomized tag / strict entry policy), so those gadgets are "removed"
in the Fig. 11 sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..binary import BinaryImage
from ..ilr.rdr import RDRTable
from ..isa.decoder import try_decode
from ..isa.instruction import Instruction

#: Gadget terminators, in ROPgadget's classic categories.
END_RET = "ret"
END_JMP = "jmp_reg"
END_CALL = "call_reg"

#: Maximum gadget length, in instructions, terminator included.
DEFAULT_MAX_INSTRUCTIONS = 5


@dataclass
class Gadget:
    """One gadget: its entry address and decoded instruction sequence."""

    addr: int
    instructions: List[Instruction]
    end_kind: str

    @property
    def length(self) -> int:
        return len(self.instructions)

    def text(self) -> str:
        return " ; ".join(inst.text() for inst in self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Gadget(0x%x: %s)" % (self.addr, self.text())


def _terminator_kind(inst: Instruction) -> str:
    if inst.mnemonic == "ret":
        return END_RET
    if inst.mnemonic == "jmpi":
        return END_JMP
    if inst.mnemonic == "calli":
        return END_CALL
    return ""


def scan_gadgets(
    image: BinaryImage,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> List[Gadget]:
    """Scan every byte offset of every executable section for gadgets.

    A candidate sequence is accepted when every instruction decodes, no
    instruction before the last transfers control, and the last is a
    ``ret`` / register-indirect transfer.  One gadget is reported per
    starting address (the shortest sequence ending at a terminator).
    """
    gadgets: List[Gadget] = []
    for sec in image.code_sections():
        data = bytes(sec.data)
        for off in range(len(data)):
            seq: List[Instruction] = []
            pos = off
            for _ in range(max_instructions):
                inst = try_decode(data, pos, sec.base + pos)
                if inst is None:
                    break
                kind = _terminator_kind(inst)
                seq.append(inst)
                if kind:
                    gadgets.append(Gadget(sec.base + off, seq, kind))
                    break
                if inst.is_control or inst.is_halt:
                    break  # direct branches / halt end the candidate, unusably
                pos += inst.length
    return gadgets


def attacker_visible_gadgets(
    gadgets: List[Gadget], rdr: RDRTable
) -> List[Gadget]:
    """Gadgets still usable after randomization (Fig. 11's survivor set).

    The attacker addresses gadgets by their original (un-randomized)
    location; entry succeeds only at failover redirect addresses.
    """
    legal_entries = rdr.unrandomized_entries()
    return [g for g in gadgets if g.addr in legal_entries]


@dataclass
class GadgetSurvey:
    """Before/after gadget statistics for one application (Fig. 11 row)."""

    total_before: int
    usable_after: int
    by_end_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def removal_percent(self) -> float:
        if not self.total_before:
            return 0.0
        return 100.0 * (1.0 - self.usable_after / self.total_before)


def survey_image(image: BinaryImage, rdr: RDRTable,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> GadgetSurvey:
    """Scan + survivor analysis in one call."""
    gadgets = scan_gadgets(image, max_instructions)
    survivors = attacker_visible_gadgets(gadgets, rdr)
    by_kind: Dict[str, int] = {}
    for g in gadgets:
        by_kind[g.end_kind] = by_kind.get(g.end_kind, 0) + 1
    return GadgetSurvey(
        total_before=len(gadgets),
        usable_after=len(survivors),
        by_end_kind=by_kind,
    )
