"""Re-randomization as a deployed *service* (paper §V-C, §VIII).

The paper argues that periodic re-randomization bounds how long a leaked
table stays useful but never runs the service; MARDU-style deployments
make rotation a kernel service with a measurable cost.  This module
closes that gap: a :class:`RotationService` owns a
:class:`~repro.ilr.rerandomize.RerandomizationSchedule` per tenant and
drives :func:`~repro.ilr.rerandomize.apply_rerandomization` on *policy*:

* ``periodic`` — every N retired instructions (wall-clock proxy);
* ``on_probe`` — when the tenant's crash telemetry reports blind-probe
  faults (the detectable signal :mod:`repro.security.probing` models);
* ``on_syscall`` — every N observable syscall effects (kernel-boundary
  rotation, the cheapest point to swap tables in a real deployment);
* ``none`` — the static-randomization baseline the curves compare
  against.

Every rotation charges the tenant a fixed kernel cost in simulated
cycles and is accounted against the simulator structures it flushes
(DRC, decoded blocks, compiled traces) — the "rotation cost" axis of
the gadget-window experiment family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ilr.rerandomize import (
    Epoch,
    RerandomizationSchedule,
    apply_rerandomization,
)
from ..ilr.randomizer import RandomizedProgram
from ..obs.trace import NULL_TRACER

__all__ = [
    "RotationPolicy",
    "RotationStats",
    "RotationService",
]

#: Valid :attr:`RotationPolicy.kind` values.
POLICY_KINDS = ("none", "periodic", "on_probe", "on_syscall")


@dataclass(frozen=True)
class RotationPolicy:
    """When the service rotates, and what each rotation costs."""

    kind: str = "periodic"
    #: ``periodic``: rotate after this many retired instructions.
    period_instructions: int = 20_000
    #: ``on_probe``: rotate once this many crash signals accumulate.
    probe_threshold: int = 1
    #: ``on_syscall``: rotate after this many observable syscall effects.
    syscall_period: int = 8
    #: fixed kernel cost charged to the tenant per rotation (table
    #: regeneration + text rewrite + bitmap patching, in cycles).
    rotation_cycles: int = 5_000

    def __post_init__(self):
        if self.kind not in POLICY_KINDS:
            raise ValueError("unknown rotation policy %r" % (self.kind,))

    def label(self) -> str:
        if self.kind == "periodic":
            return "periodic@%d" % self.period_instructions
        if self.kind == "on_probe":
            return "on_probe@%d" % self.probe_threshold
        if self.kind == "on_syscall":
            return "on_syscall@%d" % self.syscall_period
        return self.kind


@dataclass
class RotationStats:
    """Service-side cost accounting, summed over a tenant's rotations."""

    rotations: int = 0
    rotation_cycles: int = 0
    drc_flushes: int = 0
    block_invalidations: int = 0
    trace_invalidations: int = 0
    #: worst usefulness of any leaked table one rotation later.
    max_stale_overlap: float = 0.0


@dataclass
class _Tenant:
    cpu: object
    schedule: RerandomizationSchedule
    base_seed: int
    last_rotation_icount: int = 0
    syscalls_at_rotation: int = 0
    probe_crashes: int = 0
    stats: RotationStats = field(default_factory=RotationStats)


def _syscall_effects(cpu) -> int:
    """Observable kernel-boundary activity: the output stream only ever
    grows at syscalls, so its length is a deterministic syscall proxy
    (the machine keeps no explicit syscall counter)."""
    out = cpu.state.out
    return len(out.words) + len(out.chars)


class RotationService:
    """Drives epoch rotations for one or many tenants on policy."""

    def __init__(self, policy: RotationPolicy, events=None, tracer=None):
        self.policy = policy
        self.events = events
        self.tracer = tracer or NULL_TRACER
        self._tenants: Dict[str, _Tenant] = {}

    def register(self, name: str, cpu, program: RandomizedProgram) -> None:
        """Adopt a live VCFR tenant; its schedule starts at epoch 0."""
        self._tenants[name] = _Tenant(
            cpu=cpu,
            schedule=RerandomizationSchedule(program),
            base_seed=program.config.seed,
            last_rotation_icount=cpu.state.icount,
            syscalls_at_rotation=_syscall_effects(cpu),
        )

    def current_program(self, name: str) -> RandomizedProgram:
        return self._tenants[name].schedule.current

    def stats(self, name: str) -> RotationStats:
        return self._tenants[name].stats

    def note_probe_crashes(self, name: str, crashes: int) -> None:
        """Feed crash telemetry (failed blind probes) into the policy."""
        if crashes > 0:
            self._tenants[name].probe_crashes += crashes

    # -- policy evaluation -------------------------------------------------------

    def due(self, name: str) -> bool:
        tenant = self._tenants[name]
        policy = self.policy
        if policy.kind == "none":
            return False
        if policy.kind == "periodic":
            executed = tenant.cpu.state.icount - tenant.last_rotation_icount
            return executed >= policy.period_instructions
        if policy.kind == "on_probe":
            return tenant.probe_crashes >= policy.probe_threshold
        effects = _syscall_effects(tenant.cpu) - tenant.syscalls_at_rotation
        return effects >= policy.syscall_period

    def poll(self, name: str) -> bool:
        """Rotate ``name`` if its trigger fired; returns whether it did."""
        if not self.due(name):
            return False
        self.rotate(name)
        return True

    def rotate(self, name: str) -> Epoch:
        """Force one rotation now, whatever the policy says."""
        tenant = self._tenants[name]
        cpu = tenant.cpu
        epoch_index = len(tenant.schedule.epochs)
        # Seed derivation is pure arithmetic over (base seed, epoch):
        # two runs of the same spec rotate onto identical layouts.
        new_seed = (tenant.base_seed * 7919 + epoch_index) % (1 << 30) + 1
        before = _invalidation_counters(cpu)
        epoch = tenant.schedule.rotate(new_seed)
        apply_rerandomization(cpu, epoch.program, tracer=self.tracer)
        after = _invalidation_counters(cpu)
        cpu.cycle += self.policy.rotation_cycles

        stats = tenant.stats
        stats.rotations += 1
        stats.rotation_cycles += self.policy.rotation_cycles
        stats.drc_flushes += 1
        stats.block_invalidations += after[0] - before[0]
        stats.trace_invalidations += after[1] - before[1]
        stats.max_stale_overlap = max(
            stats.max_stale_overlap, epoch.stale_table_overlap
        )
        tenant.last_rotation_icount = cpu.state.icount
        tenant.syscalls_at_rotation = _syscall_effects(cpu)
        tenant.probe_crashes = 0
        if self.events is not None:
            self.events.emit(
                "rotation",
                tenant=name,
                epoch=epoch.index,
                seed=epoch.seed,
                icount=cpu.state.icount,
                stale_overlap=round(epoch.stale_table_overlap, 6),
            )
        return epoch


def _invalidation_counters(cpu) -> tuple:
    tiers = cpu.tier_stats()
    blocks = tiers.get("blocks", {}).get("invalidations", 0)
    traces = tiers.get("traces", {}).get("invalidations", 0)
    return blocks, traces
