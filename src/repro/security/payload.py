"""ROP payload compilation (ROPgadget's auto-roper, paper §V-B).

The compiler assembles an attack payload from a gadget pool.  The canonical
goal in this reproduction is "spawn a shell", modelled in the RX86 syscall
ABI as invoking ``EMIT`` with a magic marker value (observable in the
output stream, so tests can assert whether an attack *actually executed*).

Required roles, as in classic ret2libc-style ROPgadget templates:

* ``pop eax ; ret``-style gadget to load the syscall number,
* ``pop ebx ; ret``-style gadget to load the argument,
* a gadget containing ``int 0x80``.

"Typically, ROPgadget requires detection of multiple gadgets in an
executable to assemble a payload.  If control flow randomization
significantly reduces the number of gadgets ... the likelihood an attack
payload can be assembled will become smaller" — compile on the survivor
set to reproduce the paper's result that no payloads can be built after
randomization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.registers import EAX, EBX
from ..isa.syscalls import SYS_EMIT
from .gadgets import END_RET, Gadget

#: The observable "shell spawned" marker an attack payload emits.
SHELL_MAGIC = 0xDEADC0DE


@dataclass
class RolePool:
    """Gadgets indexed by the role they can play in a payload."""

    pop_to_reg: Dict[int, List[Gadget]] = field(default_factory=dict)
    syscall: List[Gadget] = field(default_factory=list)
    mov_reg: List[Gadget] = field(default_factory=list)
    arith: List[Gadget] = field(default_factory=list)
    store: List[Gadget] = field(default_factory=list)


def classify_roles(gadgets: List[Gadget]) -> RolePool:
    """Sort ret-ending gadgets into payload roles.

    Only ``ret``-terminated gadgets chain cleanly, so other endings are
    ignored (as ROPgadget's ROP compiler does for its default templates).
    A gadget qualifies for a role when its *side effects do not disturb*
    the chain: every non-role instruction must be a nop or flag-only op.
    """
    pool = RolePool()
    for gadget in gadgets:
        if gadget.end_kind != END_RET:
            continue
        body = gadget.instructions[:-1]
        if _is_single_pop(body):
            reg = body[0].reg
            pool.pop_to_reg.setdefault(reg, []).append(gadget)
        if any(inst.mnemonic == "int" and inst.imm == 0x80 for inst in body):
            if _harmless_around_syscall(body):
                pool.syscall.append(gadget)
        if len(body) == 1 and body[0].mnemonic == "mov" and body[0].mode == 0:
            pool.mov_reg.append(gadget)
        if len(body) == 1 and body[0].mnemonic in ("add", "sub", "xor") and (
            body[0].mode == 0
        ):
            pool.arith.append(gadget)
        if len(body) == 1 and body[0].mnemonic == "mov" and body[0].mode == 2:
            pool.store.append(gadget)
    return pool


def _is_single_pop(body: List) -> bool:
    return len(body) == 1 and body[0].mnemonic == "pop"


def _harmless_around_syscall(body: List) -> bool:
    for inst in body:
        if inst.mnemonic == "int":
            continue
        if inst.mnemonic in ("nop", "cmp", "test"):
            continue
        return False
    return True


@dataclass
class Payload:
    """A compiled ROP chain: the exact words written over the stack."""

    words: List[int]
    gadgets_used: List[Gadget]

    def describe(self) -> str:
        return "\n".join("0x%08x" % w for w in self.words)


class PayloadError(Exception):
    """No payload can be assembled from the given gadget pool."""


def compile_shell_payload(gadgets: List[Gadget]) -> Payload:
    """Build the EMIT(SHELL_MAGIC) chain, or raise :class:`PayloadError`.

    Chain layout (top of overwritten stack first)::

        [pop-eax] [SYS_EMIT] [pop-ebx] [SHELL_MAGIC] [syscall]
        [pop-eax] [SYS_EXIT] [pop-ebx] [0]           [syscall]

    The trailing EXIT sequence terminates the victim cleanly after the
    "shell" — real exploits do the same so the service does not crash and
    raise alarms.
    """
    pool = classify_roles(gadgets)
    pop_eax = _first(pool.pop_to_reg.get(EAX))
    pop_ebx = _first(pool.pop_to_reg.get(EBX))
    syscall = _first(pool.syscall)
    missing = [
        name
        for name, g in (
            ("pop eax; ret", pop_eax),
            ("pop ebx; ret", pop_ebx),
            ("int 0x80; ret", syscall),
        )
        if g is None
    ]
    if missing:
        raise PayloadError("missing gadget roles: %s" % ", ".join(missing))
    from ..isa.syscalls import SYS_EXIT

    return Payload(
        words=[
            pop_eax.addr, SYS_EMIT, pop_ebx.addr, SHELL_MAGIC, syscall.addr,
            pop_eax.addr, SYS_EXIT, pop_ebx.addr, 0, syscall.addr,
        ],
        gadgets_used=[pop_eax, pop_ebx, syscall],
    )


def _first(gadgets: Optional[List[Gadget]]) -> Optional[Gadget]:
    return gadgets[0] if gadgets else None


def can_build_payload(gadgets: List[Gadget]) -> bool:
    """True when the shell payload compiles from this pool."""
    try:
        compile_shell_payload(gadgets)
        return True
    except PayloadError:
        return False
