"""Seed-deterministic JIT-ROP adversary racing re-randomization.

Snow et al.'s just-in-time code reuse defeats *static* fine-grained
randomization by harvesting gadgets from memory disclosures at attack
time; Ahmed et al. quantify how continuous re-randomization shrinks the
window in which such a harvest stays usable.  This module models that
attacker against a VCFR program: between rotations it accumulates
randomization-table mappings from simulated disclosures (and optional
blind probes), checks whether the leaked set covers a full payload's
gadget roles, and loses everything when
:mod:`repro.security.rotation` retires the tables it learned.

The adversary is *seed-deterministic*: every draw comes from the
``random.Random`` instance handed in, every iterated structure is
sorted first, so identical specs produce bit-identical races across
processes (the property the gadget-window experiment family gates on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..ilr.randomizer import RandomizedProgram
from ..isa.registers import EAX, EBX
from .gadgets import Gadget, scan_gadgets
from .payload import classify_roles

__all__ = [
    "AdversarySpec",
    "AdversaryReport",
    "JITROPAdversary",
]


@dataclass(frozen=True)
class AdversarySpec:
    """Attacker capability knobs (all draws happen per execution window).

    ``disclosure_rate`` is the probability that a window contains a
    memory-disclosure event (a JIT-ROP style read primitive firing);
    each disclosure leaks up to ``mappings_per_disclosure`` entries of
    the *current* randomization table.  ``probe_rate`` optionally adds
    blind probing on top: a probe either leaks the mapping it hit or
    crashes detectably — the signal the on-probe rotation policy keys
    on.
    """

    enabled: bool = True
    disclosure_rate: float = 0.25
    mappings_per_disclosure: int = 32
    probe_rate: float = 0.0
    #: fallback goal when the gadget pool cannot express the shell
    #: payload: harvesting this many distinct gadget entry points.
    gadgets_needed: int = 3
    max_gadget_instructions: int = 5


@dataclass
class AdversaryReport:
    """Cumulative attacker-side accounting for one race."""

    disclosures: int = 0
    mappings_leaked: int = 0
    probes_sent: int = 0
    probe_crashes: int = 0
    probe_leaks: int = 0
    harvests_invalidated: int = 0
    gadgets_lost_to_rotation: int = 0


class JITROPAdversary:
    """Harvests gadget mappings from disclosures during execution.

    The attacker owns the *distributed* binary (threat model §II), so
    the gadget catalogue over original addresses is computed once up
    front; what rotations invalidate is the learned original->randomized
    mapping, never the catalogue.
    """

    def __init__(self, program: RandomizedProgram, spec: AdversarySpec,
                 rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.report = AdversaryReport()
        self.gadgets: List[Gadget] = scan_gadgets(
            program.original, spec.max_gadget_instructions
        )
        self._gadget_addrs: Set[int] = {g.addr for g in self.gadgets}
        pool = classify_roles(self.gadgets)
        self._role_addrs: Dict[str, Set[int]] = {
            "pop_eax": {g.addr for g in pool.pop_to_reg.get(EAX, ())},
            "pop_ebx": {g.addr for g in pool.pop_to_reg.get(EBX, ())},
            "syscall": {g.addr for g in pool.syscall},
        }
        #: whether the catalogue can express the shell payload at all —
        #: decides which goal the race measures.
        self.payload_possible: bool = all(self._role_addrs.values())
        #: learned original->randomized mappings, valid for the current
        #: epoch only.
        self.known: Dict[int, int] = {}
        self._known_gadget_addrs: Set[int] = set()
        #: per-epoch sorted table snapshot (rebuilt when the program
        #: object changes — i.e. on rotation).
        self._table_cache_for: Optional[int] = None
        self._table_cache: List = []

    # -- per-window attacker turn ------------------------------------------------

    def observe(self, program: RandomizedProgram) -> int:
        """One attacker turn against the current epoch.

        Returns the number of *detectable crash signals* this window
        produced (failed blind probes) — the input to the on-probe
        rotation policy.
        """
        spec = self.spec
        if not spec.enabled:
            return 0
        crashes = 0
        if spec.disclosure_rate > 0 and self.rng.random() < spec.disclosure_rate:
            self._disclose(program)
        if spec.probe_rate > 0 and self.rng.random() < spec.probe_rate:
            crashes += self._probe(program)
        return crashes

    def _epoch_table(self, program: RandomizedProgram) -> List:
        key = id(program)
        if self._table_cache_for != key:
            self._table_cache = sorted(program.rdr.rand.items())
            self._table_cache_for = key
        return self._table_cache

    def _disclose(self, program: RandomizedProgram) -> None:
        table = self._epoch_table(program)
        if not table:
            return
        count = min(self.spec.mappings_per_disclosure, len(table))
        sample = self.rng.sample(table, count)
        self.report.disclosures += 1
        for original, randomized in sample:
            if original not in self.known:
                self.report.mappings_leaked += 1
            self.known[original] = randomized
            if original in self._gadget_addrs:
                self._known_gadget_addrs.add(original)

    def _probe(self, program: RandomizedProgram) -> int:
        """One blind probe; returns 1 on a detectable crash, else 0."""
        layout = program.layout
        num_slots = layout.region_size // layout.slot_size
        guess = layout.region_base + (
            self.rng.randrange(num_slots) * layout.slot_size
        )
        self.report.probes_sent += 1
        original = program.rdr.derand.get(guess)
        if original is not None:
            # A live slot: the attacker learned one mapping for free.
            self.report.probe_leaks += 1
            self.known[original] = guess
            if original in self._gadget_addrs:
                self._known_gadget_addrs.add(original)
            return 0
        if guess in program.rdr.redirect:
            return 0  # failover entry: resolves, no crash, nothing new
        self.report.probe_crashes += 1
        return 1

    # -- goal / rotation interaction ---------------------------------------------

    def goal_met(self) -> bool:
        """Whether the current harvest suffices to attack *right now*.

        With a payload-capable catalogue the goal is a translated shell
        chain (one known mapping per role); otherwise it degrades to
        holding ``gadgets_needed`` distinct gadget entry points.
        """
        if not self.spec.enabled:
            return False
        if self.payload_possible:
            known = self._known_gadget_addrs
            return all(
                not addrs.isdisjoint(known)
                for addrs in self._role_addrs.values()
            )
        return len(self._known_gadget_addrs) >= self.spec.gadgets_needed

    def harvested_gadgets(self) -> List[Gadget]:
        """Catalogue gadgets whose current-epoch address is known."""
        return [g for g in self.gadgets if g.addr in self._known_gadget_addrs]

    def invalidate(self) -> None:
        """A rotation retired the tables: the harvest is worthless."""
        if self.known or self._known_gadget_addrs:
            self.report.harvests_invalidated += 1
            self.report.gadgets_lost_to_rotation += len(
                self._known_gadget_addrs
            )
        self.known.clear()
        self._known_gadget_addrs.clear()
