"""The attack/defense race: rotation service vs JIT-ROP adversary.

One race = one or many VCFR tenants time-sharing a core
(:class:`~repro.arch.context.TimeSharedCPU`), a
:class:`~repro.security.rotation.RotationService` rotating them on
policy, and a :class:`~repro.security.adversary.JITROPAdversary` per
tenant harvesting table mappings from simulated disclosures between
rotations.  The output is the paper-missing measurement: how long the
attacker's harvest stays *usable* (the gadget-availability window)
against what the defense paid for it (rotation cycles and flushed
simulator structures).

Everything is seed-deterministic: :func:`sweep_race` produces
bit-identical :class:`RaceResult` rows whether the points run
sequentially or across a process pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..arch.config import MachineConfig
from ..arch.context import TimeSharedCPU
from ..ilr.flow import make_flow
from ..ilr.randomizer import RandomizerConfig, randomize
from ..isa import assemble
from ..workloads import build_image
from .adversary import AdversarySpec, JITROPAdversary
from .rotation import RotationPolicy, RotationService, RotationStats

__all__ = [
    "RaceSpec",
    "RaceResult",
    "run_race",
    "sweep_race",
    "build_service_image",
    "SERVICE_WORKLOAD",
]

#: Synthetic long-running network service: the vulnerable-service
#: gadget material (so a shell payload is expressible) behind a
#: request-serving loop that never exhausts its own budget — the
#: race workload where payload assembly, not just gadget counting,
#: is the attacker's goal.
SERVICE_WORKLOAD = "service"

_SERVICE_SOURCE = """
; Long-running request server with the classic library-ish gadget
; material (syscall wrapper + register-restore epilogues).
.code 0x400000
main:
    movi ebp, 0
.serve:
    call handle_request
    movi eax, 5
    movi ebx, 0x600D600D     ; request handled
    int 0x80
    add ebp, 1
    cmp ebp, 100000000
    jl .serve
    movi eax, 1
    movi ebx, 0
    int 0x80

; Copies input_len bytes of request input into a 32-byte stack buffer.
handle_request:
    push ebp
    mov ebp, esp
    sub esp, 32
    movi esi, input_len
    mov ecx, [esi+0]
    movi esi, input_buf
    mov edi, esp
    movi edx, 0
.copy:
    cmp edx, ecx
    jge .done
    mov eax, [esi+0]
    mov [edi+0], eax
    add esi, 4
    add edi, 4
    add edx, 4
    jmp .copy
.done:
    mov esp, ebp
    pop ebp
    ret

do_syscall:
    int 0x80
    ret
restore_eax:
    pop eax
    ret
restore_regs:
    pop eax
    pop ebx
    ret

.data 0x8000000
input_len:
    .word 16
input_buf:
    .space 64
"""


@dataclass(frozen=True)
class RaceSpec:
    """One point of the rotation-policy x disclosure-rate grid."""

    workload: str = SERVICE_WORKLOAD
    scale: float = 0.3
    seed: int = 42
    tenants: int = 1
    policy: RotationPolicy = field(default_factory=RotationPolicy)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    #: scheduling quantum = the race's sampling window.
    window_instructions: int = 2_000
    #: per-tenant instruction budget.
    max_instructions: int = 60_000

    def label(self) -> str:
        return "%s/%s/disc%.2f" % (
            self.workload, self.policy.label(), self.adversary.disclosure_rate,
        )


@dataclass
class RaceResult:
    """Flat, JSON-able outcome of one race (bit-identity surface)."""

    # spec echo
    workload: str
    seed: int
    tenants: int
    policy: str
    disclosure_rate: float
    probe_rate: float
    adversary_enabled: bool
    window_instructions: int
    max_instructions: int
    # execution
    instructions: int
    cycles: int
    ipc: float
    total_windows: int
    # defense cost
    rotations: int
    rotation_cycles: int
    drc_flushes: int
    block_invalidations: int
    trace_invalidations: int
    max_stale_overlap: float
    # attacker progress
    payload_possible: bool
    disclosures: int
    mappings_leaked: int
    probes_sent: int
    probe_crashes: int
    harvests_invalidated: int
    gadgets_lost_to_rotation: int
    # the headline: gadget-availability window
    exposed_windows: int
    exposed_instructions: int
    exposure_fraction: float
    max_exposure_streak: int
    first_goal_icount: Optional[int]

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _TenantRace:
    """Per-tenant attacker-side bookkeeping for one race."""

    __slots__ = ("adversary", "windows", "exposed_windows",
                 "exposed_instructions", "streak", "max_streak",
                 "first_goal_icount")

    def __init__(self, adversary: JITROPAdversary):
        self.adversary = adversary
        self.windows = 0
        self.exposed_windows = 0
        self.exposed_instructions = 0
        self.streak = 0
        self.max_streak = 0
        self.first_goal_icount: Optional[int] = None


def build_service_image():
    """Assemble the synthetic long-running request-server workload.

    Shared with :mod:`repro.fleet`, whose tenants serve traffic off the
    same image the race harness probes.
    """
    return assemble(_SERVICE_SOURCE)


def _build_race_image(spec: RaceSpec):
    if spec.workload == SERVICE_WORKLOAD:
        return build_service_image()
    return build_image(spec.workload, spec.scale)


def run_race(spec: RaceSpec, events=None, tracer=None,
             config: Optional[MachineConfig] = None) -> RaceResult:
    """Run one race point; deterministic in ``spec`` alone."""
    image = _build_race_image(spec)
    programs = []
    flows = []
    for idx in range(spec.tenants):
        program = randomize(
            image, RandomizerConfig(seed=spec.seed + 101 * idx)
        )
        programs.append(program)
        flows.append(make_flow("vcfr", program))

    service = RotationService(spec.policy, events=events, tracer=tracer)
    tenants = {}
    for idx, program in enumerate(programs):
        name = "t%d" % idx
        rng = random.Random(
            (spec.seed * 1_000_003 + idx * 7919 + 17) % (1 << 62)
        )
        tenants[name] = _TenantRace(
            JITROPAdversary(program, spec.adversary, rng)
        )

    def on_quantum(name, cpu, executed, finished):
        race = tenants[name]
        adversary = race.adversary
        crashes = adversary.observe(service.current_program(name))
        if crashes:
            service.note_probe_crashes(name, crashes)
        race.windows += 1
        if adversary.goal_met():
            race.exposed_windows += 1
            race.exposed_instructions += executed
            race.streak += executed
            race.max_streak = max(race.max_streak, race.streak)
            if race.first_goal_icount is None:
                race.first_goal_icount = cpu.state.icount
        else:
            race.streak = 0
        if service.poll(name):
            # The rotation retired the tables the harvest was built on:
            # the availability window closes here.
            adversary.invalidate()
            race.streak = 0

    shared = TimeSharedCPU(
        [
            ("t%d" % idx, program.vcfr_image, flows[idx])
            for idx, program in enumerate(programs)
        ],
        config=config,
        quantum_instructions=spec.window_instructions,
        on_quantum=on_quantum,
        self_switch=False,
    )
    for (name, cpu), program in zip(shared.cpus, programs):
        service.register(name, cpu, program)
    shared.run(max_instructions_per_process=spec.max_instructions)

    instructions = sum(cpu.state.icount for _name, cpu in shared.cpus)
    # cpu.cycle already includes the per-switch charge from
    # TimeSharedCPU._on_switch_in; do not add switch_stats on top.
    cycles = sum(cpu.cycle for _name, cpu in shared.cpus)

    rotation = RotationStats()
    for name in tenants:
        stats = service.stats(name)
        rotation.rotations += stats.rotations
        rotation.rotation_cycles += stats.rotation_cycles
        rotation.drc_flushes += stats.drc_flushes
        rotation.block_invalidations += stats.block_invalidations
        rotation.trace_invalidations += stats.trace_invalidations
        rotation.max_stale_overlap = max(
            rotation.max_stale_overlap, stats.max_stale_overlap
        )

    total_windows = sum(race.windows for race in tenants.values())
    exposed_windows = sum(race.exposed_windows for race in tenants.values())
    exposed_instructions = sum(
        race.exposed_instructions for race in tenants.values()
    )
    firsts = [
        race.first_goal_icount
        for race in tenants.values()
        if race.first_goal_icount is not None
    ]
    report_totals = {}
    for key in ("disclosures", "mappings_leaked", "probes_sent",
                "probe_crashes", "harvests_invalidated",
                "gadgets_lost_to_rotation"):
        report_totals[key] = sum(
            getattr(race.adversary.report, key) for race in tenants.values()
        )

    return RaceResult(
        workload=spec.workload,
        seed=spec.seed,
        tenants=spec.tenants,
        policy=spec.policy.label(),
        disclosure_rate=spec.adversary.disclosure_rate,
        probe_rate=spec.adversary.probe_rate,
        adversary_enabled=spec.adversary.enabled,
        window_instructions=spec.window_instructions,
        max_instructions=spec.max_instructions,
        instructions=instructions,
        cycles=cycles,
        ipc=(instructions / cycles) if cycles else 0.0,
        total_windows=total_windows,
        rotations=rotation.rotations,
        rotation_cycles=rotation.rotation_cycles,
        drc_flushes=rotation.drc_flushes,
        block_invalidations=rotation.block_invalidations,
        trace_invalidations=rotation.trace_invalidations,
        max_stale_overlap=rotation.max_stale_overlap,
        payload_possible=any(
            race.adversary.payload_possible for race in tenants.values()
        ),
        disclosures=report_totals["disclosures"],
        mappings_leaked=report_totals["mappings_leaked"],
        probes_sent=report_totals["probes_sent"],
        probe_crashes=report_totals["probe_crashes"],
        harvests_invalidated=report_totals["harvests_invalidated"],
        gadgets_lost_to_rotation=report_totals["gadgets_lost_to_rotation"],
        exposed_windows=exposed_windows,
        exposed_instructions=exposed_instructions,
        exposure_fraction=(
            exposed_instructions / instructions if instructions else 0.0
        ),
        max_exposure_streak=max(
            (race.max_streak for race in tenants.values()), default=0
        ),
        first_goal_icount=min(firsts) if firsts else None,
    )


def _race_point(spec: RaceSpec) -> RaceResult:
    return run_race(spec)


def sweep_race(specs: Iterable[RaceSpec], workers: int = 0, events=None,
               store=None) -> List[RaceResult]:
    """Run a grid of race points, optionally across a process pool.

    Results come back in input order and are bit-identical between the
    sequential and pooled paths (workers compute, the parent records:
    all event emission and store writes happen here, after collection).
    """
    specs = list(specs)
    if events is not None:
        events.emit("race_start", points=len(specs))
    if workers and workers >= 2 and len(specs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_race_point, specs, chunksize=1))
    else:
        results = [run_race(spec) for spec in specs]
    for result in results:
        if events is not None:
            events.emit("race_point", **result.as_dict())
        if store is not None:
            store.record_race_point(result.as_dict())
    if events is not None:
        events.emit("race_end", points=len(results))
    return results
