"""Randomization entropy analysis (paper §V-C).

"Since randomization is done at instruction granularity, there is a large
randomization space" — these helpers quantify it for a concrete
randomized program: per-instruction placement entropy, the attacker's
chance of guessing any live instruction slot, and the residual attack
surface left by failover entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ilr.randomizer import RandomizedProgram


@dataclass(frozen=True)
class EntropyReport:
    """Entropy and attack-surface metrics of one randomized program."""

    #: log2(slots) — bits of uncertainty in any one instruction's location.
    placement_entropy_bits: float
    #: total slots in the randomized region.
    region_slots: int
    #: instructions actually placed.
    live_slots: int
    #: probability that a uniformly guessed slot holds *any* instruction.
    guess_hit_probability: float
    #: original-space addresses that remain legal entries (failover).
    unrandomized_entries: int
    #: fraction of instructions whose original address remains enterable.
    residual_entry_fraction: float

    @property
    def effective_hit_probability(self) -> float:
        """Probability a uniform guess enters code *without faulting*.

        ``resolve`` accepts live randomized slots **and** unrandomized
        failover entries, so the attacker's effective surface in
        failover mode is both populations; when the residual entries sit
        inside the guessed region this matches what
        :func:`~repro.security.probing.simulate_probing` observes
        empirically, and otherwise it is a conservative upper bound
        (the attacker already knows those original addresses and need
        not guess them).  ``guess_hit_probability`` stays the pure
        randomized-slot figure.
        """
        if self.region_slots <= 0:
            return 0.0
        accepted = self.live_slots + self.unrandomized_entries
        return min(1.0, accepted / self.region_slots)

    def expected_guesses_for_gadget(self, needed: int = 3) -> float:
        """Expected uniform guesses to locate ``needed`` distinct gadgets.

        A remote attacker probing blind (each wrong guess faults — and in
        practice crashes/flags the service) needs on the order of
        ``needed / p`` probes; with instruction-granular randomization over
        a large region this is astronomically detectable.  ``p`` is the
        *effective* hit probability: residual failover entries widen the
        accepted surface, so ignoring them would overstate the attacker's
        required effort exactly when the defense is weakest.
        """
        p = self.effective_hit_probability
        if p <= 0:
            return math.inf
        return needed / p


def analyze_entropy(program: RandomizedProgram) -> EntropyReport:
    """Compute the :class:`EntropyReport` of a randomized program."""
    layout = program.layout
    slots = layout.region_size // layout.slot_size
    live = layout.num_instructions
    entries = len(program.rdr.unrandomized_entries())
    return EntropyReport(
        placement_entropy_bits=layout.entropy_bits(),
        region_slots=slots,
        live_slots=live,
        guess_hit_probability=live / slots if slots else 0.0,
        unrandomized_entries=entries,
        residual_entry_fraction=entries / live if live else 0.0,
    )
