"""End-to-end ROP attack simulation (paper §II threat model, §V-A).

The scenario: a network-facing service copies an attacker-supplied request
into a fixed-size stack buffer without a bounds check.  The attacker has a
copy of the *distributed* binary, scans it for gadgets, compiles a payload
(see :mod:`repro.security.payload`) and smashes the stack with it.

* On the baseline machine the chain runs and the "shell" marker appears in
  the output stream — the exploit works.
* Under VCFR/naive-ILR the popped return address is an *original-space*
  gadget address; the randomized-tag check faults the transfer
  (:class:`~repro.ilr.flow.SecurityFault`) — the exploit is stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch.functional import run_image
from ..binary import BinaryImage
from ..ilr.flow import SecurityFault, make_flow
from ..ilr.randomizer import RandomizedProgram
from ..isa import assemble
from .gadgets import scan_gadgets
from .payload import SHELL_MAGIC, Payload, compile_shell_payload

#: Marker the service emits on a *legitimate* request.
SERVICE_OK = 0x600D600D

_VULN_SOURCE = """
; A tiny network service with a classic stack-smash vulnerability.
.code 0x400000
main:
    call handle_request
    movi eax, 5
    movi ebx, 0x600D600D     ; request handled
    int 0x80
    movi eax, 1
    movi ebx, 0
    int 0x80

; Copies input_len bytes of attacker-controlled input into a 32-byte
; stack buffer.  No bounds check: the bug.
handle_request:
    push ebp
    mov ebp, esp
    sub esp, 32
    movi esi, input_len
    mov ecx, [esi+0]
    movi esi, input_buf
    mov edi, esp
    movi edx, 0
.copy:
    cmp edx, ecx
    jge .done
    mov eax, [esi+0]
    mov [edi+0], eax
    add esi, 4
    add edi, 4
    add edx, 4
    jmp .copy
.done:
    mov esp, ebp
    pop ebp
    ret

; --- library-ish helpers: the gadget raw material -----------------------
; a syscall wrapper (gives 'int 0x80 ; ret')
do_syscall:
    int 0x80
    ret
; register-restore epilogues (give 'pop eax ; ret' / 'pop ebx ; ret')
restore_eax:
    pop eax
    ret
restore_regs:
    pop eax
    pop ebx
    ret
checksum:
    push ebp
    mov ebp, esp
    mov eax, ecx
    xor eax, edx
    add eax, ecx
    pop ebp
    ret

.data 0x8000000
input_len:
    .word 16
input_buf:
    .space 256
"""

#: Offset from the start of the stack buffer to the saved return address:
#: 32-byte buffer + 4-byte saved EBP.
_RETADDR_OFFSET = 36


def build_vulnerable_image() -> BinaryImage:
    """Assemble the vulnerable service binary."""
    return assemble(_VULN_SOURCE)


def craft_exploit_input(payload: Payload) -> List[int]:
    """Words the attacker sends: filler up to the return address + chain."""
    filler_words = _RETADDR_OFFSET // 4
    return [0x41414141] * filler_words + payload.words


def inject_input(image: BinaryImage, words: List[int]) -> None:
    """Write the request (length + body) into the service's input area."""
    length_addr = image.symbols.resolve("input_len")
    buf_addr = image.symbols.resolve("input_buf")
    image.write_u32(length_addr, 4 * len(words))
    for idx, word in enumerate(words):
        image.write_u32(buf_addr + 4 * idx, word)


@dataclass
class AttackOutcome:
    """Result of delivering one request to one execution mode."""

    mode: str
    shell_spawned: bool
    blocked: bool
    service_completed: bool
    fault: Optional[SecurityFault] = None

    def describe(self) -> str:
        if self.shell_spawned:
            return "%s: EXPLOITED (shell marker emitted)" % self.mode
        if self.blocked:
            return "%s: BLOCKED (%s)" % (self.mode, self.fault)
        return "%s: survived (no shell, service %s)" % (
            self.mode, "completed" if self.service_completed else "crashed",
        )

    def key(self) -> tuple:
        """The architectural outcome, engine-independent: what happened
        and (for blocked runs) *which address* tripped the tag check.
        Two engines executing the same injected image must produce
        equal keys."""
        return (
            self.mode,
            self.shell_spawned,
            self.blocked,
            self.service_completed,
            self.fault.target if self.fault is not None else None,
        )


def deliver(image: BinaryImage, mode: str, program=None,
            max_instructions: int = 1_000_000,
            engine: str = "functional", machine=None) -> AttackOutcome:
    """Run the (already injected) image under ``mode`` and observe.

    ``engine`` selects the executor: ``"functional"`` (the untimed
    reference, the default) or ``"cycle"`` (the cycle simulator;
    ``machine`` optionally supplies a
    :class:`~repro.arch.config.MachineConfig`, e.g. with the block or
    trace tier enabled).  The attack *outcome* is architectural, so
    every engine and tier must agree on it — the cross-check
    :func:`repro.qa.oracle.check_attack` enforces.
    """
    flow = make_flow(mode, program=program, image=image if mode == "baseline" else None)
    try:
        if engine == "cycle":
            from ..arch.cpu import CycleCPU

            result = CycleCPU(image, flow, machine).run(
                max_instructions=max_instructions)
            words = result.output.words
        elif engine == "functional":
            run = run_image(image, flow, max_instructions)
            words = run.output.words
        else:
            raise ValueError("unknown attack engine %r" % (engine,))
    except SecurityFault as fault:
        return AttackOutcome(mode, False, True, False, fault)
    except Exception:
        # Wild control flow that crashed without tripping the tag check.
        return AttackOutcome(mode, False, False, False)
    return AttackOutcome(
        mode,
        shell_spawned=SHELL_MAGIC in words,
        blocked=False,
        service_completed=SERVICE_OK in words,
    )


@dataclass
class AttackDemo:
    """Everything produced by :func:`simulate_attack`."""

    payload: Payload
    baseline: AttackOutcome
    vcfr: AttackOutcome
    naive: AttackOutcome
    benign_vcfr: AttackOutcome


def simulate_attack(program: RandomizedProgram) -> AttackDemo:
    """Full scenario against an already-randomized vulnerable service.

    ``program`` must be a randomization of :func:`build_vulnerable_image`.
    The attacker works from the *original* binary (threat model §II: the
    attacker never sees the randomized image).
    """
    gadgets = scan_gadgets(program.original)
    payload = compile_shell_payload(gadgets)
    exploit = craft_exploit_input(payload)

    baseline_img = BinaryImage.from_bytes(program.original.to_bytes())
    inject_input(baseline_img, exploit)
    vcfr_img = BinaryImage.from_bytes(program.vcfr_image.to_bytes())
    inject_input(vcfr_img, exploit)
    naive_img = BinaryImage.from_bytes(program.naive_image.to_bytes())
    inject_input(naive_img, exploit)

    benign_img = BinaryImage.from_bytes(program.vcfr_image.to_bytes())
    inject_input(benign_img, [0x11111111, 0x22222222])

    return AttackDemo(
        payload=payload,
        baseline=deliver(baseline_img, "baseline"),
        vcfr=deliver(vcfr_img, "vcfr", program),
        naive=deliver(naive_img, "naive_ilr", program),
        benign_vcfr=deliver(benign_img, "vcfr", program),
    )
