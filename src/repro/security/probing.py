"""Remote blind-probing attack model (paper §I / §V-C entropy argument).

Snow et al. showed that *fine-grained* randomization can be defeated by
just-in-time code reuse if the attacker can repeatedly *read* code memory;
the paper's threat model denies reads, leaving only blind probing: guess
an address, transfer control there, observe whether the service crashed.

Under VCFR every wrong guess faults (randomized tag / strict entry), so

* each probe that misses a live randomized slot crashes the service
  (detectable, and — combined with re-randomization on restart —
  knowledge-resetting), *except* when it lands on an unrandomized
  failover entry whose original address lies inside the randomized
  region — the residual surface the entropy report tracks;
* the expected number of probes to find even a single live instruction is
  ``region_slots / live_slots``; a usable *gadget* is rarer still.

:func:`simulate_probing` plays this game concretely against a
:class:`~repro.ilr.randomizer.RandomizedProgram` and reports the outcome
distribution — the quantitative backing for the paper's claim that the
randomization space is large enough to make remote attacks impractical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..ilr.flow import SecurityFault, VCFRFlow
from ..ilr.randomizer import RandomizedProgram


@dataclass
class ProbeReport:
    """Outcome of a blind-probing campaign.

    ``resolve`` accepts exactly two kinds of guess: a live randomized
    slot (the guess is in the de-randomization table) and an
    unrandomized *failover* entry whose original address happens to lie
    inside the guessed region.  The two are different attacker
    outcomes — a failover hit re-enters known original-space code and
    is precisely the residual surface ``EntropyReport.
    unrandomized_entries`` counts — so they are reported separately
    instead of being conflated into one "hit" bucket.
    """

    probes: int
    crashes: int
    live_hits: int          # probes that landed on a live randomized slot
    failover_hits: int      # probes accepted via an unrandomized failover entry
    first_live_probe: Optional[int]  # 1-based index of the first live hit
    #: expected probes per *accepted* guess (live slots + in-region
    #: failover entries — everything ``resolve`` lets through).
    expected_probes_per_hit: float

    @property
    def hits(self) -> int:
        """All probes that resolved without a fault."""
        return self.live_hits + self.failover_hits

    @property
    def crash_rate(self) -> float:
        return self.crashes / self.probes if self.probes else 0.0


def simulate_probing(
    program: RandomizedProgram,
    probes: int = 10_000,
    seed: int = 1,
) -> ProbeReport:
    """Fire ``probes`` uniform guesses into the randomized region.

    Each guess is resolved exactly the way a control transfer would be;
    a :class:`SecurityFault` is a service crash.  A guess that resolves
    is classified by *how* it resolved: a live randomized slot
    (``live_hits`` — the attacker found *an* instruction, still not
    necessarily a useful gadget) or an unrandomized failover entry
    whose original address fell inside the randomized region
    (``failover_hits`` — the attacker re-entered code at a known
    original address).
    """
    rng = random.Random(seed)
    layout = program.layout
    flow = VCFRFlow(program.rdr, program.entry_rand)
    derand = program.rdr.derand
    num_slots = layout.region_size // layout.slot_size

    crashes = 0
    live_hits = 0
    failover_hits = 0
    first_live: Optional[int] = None
    for probe_index in range(1, probes + 1):
        guess = layout.region_base + rng.randrange(num_slots) * layout.slot_size
        try:
            flow.resolve(guess)
        except SecurityFault:
            crashes += 1
            continue
        if guess in derand:
            live_hits += 1
            if first_live is None:
                first_live = probe_index
        else:
            failover_hits += 1

    accepted = layout.num_instructions + _failover_slots_in_region(program)
    return ProbeReport(
        probes=probes,
        crashes=crashes,
        live_hits=live_hits,
        failover_hits=failover_hits,
        first_live_probe=first_live,
        expected_probes_per_hit=(
            (num_slots / accepted) if accepted else float("inf")
        ),
    )


def _failover_slots_in_region(program: RandomizedProgram) -> int:
    """Failover redirect entries a slot-aligned in-region probe can land on.

    Probes only guess slot-aligned addresses inside the randomized
    region, so a failover entry contributes to the accepted set exactly
    when its original address is both in-region and slot-aligned.  An
    address that doubles as a live randomized slot is already counted
    by ``num_instructions`` (``resolve`` checks the de-randomization
    table first), so it is excluded here.
    """
    layout = program.layout
    derand = program.rdr.derand
    lo = layout.region_base
    hi = layout.region_base + layout.region_size
    return sum(
        1
        for addr in program.rdr.unrandomized_entries()
        if lo <= addr < hi
        and (addr - lo) % layout.slot_size == 0
        and addr not in derand
    )


def probes_to_defeat(
    program: RandomizedProgram,
    gadgets_needed: int = 3,
) -> float:
    """Expected probes to blindly locate a full gadget set.

    Only instructions that *end a usable gadget chain* count; blind
    probing cannot even tell which instruction it found without a further
    oracle, so this is a strict lower bound on attacker effort — and each
    expected miss in between is a crash.
    """
    layout = program.layout
    num_slots = layout.region_size // layout.slot_size
    live = layout.num_instructions
    if live == 0:
        return float("inf")
    return gadgets_needed * num_slots / live
