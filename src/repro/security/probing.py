"""Remote blind-probing attack model (paper §I / §V-C entropy argument).

Snow et al. showed that *fine-grained* randomization can be defeated by
just-in-time code reuse if the attacker can repeatedly *read* code memory;
the paper's threat model denies reads, leaving only blind probing: guess
an address, transfer control there, observe whether the service crashed.

Under VCFR every wrong guess faults (randomized tag / strict entry), so

* each probe that misses a live randomized slot crashes the service
  (detectable, and — combined with re-randomization on restart —
  knowledge-resetting);
* the expected number of probes to find even a single live instruction is
  ``region_slots / live_slots``; a usable *gadget* is rarer still.

:func:`simulate_probing` plays this game concretely against a
:class:`~repro.ilr.randomizer.RandomizedProgram` and reports the outcome
distribution — the quantitative backing for the paper's claim that the
randomization space is large enough to make remote attacks impractical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..ilr.flow import SecurityFault, VCFRFlow
from ..ilr.randomizer import RandomizedProgram


@dataclass
class ProbeReport:
    """Outcome of a blind-probing campaign."""

    probes: int
    crashes: int
    live_hits: int          # probes that landed on a live randomized slot
    first_live_probe: Optional[int]  # 1-based index of the first live hit
    expected_probes_per_hit: float

    @property
    def crash_rate(self) -> float:
        return self.crashes / self.probes if self.probes else 0.0


def simulate_probing(
    program: RandomizedProgram,
    probes: int = 10_000,
    seed: int = 1,
) -> ProbeReport:
    """Fire ``probes`` uniform guesses into the randomized region.

    Each guess is resolved exactly the way a control transfer would be;
    a :class:`SecurityFault` is a service crash, a live slot is a "hit"
    (the attacker found *an* instruction — still not necessarily a useful
    gadget).
    """
    rng = random.Random(seed)
    layout = program.layout
    flow = VCFRFlow(program.rdr, program.entry_rand)
    num_slots = layout.region_size // layout.slot_size

    crashes = 0
    live_hits = 0
    first_live: Optional[int] = None
    for probe_index in range(1, probes + 1):
        guess = layout.region_base + rng.randrange(num_slots) * layout.slot_size
        try:
            flow.resolve(guess)
        except SecurityFault:
            crashes += 1
            continue
        live_hits += 1
        if first_live is None:
            first_live = probe_index

    live = layout.num_instructions
    return ProbeReport(
        probes=probes,
        crashes=crashes,
        live_hits=live_hits,
        first_live_probe=first_live,
        expected_probes_per_hit=(num_slots / live) if live else float("inf"),
    )


def probes_to_defeat(
    program: RandomizedProgram,
    gadgets_needed: int = 3,
) -> float:
    """Expected probes to blindly locate a full gadget set.

    Only instructions that *end a usable gadget chain* count; blind
    probing cannot even tell which instruction it found without a further
    oracle, so this is a strict lower bound on attacker effort — and each
    expected miss in between is a crash.
    """
    layout = program.layout
    num_slots = layout.region_size // layout.slot_size
    live = layout.num_instructions
    if live == 0:
        return float("inf")
    return gadgets_needed * num_slots / live
