"""Pre-decoded basic-block cache for the cycle simulator's fast path.

The reference interpreter loop (:meth:`CycleCPU._execute_loop_ref`)
re-derives, for *every* retired instruction, facts that are static for
the whole run: the decoded instruction, its architectural PC, its
fall-through fetch PC, the icache line/iTLB page it occupies and the
next-line prefetch addresses.  This module hoists all of that to
first-execution time: the first time a fetch PC is used as a *leader*,
:meth:`BlockCache.build` decodes the straight-line run up to the next
control transfer (or the ``block_max_insts`` cap) and freezes one op
tuple per instruction.  The fast loop then replays op tuples, touching
the dynamic machinery (caches, TLBs, predictors, DRC, executor handler)
with everything else precomputed.

Correctness contract
--------------------

* Every precomputed field is a pure function of the program image and
  the flow's randomization tables.  Both are static *between explicit
  invalidations*: any code rewrite (:meth:`CycleCPU.rewrite_code`) or
  randomization-table swap (re-randomization epoch) must call
  :meth:`invalidate_range` / :meth:`invalidate_all`, otherwise blocks
  would replay stale fall-through and architectural PCs.
* Blocks never cross a control transfer or a ``halt``; interior
  instructions are therefore guaranteed ``CTRL_NONE``, which is what
  lets the fast loop skip the branch unit for them (the reference
  ``_branch_stall`` is a stat-free ``(0, True)`` for such instructions).
* Storage is bounded (``block_cache_capacity`` blocks; the shared
  decode map is bounded by ``capacity * max_insts`` entries) with
  flush-on-overflow, so a pathological workload degrades to rebuild
  cost instead of unbounded host memory — this replaces the old
  unbounded ``CycleCPU._decode_cache``.

Op tuple layout (index: field) — consumed by ``_execute_loop_fast``:

====  =========================================================
 0    executor handler, specialized to the instruction at decode
      time (:func:`~repro.arch.executor.specialize_handler`)
 1    decoded :class:`Instruction`
 2    fetch PC
 3    architectural PC (``flow.arch_pc_of(fetch_pc)``)
 4    extra execute-stage cycles (``EXEC_EXTRA``)
 5    iTLB page of the fetch PC
 6    IL1 line of the fetch PC
 7    next-line prefetch address for field 6
 8    True when the instruction straddles into a second line
 9    fetch address of the second line (valid when 8 is True)
10    second line number (valid when 8 is True)
11    next-line prefetch address for the second line
12    fall-through fetch PC (``flow.sequential``), or None when it
      is not statically computable (recomputed dynamically; only
      reachable for CTRL_NONE terminals)
13    True when the instruction can touch data memory (reads or
      writes) — False lets the fast loop skip the load/store-address
      reset and the data-stall probe entirely
14    True for ``int`` (syscalls observe ``state.icount``, so it must
      be synced before the handler runs)
====  =========================================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import opcodes
from ..isa.decoder import DecodeError, decode
from ..isa.instruction import Instruction
from .executor import DISPATCH, EXEC_EXTRA, ExecutionError, specialize_handler

#: Mnemonics whose handlers can return a non-``CTRL_NONE`` kind; any
#: such instruction terminates its block.
_TERMINAL_MNEMONICS = frozenset(
    ["call", "calli", "jmp", "jmp8", "jmpi", "ret", "halt"]
    + ["j" + name for name in opcodes.CC_NAMES]
)


def _missing_handler(mnemonic: str):
    """Deferred ExecutionError: raised at *execution* time so the fast
    path charges the same fetch-side stalls the reference loop charges
    before ``execute`` rejects the instruction."""

    def raise_no_semantics(inst, state, adapter):
        raise ExecutionError("no semantics for %s" % mnemonic)

    return raise_no_semantics


class Block:
    """One pre-decoded straight-line run of instructions.

    ``interior`` ops are guaranteed non-control (always ``CTRL_NONE``);
    ``term`` is the single terminal op (control transfer, halt, cap hit
    or decode-ahead boundary).  ``lo``/``hi`` bound every fetch byte the
    block's instructions occupy.  ``spans`` is None when the block is
    fetch-contiguous (the ``[lo, hi)`` envelope is then exact); for a
    scattered fetch space (naive ILR) it holds the per-instruction
    ``(start, end)`` byte ranges so range invalidation can be exact
    about the gaps between instructions.
    """

    __slots__ = ("leader", "interior", "term", "n", "lo", "hi", "spans")

    def __init__(self, leader, interior, term, n, lo, hi, spans=None):
        self.leader = leader
        self.interior = interior
        self.term = term
        self.n = n
        self.lo = lo
        self.hi = hi
        self.spans = spans


def block_overlaps(block: Block, start: int, end: int) -> bool:
    """Exact test for ``block`` occupying any byte of ``[start, end)``.

    The envelope check is a prefilter; scattered blocks are then
    checked span-by-span so a write that lands purely in a gap between
    instructions does not invalidate them.  Shared with the trace tier
    (:mod:`repro.arch.tracecache`), so both tiers always agree on what
    a code write invalidated.
    """
    if not (block.lo < end and block.hi > start):
        return False
    spans = block.spans
    if spans is None:
        return True
    return any(lo < end and hi > start for lo, hi in spans)


class BlockCache:
    """Bounded, invalidation-aware block + decode storage."""

    __slots__ = (
        "capacity", "max_insts", "blocks", "decoded",
        "_decoded_capacity", "builds", "flushes", "invalidations",
        "execs",
    )

    def __init__(self, capacity: int = 4096, max_insts: int = 32):
        self.capacity = max(1, capacity)
        self.max_insts = max(1, max_insts)
        #: leader fetch PC -> :class:`Block` (the fast loop indexes this
        #: dict directly).
        self.blocks: Dict[int, Block] = {}
        #: fetch PC -> decoded instruction, shared with the reference
        #: loop's ``_fetch`` so both paths decode each PC once.
        self.decoded: Dict[int, Instruction] = {}
        self._decoded_capacity = self.capacity * self.max_insts
        self.builds = 0
        self.flushes = 0
        self.invalidations = 0
        #: blocks executed to completion by the fast loop (folded in
        #: bulk at loop exit; ``execs - builds`` approximates hits).
        self.execs = 0

    def __len__(self) -> int:
        return len(self.blocks)

    # -- decode ------------------------------------------------------------

    def decode_one(self, fetch_pc: int, mem) -> Instruction:
        """Decode (and cache) the instruction at ``fetch_pc``."""
        decoded = self.decoded
        if len(decoded) >= self._decoded_capacity:
            decoded.clear()
            self.flushes += 1
        inst = decode(mem.read_block(fetch_pc, 8), 0, fetch_pc)
        decoded[fetch_pc] = inst
        return inst

    # -- block construction ------------------------------------------------

    def build(self, leader: int, mem, flow, page_shift: int,
              line_shift: int) -> Block:
        """Decode the block led by ``leader`` and install it.

        A decode/semantics failure on the leader propagates (mirroring
        the reference loop, which faults when it reaches that PC); a
        failure on any *later* instruction just ends the block early, so
        the faulting PC becomes a leader itself and faults at exactly
        the same retired-instruction boundary the reference loop would.
        """
        blocks = self.blocks
        if len(blocks) >= self.capacity:
            blocks.clear()
            self.flushes += 1

        ops = []
        spans = []
        contiguous = True
        lo = leader
        hi = leader
        fetch_pc: Optional[int] = leader
        decoded = self.decoded
        max_insts = self.max_insts
        while len(ops) < max_insts and fetch_pc is not None:
            inst = decoded.get(fetch_pc)
            if inst is None:
                if ops:
                    try:
                        inst = self.decode_one(fetch_pc, mem)
                    except DecodeError:
                        break
                else:
                    inst = self.decode_one(fetch_pc, mem)

            if inst.mnemonic in DISPATCH:
                handler = specialize_handler(inst)
                is_control = inst.mnemonic in _TERMINAL_MNEMONICS
            else:
                if ops:
                    break
                handler = _missing_handler(inst.mnemonic)
                is_control = True

            seq: Optional[int]
            try:
                seq = flow.sequential(inst)
            except Exception:
                # Not statically computable (e.g. no fall-through map
                # entry past a terminal).  The fast loop recomputes it
                # dynamically if a CTRL_NONE outcome ever needs it.
                seq = None

            length = inst.length
            line = fetch_pc >> line_shift
            end_line = (fetch_pc + length - 1) >> line_shift
            ops.append((
                handler,
                inst,
                fetch_pc,
                flow.arch_pc_of(fetch_pc),
                EXEC_EXTRA.get(inst.mnemonic, 0),
                fetch_pc >> page_shift,
                line,
                (line + 1) << line_shift,
                end_line != line,
                end_line << line_shift,
                end_line,
                (end_line + 1) << line_shift,
                seq,
                inst.reads_memory or inst.writes_memory,
                inst.mnemonic == "int",
            ))
            if spans and fetch_pc != spans[-1][1]:
                contiguous = False
            spans.append((fetch_pc, fetch_pc + length))
            if fetch_pc < lo:
                lo = fetch_pc
            if fetch_pc + length > hi:
                hi = fetch_pc + length
            if is_control:
                break
            fetch_pc = seq

        block = Block(
            leader, tuple(ops[:-1]), ops[-1], len(ops), lo, hi,
            None if contiguous else tuple(spans),
        )
        blocks[leader] = block
        self.builds += 1
        return block

    # -- invalidation ------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every block and decoded instruction (table swap /
        re-randomization epoch: every precomputed PC may be stale)."""
        if self.blocks or self.decoded:
            self.invalidations += 1
        self.blocks.clear()
        self.decoded.clear()

    def invalidate_range(self, start: int, size: int) -> None:
        """Drop blocks and decoded instructions overlapping
        ``[start, start + size)`` in fetch space (code rewrite).

        Overlap is exact per instruction (:func:`block_overlaps`): a
        write straddling a block's boundary instruction drops the
        block, while a write landing purely in a gap between a
        scattered block's instructions leaves it cached."""
        if size <= 0:
            return
        end = start + size
        blocks = self.blocks
        stale = [pc for pc, b in blocks.items()
                 if block_overlaps(b, start, end)]
        for pc in stale:
            del blocks[pc]
        decoded = self.decoded
        stale_pcs = [pc for pc, inst in decoded.items()
                     if pc < end and pc + inst.length > start]
        for pc in stale_pcs:
            del decoded[pc]
        if stale or stale_pcs:
            self.invalidations += 1

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Host-side counters (not part of simulated statistics)."""
        return {
            "blocks": len(self.blocks),
            "decoded": len(self.decoded),
            "builds": self.builds,
            "flushes": self.flushes,
            "invalidations": self.invalidations,
            "execs": self.execs,
            "hits": max(0, self.execs - self.builds),
        }
