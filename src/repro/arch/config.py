"""Machine configuration (paper §VI-C machine parameters).

Defaults reproduce the evaluated machine: a 1.6 GHz single-issue in-order
x86 core with 32 KB 2-way IL1/DL1 (64 B lines, 2-cycle), a unified 512 KB
8-way 12-cycle L2, 64-entry fully-associative TLBs, a 2-level gshare
predictor with BTB and RAS, a next-line IL1 prefetcher, a DDR-style DRAM
model, and a small direct-mapped DRC (64–512 entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Version of the *timing semantics* of the simulator.  Bump whenever a
#: change alters cycle counts or statistics for an identical spec; the
#: result-cache fingerprint includes it, so results produced by an older
#: timing model can never be served against a newer one.
TIMING_MODEL_VERSION = 3

#: MachineConfig fields that tune *host-side* execution strategy only.
#: They are required (and differentially tested) to have zero effect on
#: simulated cycles and statistics, so the result-cache fingerprint
#: excludes them — a result computed by the reference loop is equally
#: valid for the fast path and vice versa.
HOST_TUNING_FIELDS: Tuple[str, ...] = (
    "fastpath", "block_cache_capacity", "block_max_insts",
    "tracepath", "trace_hot_threshold", "trace_max_blocks",
    "trace_max_insts", "trace_cache_capacity",
)


@dataclass
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    latency: int = 2

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass
class BranchConfig:
    #: gshare: global history bits (table has 2**bits 2-bit counters).
    gshare_bits: int = 12
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 16
    #: full pipeline flush on a direction/target mispredict.
    mispredict_penalty: int = 6
    #: bubble for a correctly-predicted taken branch (fetch redirect).
    taken_bubble: int = 1
    #: extra bubble when a taken branch misses the BTB.
    btb_miss_penalty: int = 2


@dataclass
class TLBConfig:
    entries: int = 64  # fully associative (paper: 64-entry FA I-TLB/D-TLB)
    page_bits: int = 12
    miss_penalty: int = 12  # page-walk cycles (warm paging-structure caches)


@dataclass
class DRAMConfig:
    num_banks: int = 8
    row_bits: int = 12  # 4 KiB rows; open-page policy
    t_cas: int = 15  # CPU cycles (column access, row already open)
    t_rcd: int = 15  # activate
    t_rp: int = 15  # precharge
    controller_overhead: int = 10


@dataclass
class DRCConfig:
    """De-Randomization Cache: small direct-mapped translation cache."""

    entries: int = 128  # paper evaluates 64 / 128 / 512
    latency: int = 1
    #: associativity: 1 = direct-mapped (the paper's design), n = n-way,
    #: 0 = fully associative (ablation only).
    assoc: int = 1
    #: bitmap cache for §IV-C marked stack slots.
    bitmap_latency: int = 1


@dataclass
class MachineConfig:
    freq_mhz: int = 1600
    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 64, 2)
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 64, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 64, 12)
    )
    branch: BranchConfig = field(default_factory=BranchConfig)
    itlb: TLBConfig = field(default_factory=TLBConfig)
    dtlb: TLBConfig = field(default_factory=TLBConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    drc: DRCConfig = field(default_factory=DRCConfig)
    #: enable the next-line IL1 instruction prefetcher.
    prefetch_il1: bool = True
    #: average exposed load-use latency for a DL1 hit, in stall cycles.
    load_use_stall: int = 1
    #: run the basic-block fast path (pre-decoded block cache + flattened
    #: stall kernels).  ``False`` selects the per-instruction reference
    #: loop; both are cycle- and stats-exact by construction (host-side
    #: knob — excluded from the result-cache fingerprint).
    fastpath: bool = True
    #: bounded capacity of the basic-block cache, in blocks (host-side).
    block_cache_capacity: int = 4096
    #: maximum instructions pre-decoded into one block (host-side).
    block_max_insts: int = 32
    #: run the superblock trace tier on top of the block fast path: hot
    #: blocks are linked across predicted branches into traces and each
    #: trace is compiled to a specialized Python function (host-side
    #: knob; cycle/stat-exact by contract, like ``fastpath``).
    tracepath: bool = True
    #: block executions before a leader is hot enough to anchor a trace
    #: recording (host-side).
    trace_hot_threshold: int = 16
    #: maximum blocks linked into one trace (host-side).
    trace_max_blocks: int = 16
    #: maximum instructions across one trace (host-side).
    trace_max_insts: int = 256
    #: bounded capacity of the compiled-trace cache, in traces
    #: (host-side; flush-on-overflow like the block cache).
    trace_cache_capacity: int = 512

    def with_drc_entries(self, entries: int) -> "MachineConfig":
        """A copy of this config with a different DRC size (Fig. 13/14 sweeps)."""
        import copy

        cfg = copy.deepcopy(self)
        cfg.drc.entries = entries
        return cfg

    def with_drc(self, entries: Optional[int] = None,
                 assoc: Optional[int] = None) -> "MachineConfig":
        """A copy with DRC size and/or associativity overridden (ablations)."""
        import copy

        cfg = copy.deepcopy(self)
        if entries is not None:
            cfg.drc.entries = entries
        if assoc is not None:
            cfg.drc.assoc = assoc
        return cfg


def default_config() -> MachineConfig:
    """The paper's evaluated machine."""
    return MachineConfig()
