"""McPAT-style per-access energy model.

The paper integrates a modified McPAT with XIOSim to report that the DRC
adds ~0.18% to CPU dynamic power (Fig. 15).  We reproduce the *relative*
measure the same way: a per-access dynamic energy is assigned to each
micro-architectural structure, total dynamic energy is accumulated from
the activity counters of a run, and the DRC share is reported as a
percentage of the total.

Energy constants are order-of-magnitude figures (pJ per access at ~45 nm,
the McPAT-era node) — absolute watts are not calibrated, percentages are
the result.  A small direct-mapped DRC costs roughly what a tiny SRAM
lookup does; it is accessed only on randomized control transfers, hence
the tiny share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EnergyParams:
    """Dynamic energy per access, in picojoules."""

    pj_per_access: Dict[str, float] = field(
        default_factory=lambda: {
            "il1": 50.0,
            "dl1": 55.0,
            "l2": 240.0,
            "dram": 2000.0,
            "itlb": 8.0,
            "dtlb": 8.0,
            "btb": 15.0,
            "gshare": 6.0,
            "ras": 3.0,
            "regfile": 10.0,
            "alu": 20.0,
            "decode": 12.0,
            "fetch": 10.0,
            # DRC: 64-512 entry direct-mapped SRAM — a few hundred bytes
            # of array, two orders smaller than the 32 KB IL1.
            "drc": 2.0,
            "drc_bitmap": 2.0,
        }
    )

    def scaled_drc(self, entries: int) -> float:
        """DRC access energy scales weakly (~sqrt) with its entry count."""
        base_entries = 128
        return self.pj_per_access["drc"] * (entries / base_entries) ** 0.5


@dataclass
class EnergyBreakdown:
    """Dynamic energy per structure for one simulation run (picojoules)."""

    by_structure: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.by_structure.values())

    @property
    def drc_pj(self) -> float:
        return self.by_structure.get("drc", 0.0) + self.by_structure.get(
            "drc_bitmap", 0.0
        )

    @property
    def drc_overhead_percent(self) -> float:
        """DRC dynamic energy as % of total CPU dynamic energy (Fig. 15)."""
        total = self.total_pj
        return 100.0 * self.drc_pj / total if total else 0.0

    def rows(self):
        return sorted(self.by_structure.items(), key=lambda kv: -kv[1])


def compute_energy(activity: Dict[str, int], params: EnergyParams = None,
                   drc_entries: int = 128) -> EnergyBreakdown:
    """Fold activity counters into a dynamic-energy breakdown.

    ``activity`` maps structure name -> access count; unknown structures
    are ignored so callers can pass raw counter dumps.
    """
    params = params or EnergyParams()
    breakdown = EnergyBreakdown()
    for name, count in activity.items():
        if name == "drc":
            energy = params.scaled_drc(drc_entries) * count
        else:
            per_access = params.pj_per_access.get(name)
            if per_access is None:
                continue
            energy = per_access * count
        breakdown.by_structure[name] = energy
    return breakdown
