"""Micro-architecture models: functional execution and the cycle simulator.

This package hosts the machine substrate of the reproduction:

* :mod:`memory`, :mod:`state`, :mod:`executor`, :mod:`functional` — the
  functional core shared by every execution path;
* :mod:`cache`, :mod:`prefetch`, :mod:`tlb`, :mod:`dram` — the memory
  hierarchy timing models;
* :mod:`branch` — gshare predictor, BTB, return address stack;
* :mod:`drc` — the De-Randomization Cache;
* :mod:`cpu` — the single-issue in-order cycle simulator;
* :mod:`power` — the McPAT-style per-access energy model.
"""

from .context import (
    TimeSharedCPU,
    TimeSharedResult,
    measure_switch_sensitivity,
)
from .functional import (
    FunctionalCPU,
    InstructionLimitExceeded,
    RunResult,
    run_image,
)
from .memory import MemoryFault, SparseMemory
from .sharedmem import MemoryPort, SharedMemorySystem
from .trace import TraceEntry, Tracer, attach_tracer
from .state import ExitProgram, MachineState

__all__ = [
    "FunctionalCPU",
    "run_image",
    "RunResult",
    "InstructionLimitExceeded",
    "SparseMemory",
    "MemoryFault",
    "MachineState",
    "ExitProgram",
    "Tracer",
    "TraceEntry",
    "attach_tracer",
    "TimeSharedCPU",
    "TimeSharedResult",
    "measure_switch_sensitivity",
    "SharedMemorySystem",
    "MemoryPort",
]
