"""Fully-associative TLB with the paper's page-visibility extension.

Paper §IV-B: "A simple implementation of this protection is to extend each
entry of the TLB with a new page visibility bit.  For a page, if the
visibility bit is set ... contents stored in the page can be accessed by
the user space instructions.  Otherwise ... the page is invisible to the
application instructions.  The randomization and de-randomization
translation tables are stored in such pages."

The simulator registers the RDR-table and bitmap page ranges as invisible;
any *program* access to them raises :class:`PageVisibilityFault`, while
micro-architectural accesses (DRC refills) bypass the check.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from .config import TLBConfig


class PageVisibilityFault(Exception):
    """User-space access to a kernel-invisible page (RDR tables / bitmap)."""

    def __init__(self, addr: int):
        super().__init__("user access to invisible page at 0x%08x" % addr)
        self.addr = addr


class TLBStats:
    __slots__ = ("accesses", "misses")

    def __init__(self):
        self.accesses = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """LRU fully-associative TLB (timing only; translation is identity).

    Flattened for the simulator's hot loop: ``__slots__`` storage and
    precomputed page-shift / entry-count / penalty fields so
    :meth:`access` never chases ``self.config`` attributes.
    """

    __slots__ = (
        "config", "name", "stats", "_entries", "_invisible",
        "_page_bits", "_capacity", "_miss_penalty", "_inv_lo", "_inv_hi",
    )

    def __init__(self, config: TLBConfig, name: str = "tlb"):
        self.config = config
        self.name = name
        self.stats = TLBStats()
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        #: (start_page, end_page) ranges whose visibility bit is clear.
        self._invisible: List[Tuple[int, int]] = []
        self._page_bits = config.page_bits
        self._capacity = config.entries
        self._miss_penalty = config.miss_penalty
        # Envelope of all invisible pages: one range compare rejects the
        # overwhelmingly common visible case before any per-range scan.
        self._inv_lo = 1 << 62
        self._inv_hi = -1

    def set_invisible(self, start: int, size: int) -> None:
        """Mark byte range [start, start+size) as user-invisible."""
        bits = self._page_bits
        lo = start >> bits
        hi = (start + size - 1) >> bits
        self._invisible.append((lo, hi))
        if lo < self._inv_lo:
            self._inv_lo = lo
        if hi > self._inv_hi:
            self._inv_hi = hi

    def _is_invisible(self, page: int) -> bool:
        for lo, hi in self._invisible:
            if lo <= page <= hi:
                return True
        return False

    def access(self, addr: int, user: bool = True) -> int:
        """Translate; returns extra latency (0 on hit, miss penalty otherwise).

        ``user=False`` marks a micro-architectural access (DRC refill),
        which may touch invisible pages.
        """
        page = addr >> self._page_bits
        if user and self._inv_lo <= page <= self._inv_hi \
                and self._is_invisible(page):
            raise PageVisibilityFault(addr)

        stats = self.stats
        entries = self._entries
        stats.accesses += 1
        if page in entries:
            entries.move_to_end(page)
            return 0
        stats.misses += 1
        if len(entries) >= self._capacity:
            entries.popitem(last=False)
        entries[page] = True
        return self._miss_penalty

    def flush(self) -> None:
        self._entries.clear()
