"""Sparse byte-addressable memory for the simulators.

Backing store is a dict of 4 KiB pages, each a ``bytearray``.  This is the
*functional* memory shared by the functional executor, the cycle simulator
and the software-ILR emulator; the cache hierarchy and DRAM model only
track *timing* and always read their data through this object.
"""

from __future__ import annotations

import struct
from typing import Dict

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

MASK32 = 0xFFFFFFFF


class MemoryFault(Exception):
    """Access to an unmapped address when strict mode is enabled."""

    def __init__(self, addr: int, why: str = "unmapped"):
        super().__init__("memory fault at 0x%08x (%s)" % (addr, why))
        self.addr = addr


class SparseMemory:
    """4 KiB-paged sparse memory.

    Pages are allocated zero-filled on first touch (``strict=False``, the
    default, which matches an OS that lazily maps zero pages) or faults
    (``strict=True``, used by tests that want to catch wild accesses).
    """

    __slots__ = ("_pages", "strict")

    def __init__(self, strict: bool = False):
        self._pages: Dict[int, bytearray] = {}
        self.strict = strict

    # -- page plumbing ---------------------------------------------------------

    def _page(self, addr: int) -> bytearray:
        idx = addr >> PAGE_SHIFT
        page = self._pages.get(idx)
        if page is None:
            if self.strict:
                raise MemoryFault(addr)
            page = bytearray(PAGE_SIZE)
            self._pages[idx] = page
        return page

    def mapped_pages(self) -> int:
        return len(self._pages)

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    # -- byte access ------------------------------------------------------------

    def read_u8(self, addr: int) -> int:
        return self._page(addr)[addr & PAGE_MASK]

    def write_u8(self, addr: int, value: int) -> None:
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    # -- word access (little-endian) ----------------------------------------------

    def read_u32(self, addr: int) -> int:
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            return struct.unpack_from("<I", self._page(addr), off)[0]
        raw = bytes(self.read_u8(addr + i) for i in range(4))
        return struct.unpack("<I", raw)[0]

    def write_u32(self, addr: int, value: int) -> None:
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            struct.pack_into("<I", self._page(addr), off, value & MASK32)
            return
        for i, byte in enumerate(struct.pack("<I", value & MASK32)):
            self.write_u8(addr + i, byte)

    # -- block access ----------------------------------------------------------------

    def read_block(self, addr: int, count: int) -> bytes:
        out = bytearray()
        while count:
            off = addr & PAGE_MASK
            chunk = min(count, PAGE_SIZE - off)
            page = self._page(addr)
            out += page[off : off + chunk]
            addr += chunk
            count -= chunk
        return bytes(out)

    def write_block(self, addr: int, payload: bytes) -> None:
        view = memoryview(payload)
        while view:
            off = addr & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - off)
            page = self._page(addr)
            page[off : off + chunk] = view[:chunk]
            addr += chunk
            view = view[chunk:]

    def copy(self) -> "SparseMemory":
        """Deep copy (used to give each simulation mode identical state)."""
        clone = SparseMemory(strict=self.strict)
        clone._pages = {idx: bytearray(page) for idx, page in self._pages.items()}
        return clone
