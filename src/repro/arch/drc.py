"""The De-Randomization Cache (DRC) — paper §IV-B, Fig. 7/8.

A small direct-mapped on-chip cache of randomization/de-randomization
table entries.  Each entry holds an address tag, the translation, a
single-bit *type* tag (``derand`` vs ``rand``) and a valid bit, exactly
the organization of paper Fig. 8.

On a miss, the entry is refilled from the RDR table stored in (kernel-
invisible) paged memory: the refill is charged an L2 access — "for
efficient usage of cache space, DRC can share its second level cache with
the unified L2 of a processor core, which is our current design" — and
the L2 may in turn miss to DRAM.  Misses never trap to the kernel.
"""

from __future__ import annotations

from typing import Callable

from .config import DRCConfig

KIND_DERAND = 0
KIND_RAND = 1


class DRCStats:
    __slots__ = ("lookups", "misses", "derand_lookups", "rand_lookups",
                 "bitmap_probes", "refill_latency_total", "evictions")

    def __init__(self):
        self.lookups = 0
        self.misses = 0
        self.derand_lookups = 0
        self.rand_lookups = 0
        self.bitmap_probes = 0
        self.refill_latency_total = 0
        #: valid entries displaced by a refill (capacity/conflict churn;
        #: aggregated into ``drc_evict`` events at checkpoint boundaries).
        self.evictions = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class DRC:
    """Unified randomization/de-randomization lookup buffer.

    Direct-mapped by default (the paper's design: "We designed DRC as
    direct mapped cache with small size to minimize power consumption...
    The design doesn't require a fully-associative DRC since the miss
    penalty is marginal").  ``DRCConfig.assoc`` > 1 enables the
    set-associative variant used by the ablation study that checks that
    claim; ``assoc=0`` means fully associative.
    """

    __slots__ = (
        "config", "num_entries", "refill", "stats", "assoc", "num_sets",
        "_sets", "_set_mask", "_hit_latency",
    )

    def __init__(
        self,
        config: DRCConfig,
        refill: Callable[[int, int], int],
    ):
        """``refill(key, kind) -> latency`` fetches the table entry from the
        memory hierarchy (L2-first) and returns the latency in cycles."""
        self.config = config
        self.num_entries = config.entries
        self.refill = refill
        self.stats = DRCStats()
        assoc = getattr(config, "assoc", 1)
        if assoc == 0:
            assoc = config.entries
        self.assoc = max(1, min(assoc, config.entries))
        self.num_sets = max(1, config.entries // self.assoc)
        # Precomputed index mask (the paper's DRC sizes are powers of
        # two; -1 falls back to ``%`` for odd ablation geometries).
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = -1
        self._hit_latency = config.latency
        # Per set: list of (addr_tag, kind) in LRU order (index 0 = LRU).
        self._sets = [[] for _ in range(self.num_sets)]

    def _index(self, key: int, kind: int) -> int:
        # Multiplicative (Fibonacci) hash index over the *informative*
        # bits of the key.  The two key populations carry different
        # guaranteed-zero low bits:
        #
        # * ``KIND_DERAND`` keys are randomized-space addresses, which
        #   the layout engine places on 8-byte slot boundaries
        #   (``repro.ilr.layout.DEFAULT_SLOT_SIZE``): 3 dead low bits;
        # * ``KIND_RAND`` keys are original-space addresses, which are
        #   byte-dense (variable-length instructions): 0 dead bits.
        #
        # A fixed ``>> 2`` (the historical compromise) wasted one
        # guaranteed-zero bit of the slot-aligned population *and*
        # discarded two real bits of the dense one (adjacent original
        # addresses hashed identically).  Aliasing only costs conflict
        # misses — the full key is the stored tag, so correctness never
        # depended on the shift — but it skewed the Fig. 13/14 DRC
        # miss-rate ablations.  A key less aligned than its population's
        # shift (custom slot sizes) merely degrades back to extra
        # conflicts, again never false hits.
        shift = 3 if kind == KIND_DERAND else 0
        hashed = ((key >> shift) * 2654435761) >> 8
        mask = self._set_mask
        return hashed & mask if mask >= 0 else hashed % self.num_sets

    def lookup(self, key: int, kind: int) -> int:
        """Translate ``key``; returns latency in cycles (hit or refill)."""
        stats = self.stats
        stats.lookups += 1
        if kind == KIND_DERAND:
            stats.derand_lookups += 1
        else:
            stats.rand_lookups += 1

        ways = self._sets[self._index(key, kind)]
        entry = (key, kind)
        for idx, existing in enumerate(ways):
            if existing == entry:
                if self.assoc > 1:
                    ways.append(ways.pop(idx))
                return self._hit_latency

        stats.misses += 1
        latency = self._hit_latency + self.refill(key, kind)
        stats.refill_latency_total += latency
        if len(ways) >= self.assoc:
            ways.pop(0)
            stats.evictions += 1
        ways.append(entry)
        return latency

    def bitmap_probe(self) -> int:
        """§IV-C stack-bitmap cache probe (tiny dedicated cache)."""
        self.stats.bitmap_probes += 1
        return self.config.bitmap_latency

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
