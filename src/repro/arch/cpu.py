"""The cycle-level single-issue in-order CPU simulator.

Models the paper's evaluated machine (§VI-C): a five-stage in-order
pipeline (fetch, decode, alloc, exec, commit) fed by an IL1 with a
next-line prefetcher, a gshare/BTB/RAS front end, DL1 and unified L2,
fully-associative TLBs with the page-visibility extension, a DDR-style
DRAM model, and — in VCFR mode — the De-Randomization Cache between the
pipeline and the memory hierarchy (Fig. 7).

Timing is per-instruction cycle accounting: every instruction retires
``1 + stalls`` cycles, where the stall terms model exactly the events the
paper's study varies across modes —

* IL1/L2/DRAM fill latencies on instruction-line changes (this is where
  naive ILR loses: its scattered layout changes line on ~every fetch),
* branch direction/target mispredicts (gshare/BTB/RAS; predicted in the
  de-randomized space under VCFR, §IV-D, so accuracy is mode-invariant),
* data-side DL1/L2/DRAM and DTLB behaviour,
* DRC lookups for randomized control transfers (VCFR only) with misses
  refilled through the L2, per §IV-B,
* the naive mode's fall-through map is charged zero cycles ("the naive
  implementation assumes that CPU can resolve address mapping with zero
  cost", §III) so its measured penalty is purely locality loss.

Architectural behaviour is delegated to the same functional executor and
flow objects the un-timed runner uses, so a cycle simulation can never
diverge semantically from the functional reference.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..binary import BinaryImage, load_image
from ..isa.decoder import decode
from ..isa.instruction import Instruction
from .branch import BranchUnit
from .cache import Cache
from .config import MachineConfig, default_config
from .drc import DRC, KIND_DERAND, KIND_RAND
from .dram import DRAM
from .executor import CTRL_HALT, CTRL_JUMP, CTRL_NONE, execute
from .memory import SparseMemory
from .power import EnergyParams, compute_energy
from .simstats import SimResult
from .state import ExitProgram, MachineState
from .tlb import TLB

#: Kernel-space placement of the RDR tables and the §IV-C stack bitmap.
#: These pages are registered invisible in the TLBs; only DRC refills
#: (micro-architectural accesses) touch them.
DERAND_TABLE_BASE = 0x60000000
RAND_TABLE_BASE = 0x68000000
BITMAP_BASE = 0x6C000000
TABLE_REGION_SIZE = 0x04000000

#: Extra execute-stage cycles per mnemonic (beyond the 1-cycle issue slot).
_EXEC_EXTRA: Dict[str, int] = {"imul": 2}


class CycleCPU:
    """One simulated core executing one program under one flow."""

    def __init__(
        self,
        image: BinaryImage,
        flow,
        config: Optional[MachineConfig] = None,
    ):
        self.config = config or default_config()
        self.image = image
        self.flow = flow
        # Only VCFR pays for RDR lookups; the naive model resolves its
        # mapping at zero cost per the paper's §III methodology.
        flow.record_events = getattr(flow, "uses_drc", False)

        self.mem = SparseMemory()
        info = load_image(image, self.mem)
        self.state = MachineState(self.mem, stack_top=info.stack_top)

        cfg = self.config
        self.dram = DRAM(cfg.dram)
        self.l2 = Cache(cfg.l2, "l2", self.dram.access)
        self.il1 = Cache(cfg.il1, "il1", self.l2.access)
        self.dl1 = Cache(cfg.dl1, "dl1", self.l2.access)
        self.itlb = TLB(cfg.itlb, "itlb")
        self.dtlb = TLB(cfg.dtlb, "dtlb")
        self.branch = BranchUnit(cfg.branch)
        self.drc = DRC(cfg.drc, self._drc_refill)

        for tlb in (self.itlb, self.dtlb):
            tlb.set_invisible(DERAND_TABLE_BASE, TABLE_REGION_SIZE)
            tlb.set_invisible(RAND_TABLE_BASE, TABLE_REGION_SIZE)
            tlb.set_invisible(BITMAP_BASE, TABLE_REGION_SIZE)

        self.cycle = 0
        #: optional execution tracer (see repro.arch.trace.attach_tracer).
        self.tracer = None
        self._started = False
        self._finished = False
        self._resume_fetch_pc = 0
        self._decode_cache: Dict[int, Instruction] = {}
        self._line_shift = cfg.il1.line_bytes.bit_length() - 1
        self._page_shift = cfg.itlb.page_bits
        self._last_fetch_line = -1
        self._last_fetch_page = -1

    # -- DRC refill path -----------------------------------------------------

    def _drc_refill(self, key: int, kind: int) -> int:
        """Fetch an RDR table entry from memory (L2 first, then DRAM).

        Table entries live at deterministic kernel addresses so the L2
        genuinely caches the hot part of the table, as in the paper's
        design ("DRC can share its second level cache with the unified
        L2").
        """
        if kind == KIND_DERAND:
            addr = DERAND_TABLE_BASE + ((key & 0x3FFFFFFF) >> 3) * 8
        else:
            addr = RAND_TABLE_BASE + ((key & 0x3FFFFFFF) >> 2) * 8
        return self.l2.access(addr, False)

    # -- fetch ------------------------------------------------------------------

    def _fetch(self, fetch_pc: int) -> Instruction:
        inst = self._decode_cache.get(fetch_pc)
        if inst is None:
            raw = self.mem.read_block(fetch_pc, 8)
            inst = decode(raw, 0, fetch_pc)
            self._decode_cache[fetch_pc] = inst
        return inst

    def _fetch_stall(self, fetch_pc: int, length: int) -> int:
        """Instruction-side stall: IL1 (with prefetch) + iTLB."""
        stall = 0
        page = fetch_pc >> self._page_shift
        if page != self._last_fetch_page:
            self._last_fetch_page = page
            stall += self.itlb.access(fetch_pc)

        line = fetch_pc >> self._line_shift
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            latency = self.il1.access(fetch_pc, False)
            stall += latency - self.config.il1.latency  # hits are pipelined
            if self.config.prefetch_il1:
                self.il1.prefetch((line + 1) << self._line_shift)
        # A fetch group that straddles into the next line touches it too.
        end_line = (fetch_pc + length - 1) >> self._line_shift
        if end_line != line and end_line != self._last_fetch_line:
            self._last_fetch_line = end_line
            latency = self.il1.access(end_line << self._line_shift, False)
            stall += latency - self.config.il1.latency
            if self.config.prefetch_il1:
                self.il1.prefetch((end_line + 1) << self._line_shift)
        return stall

    # -- data side -------------------------------------------------------------------

    def _data_stall(self) -> int:
        state = self.state
        stall = 0
        addr = state.last_load_addr
        if addr is not None:
            stall += self.dtlb.access(addr)
            latency = self.dl1.access(addr, False)
            stall += latency - self.config.dl1.latency
            stall += self.config.load_use_stall
        addr = state.last_store_addr
        if addr is not None:
            stall += self.dtlb.access(addr)
            latency = self.dl1.access(addr, True)
            stall += latency - self.config.dl1.latency  # hits retire via store buffer
        return stall

    # -- DRC event draining -------------------------------------------------------------

    def _drc_stall(self, fetch_waits: bool, overlap: int = 0) -> int:
        """Charge the RDR lookups this instruction triggered.

        ``fetch_waits`` is True when the front end did NOT have a correct
        prediction for the transfer, i.e. fetch is stalled waiting for the
        de-randomized target (paper §IV-D: with prediction running in the
        de-randomized space, a predicted transfer never waits for the
        DRC).  Lookups always update DRC state and statistics; latency is
        only exposed when fetch actually waits — and even then a hit
        overlaps with the pipeline redirect, so only refills stall.
        """
        events = self.flow.events
        if not events:
            return 0
        stall = 0
        hit_latency = self.config.drc.latency
        for kind, key in events:
            if kind == "derand":
                latency = self.drc.lookup(key, KIND_DERAND)
            elif kind == "redirect":
                latency = self.drc.lookup(key, KIND_RAND)
            elif kind == "rand":
                # Return-address randomization on a call: the pushed value
                # is not needed until the matching ret, so the lookup is
                # never on the critical path.
                self.drc.lookup(key, KIND_RAND)
                continue
            else:  # bitmap probe: tiny dedicated cache, fully pipelined
                self.drc.bitmap_probe()
                continue
            if fetch_waits:
                # The refill runs concurrently with the pipeline flush the
                # mispredict already paid for; only the excess is exposed.
                stall += max(0, latency - hit_latency - overlap)
        events.clear()
        return stall

    # -- branch penalties --------------------------------------------------------------------

    def _branch_stall(self, inst: Instruction, kind: int, next_fetch_pc: int,
                      arch_target: int):
        """Front-end penalty for this instruction's control-flow outcome.

        Predictions are made on the *fetch-space* PC (under VCFR that is
        the de-randomized UPC, per §IV-D), so predictor accuracy does not
        depend on the randomization.  Returns ``(penalty, predicted_ok)``.
        """
        branch = self.branch
        pc = inst.addr
        if inst.cc is not None:
            taken = kind == CTRL_JUMP
            return branch.conditional(pc, taken, next_fetch_pc if taken else 0)
        if kind == CTRL_NONE or kind == CTRL_HALT:
            return 0, True
        m = inst.mnemonic
        if m == "call":
            return branch.direct(pc, next_fetch_pc, True, self.state.last_retaddr)
        if m == "jmp" or m == "jmp8":
            return branch.direct(pc, next_fetch_pc, False)
        if m == "calli":
            return branch.indirect(pc, next_fetch_pc, True, self.state.last_retaddr)
        if m == "jmpi":
            return branch.indirect(pc, next_fetch_pc, False)
        if m == "ret":
            return branch.ret(pc, arch_target)
        return 0, True

    # -- main loop ----------------------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = 1_000_000,
        warmup_instructions: int = 0,
    ) -> SimResult:
        """Simulate until program exit or the instruction budget is spent.

        ``warmup_instructions`` executes (and warms caches/predictors) but
        is excluded from the reported statistics.
        """
        if warmup_instructions:
            self._ensure_started()
            self._execute_loop(self.state.icount + warmup_instructions)
            self._reset_stats()
        elif not self._started:
            self._reset_stats()
        self._ensure_started()
        finished = self._execute_loop(self.state.icount + max_instructions)
        return self._result(finished, warmup_instructions)

    def run_slice(self, instructions: int) -> bool:
        """Resumable execution: run up to ``instructions`` more.

        Unlike :meth:`run`, statistics accumulate across slices and the
        program continues from where the previous slice stopped — the
        primitive the time-sharing model (:mod:`repro.arch.context`) is
        built on.  Returns True when the program terminated.
        """
        if not self._started:
            self._reset_stats()
        self._ensure_started()
        return self._execute_loop(self.state.icount + instructions)

    def _ensure_started(self) -> None:
        if not self._started:
            self._resume_fetch_pc = self.flow.initial_fetch_pc()
            self._started = True

    def _execute_loop(self, budget: int) -> bool:
        """The pipeline loop; runs until ``state.icount`` reaches ``budget``
        or the program terminates.  Returns the termination flag."""
        state = self.state
        flow = self.flow
        fetch_pc = self._resume_fetch_pc
        if self._finished:
            return True

        while state.icount < budget:
            inst = self._fetch(fetch_pc)
            state.pc = flow.arch_pc_of(fetch_pc)
            stall = self._fetch_stall(fetch_pc, inst.length)

            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                self._finished = True
                self.cycle += 1
                break

            stall += _EXEC_EXTRA.get(inst.mnemonic, 0)
            stall += self._data_stall()

            if kind == CTRL_NONE:
                next_fetch_pc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                self._finished = True
                self.cycle += 1 + stall
                break
            else:
                next_fetch_pc = flow.transfer(target)

            branch_penalty, predicted_ok = self._branch_stall(
                inst, kind, next_fetch_pc, target
            )
            stall += branch_penalty
            stall += self._drc_stall(
                fetch_waits=not predicted_ok, overlap=branch_penalty
            )

            if self.tracer is not None:
                self.tracer.record(
                    inst, state.pc, fetch_pc, kind != CTRL_NONE, target
                )

            self.cycle += 1 + stall
            fetch_pc = next_fetch_pc

        self._resume_fetch_pc = fetch_pc
        return self._finished

    # -- bookkeeping ----------------------------------------------------------------------------

    def _reset_stats(self) -> None:
        """Zero all counters (cache/predictor contents are preserved)."""
        from .branch import BranchStats
        from .cache import CacheStats
        from .dram import DRAMStats
        from .drc import DRCStats
        from .tlb import TLBStats

        self._warmup_icount = self.state.icount
        self._warmup_cycle = self.cycle
        self.il1.stats = CacheStats()
        self.dl1.stats = CacheStats()
        self.l2.stats = CacheStats()
        self.dram.stats = DRAMStats()
        self.itlb.stats = TLBStats()
        self.dtlb.stats = TLBStats()
        self.branch.stats = BranchStats()
        self.drc.stats = DRCStats()

    def _result(self, finished: bool, warmup: int) -> SimResult:
        warm_icount = getattr(self, "_warmup_icount", 0)
        warm_cycle = getattr(self, "_warmup_cycle", 0)
        state = self.state
        instructions = state.icount - warm_icount
        cycles = self.cycle - warm_cycle

        result = SimResult(
            mode=getattr(self.flow, "name", "unknown"),
            cycles=cycles,
            instructions=instructions,
            warmup_instructions=warmup,
            exit_code=state.exit_code,
            finished=finished,
            output=state.out,
            il1=self.il1.stats.snapshot(),
            dl1=self.dl1.stats.snapshot(),
            l2=self.l2.stats.snapshot(),
            itlb_misses=self.itlb.stats.misses,
            dtlb_misses=self.dtlb.stats.misses,
            dram_accesses=self.dram.stats.accesses,
            dram_row_hit_rate=self.dram.stats.row_hit_rate,
            cond_branches=self.branch.stats.cond_branches,
            cond_mispredicts=self.branch.stats.cond_mispredicts,
            ras_mispredicts=self.branch.stats.ras_mispredicts,
            indirect_mispredicts=self.branch.stats.indirect_mispredicts,
            drc_lookups=self.drc.stats.lookups,
            drc_misses=self.drc.stats.misses,
            drc_bitmap_probes=self.drc.stats.bitmap_probes,
        )
        result.energy = compute_energy(
            self._activity(result), EnergyParams(), self.config.drc.entries
        )
        return result

    def _activity(self, result: SimResult) -> Dict[str, int]:
        """Activity counters for the power model."""
        return {
            "il1": self.il1.stats.accesses + self.il1.stats.prefetches,
            "dl1": self.dl1.stats.accesses,
            "l2": self.l2.stats.accesses,
            "dram": self.dram.stats.accesses,
            "itlb": self.itlb.stats.accesses,
            "dtlb": self.dtlb.stats.accesses,
            "btb": self.branch.stats.btb_lookups,
            "gshare": self.branch.stats.cond_branches,
            "ras": self.branch.stats.ras_pushes + self.branch.stats.ras_pops,
            "decode": result.instructions,
            "fetch": result.instructions,
            "alu": result.instructions,
            "regfile": 2 * result.instructions,
            "drc": self.drc.stats.lookups,
            "drc_bitmap": self.drc.stats.bitmap_probes,
        }


def simulate(
    image: BinaryImage,
    flow,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 1_000_000,
    warmup_instructions: int = 0,
) -> SimResult:
    """One-shot helper: build a :class:`CycleCPU` and run it."""
    cpu = CycleCPU(image, flow, config)
    return cpu.run(max_instructions, warmup_instructions)
