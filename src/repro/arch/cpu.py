"""The cycle-level single-issue in-order CPU simulator.

Models the paper's evaluated machine (§VI-C): a five-stage in-order
pipeline (fetch, decode, alloc, exec, commit) fed by an IL1 with a
next-line prefetcher, a gshare/BTB/RAS front end, DL1 and unified L2,
fully-associative TLBs with the page-visibility extension, a DDR-style
DRAM model, and — in VCFR mode — the De-Randomization Cache between the
pipeline and the memory hierarchy (Fig. 7).

Timing is per-instruction cycle accounting: every instruction retires
``1 + stalls`` cycles, where the stall terms model exactly the events the
paper's study varies across modes —

* IL1/L2/DRAM fill latencies on instruction-line changes (this is where
  naive ILR loses: its scattered layout changes line on ~every fetch),
* branch direction/target mispredicts (gshare/BTB/RAS; predicted in the
  de-randomized space under VCFR, §IV-D, so accuracy is mode-invariant),
* data-side DL1/L2/DRAM and DTLB behaviour,
* DRC lookups for randomized control transfers (VCFR only) with misses
  refilled through the L2, per §IV-B,
* the naive mode's fall-through map is charged zero cycles ("the naive
  implementation assumes that CPU can resolve address mapping with zero
  cost", §III) so its measured penalty is purely locality loss.

Architectural behaviour is delegated to the same functional executor and
flow objects the un-timed runner uses, so a cycle simulation can never
diverge semantically from the functional reference.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..binary import BinaryImage, load_image
from ..isa.instruction import Instruction
from ..obs.events import EventLog
from ..obs.metrics import get_registry
from .blockcache import BlockCache
from .branch import BranchUnit
from .cache import Cache
from .config import MachineConfig, default_config
from .drc import DRC, KIND_DERAND, KIND_RAND
from .dram import DRAM
from .executor import CTRL_HALT, CTRL_JUMP, CTRL_NONE, EXEC_EXTRA, execute
from .memory import SparseMemory
from .power import EnergyParams, compute_energy
from .simstats import Checkpoint, SimResult, ratio
from .state import ExitProgram, MachineState
from .tlb import TLB
from .tracecache import TraceCache

#: Kernel-space placement of the RDR tables and the §IV-C stack bitmap.
#: These pages are registered invisible in the TLBs; only DRC refills
#: (micro-architectural accesses) touch them.
DERAND_TABLE_BASE = 0x60000000
RAND_TABLE_BASE = 0x68000000
BITMAP_BASE = 0x6C000000
TABLE_REGION_SIZE = 0x04000000

#: Extra execute-stage cycles per mnemonic — canonical table lives with
#: the executor semantics; kept under the historical name for callers.
_EXEC_EXTRA: Dict[str, int] = EXEC_EXTRA

#: ``_next_checkpoint`` sentinel when checkpointing is off: one integer
#: compare per retired instruction is the entire disabled-path cost.
_NO_CHECKPOINT = 1 << 62

#: Minimum run of back-to-back IL1 fetch fills that counts as a
#: ``cache_fill_burst`` event (naive ILR's scattered layout produces
#: long runs of these; baseline/VCFR essentially never do).
FILL_BURST_THRESHOLD = 8


class CycleCPU:
    """One simulated core executing one program under one flow."""

    def __init__(
        self,
        image: BinaryImage,
        flow,
        config: Optional[MachineConfig] = None,
        events: Optional[EventLog] = None,
        checkpoint_interval: int = 0,
        on_checkpoint: Optional[Callable[[Checkpoint], None]] = None,
        event_fields: Optional[dict] = None,
        memory=None,
    ):
        """``memory`` (a :class:`repro.arch.sharedmem.MemoryPort`) plugs
        this core into a node-level shared L2 + DRAM instead of building
        a private hierarchy; DRC/TLBs/L1s stay private either way."""
        self.config = config or default_config()
        self.image = image
        self.flow = flow
        # Only VCFR pays for RDR lookups; the naive model resolves its
        # mapping at zero cost per the paper's §III methodology.
        flow.record_events = getattr(flow, "uses_drc", False)

        self.mem = SparseMemory()
        info = load_image(image, self.mem)
        self.state = MachineState(self.mem, stack_top=info.stack_top)

        cfg = self.config
        self.memory = memory
        if memory is None:
            self.dram = DRAM(cfg.dram)
            self.l2 = Cache(cfg.l2, "l2", self.dram.access)
            #: next-level port the L1s and the DRC refill path use; with
            #: a shared node it relocates addresses into this tenant's
            #: physical region before the shared L2 sees them.
            self._l2_port = self.l2.access
        else:
            self.dram = memory.dram
            self.l2 = memory.l2
            self._l2_port = memory.access
        self.il1 = Cache(cfg.il1, "il1", self._l2_port)
        self.dl1 = Cache(cfg.dl1, "dl1", self._l2_port)
        self.itlb = TLB(cfg.itlb, "itlb")
        self.dtlb = TLB(cfg.dtlb, "dtlb")
        self.branch = BranchUnit(cfg.branch)
        self.drc = DRC(cfg.drc, self._drc_refill)

        for tlb in (self.itlb, self.dtlb):
            tlb.set_invisible(DERAND_TABLE_BASE, TABLE_REGION_SIZE)
            tlb.set_invisible(RAND_TABLE_BASE, TABLE_REGION_SIZE)
            tlb.set_invisible(BITMAP_BASE, TABLE_REGION_SIZE)

        self.cycle = 0
        #: optional execution tracer (see repro.arch.trace.attach_tracer).
        self.tracer = None

        # -- observability (repro.obs) ---------------------------------
        #: structured event log; the default Null-backed log drops
        #: everything and keeps producers branch-cheap via ``enabled``.
        self.events = events if events is not None else EventLog()
        #: extra fields merged into every emitted record (the harness
        #: sets e.g. ``{"workload": "gcc"}``; the CPU adds ``mode``).
        self.event_fields = dict(event_fields or {})
        self.checkpoint_interval = max(0, checkpoint_interval)
        self.on_checkpoint = on_checkpoint
        self.checkpoints = []
        self._next_checkpoint = _NO_CHECKPOINT
        self._ckpt_icount = 0
        self._ckpt_cycle = 0
        self._ckpt_il1_acc = 0
        self._ckpt_il1_miss = 0
        self._ckpt_drc_lookups = 0
        self._ckpt_drc_misses = 0
        self._ckpt_drc_evictions = 0
        self._run_t0 = 0.0
        # IL1 fetch-fill burst detection (events-enabled runs only).
        self._burst_track = self.events.enabled
        self._fill_streak = 0
        self._fill_streak_pc = 0

        self.event_fields.setdefault(
            "mode", getattr(flow, "name", "unknown")
        )
        self._warmup_icount = 0
        self._warmup_cycle = 0

        # Opt-in per-phase host-time attribution (see run_profiled).
        self._profiled = False
        self._phase_times: Dict[str, float] = {}

        self._started = False
        self._finished = False
        self._resume_fetch_pc = 0
        self._line_shift = cfg.il1.line_bytes.bit_length() - 1
        self._page_shift = cfg.itlb.page_bits
        self._last_fetch_line = -1
        self._last_fetch_page = -1
        #: host-side execution strategy (cycle/stat-invariant by contract,
        #: enforced by tests/test_fastpath_equivalence.py).
        self._fastpath = cfg.fastpath
        self._blockcache = BlockCache(
            cfg.block_cache_capacity, cfg.block_max_insts
        )
        #: superblock trace tier (host-side, rides on the fast path);
        #: constructed last so it can close over the fully-built CPU.
        self._tracecache = (
            TraceCache(self) if (cfg.fastpath and cfg.tracepath) else None
        )
        #: counter writeback cell shared with generated trace functions
        #: (cycle, icount, last_page, last_line).
        self._trace_out = [0, 0, 0, 0]
        #: previously-synced tier telemetry (see _sync_metrics).
        self._tier_synced: Dict[str, int] = {}

    # -- DRC refill path -----------------------------------------------------

    def _drc_refill(self, key: int, kind: int) -> int:
        """Fetch an RDR table entry from memory (L2 first, then DRAM).

        Table entries live at deterministic kernel addresses so the L2
        genuinely caches the hot part of the table, as in the paper's
        design ("DRC can share its second level cache with the unified
        L2").
        """
        if kind == KIND_DERAND:
            addr = DERAND_TABLE_BASE + ((key & 0x3FFFFFFF) >> 3) * 8
        else:
            addr = RAND_TABLE_BASE + ((key & 0x3FFFFFFF) >> 2) * 8
        return self._l2_port(addr, False)

    # -- fetch ------------------------------------------------------------------

    def _fetch(self, fetch_pc: int) -> Instruction:
        # Decoded instructions live in the block cache's bounded map so
        # the reference and fast paths share one invalidation domain.
        blockcache = self._blockcache
        inst = blockcache.decoded.get(fetch_pc)
        if inst is None:
            inst = blockcache.decode_one(fetch_pc, self.mem)
        return inst

    # -- code mutation ----------------------------------------------------------

    def invalidate_blocks(self, start: Optional[int] = None,
                          size: int = 0) -> None:
        """Invalidate pre-decoded blocks (and cached decodes).

        With no arguments, everything is dropped — required after any
        randomization-table swap (re-randomization epoch), since blocks
        freeze per-run ``arch_pc_of``/``sequential`` results.  With a
        range, only blocks overlapping ``[start, start + size)`` in
        fetch space go.  Compiled traces bake in the same precomputed
        facts (plus folded table lookups), so they are flushed under
        exactly the same rules.
        """
        if start is None:
            self._blockcache.invalidate_all()
            if self._tracecache is not None:
                self._tracecache.invalidate_all()
        else:
            self._blockcache.invalidate_range(start, size)
            if self._tracecache is not None:
                self._tracecache.invalidate_range(start, size)

    def rewrite_code(self, addr: int, data: bytes) -> None:
        """Patch simulated memory and invalidate affected blocks and
        traces.

        All code-rewriting flows must go through this (or call
        :meth:`invalidate_blocks` themselves): the block and trace
        caches assume text is immutable between explicit invalidations.
        """
        self.mem.write_block(addr, bytes(data))
        self._blockcache.invalidate_range(addr, len(data))
        if self._tracecache is not None:
            self._tracecache.invalidate_range(addr, len(data))

    def _fetch_stall(self, fetch_pc: int, length: int) -> int:
        """Instruction-side stall: IL1 (with prefetch) + iTLB."""
        stall = 0
        page = fetch_pc >> self._page_shift
        if page != self._last_fetch_page:
            self._last_fetch_page = page
            stall += self.itlb.access(fetch_pc)

        line = fetch_pc >> self._line_shift
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            latency = self.il1.access(fetch_pc, False)
            stall += latency - self.config.il1.latency  # hits are pipelined
            if self._burst_track:
                self._note_fetch_fill(latency > self.config.il1.latency,
                                      fetch_pc)
            if self.config.prefetch_il1:
                self.il1.prefetch((line + 1) << self._line_shift)
        # A fetch group that straddles into the next line touches it too.
        end_line = (fetch_pc + length - 1) >> self._line_shift
        if end_line != line and end_line != self._last_fetch_line:
            self._last_fetch_line = end_line
            latency = self.il1.access(end_line << self._line_shift, False)
            stall += latency - self.config.il1.latency
            if self._burst_track:
                self._note_fetch_fill(latency > self.config.il1.latency,
                                      fetch_pc)
            if self.config.prefetch_il1:
                self.il1.prefetch((end_line + 1) << self._line_shift)
        return stall

    def _note_fetch_fill(self, missed: bool, fetch_pc: int) -> None:
        """Track runs of consecutive IL1 fetch fills; a long run is the
        micro-architectural signature of destroyed instruction locality
        (naive ILR), emitted as one ``cache_fill_burst`` record."""
        if missed:
            if not self._fill_streak:
                self._fill_streak_pc = fetch_pc
            self._fill_streak += 1
        elif self._fill_streak:
            if self._fill_streak >= FILL_BURST_THRESHOLD:
                self.events.emit(
                    "cache_fill_burst",
                    length=self._fill_streak,
                    start_pc=self._fill_streak_pc,
                    instructions=self.state.icount,
                    **self.event_fields,
                )
            self._fill_streak = 0

    # -- data side -------------------------------------------------------------------

    def _data_stall(self) -> int:
        state = self.state
        stall = 0
        addr = state.last_load_addr
        if addr is not None:
            stall += self.dtlb.access(addr)
            latency = self.dl1.access(addr, False)
            stall += latency - self.config.dl1.latency
            stall += self.config.load_use_stall
        addr = state.last_store_addr
        if addr is not None:
            stall += self.dtlb.access(addr)
            latency = self.dl1.access(addr, True)
            stall += latency - self.config.dl1.latency  # hits retire via store buffer
        return stall

    # -- DRC event draining -------------------------------------------------------------

    def _drc_stall(self, fetch_waits: bool, overlap: int = 0) -> int:
        """Charge the RDR lookups this instruction triggered.

        ``fetch_waits`` is True when the front end did NOT have a correct
        prediction for the transfer, i.e. fetch is stalled waiting for the
        de-randomized target (paper §IV-D: with prediction running in the
        de-randomized space, a predicted transfer never waits for the
        DRC).  Lookups always update DRC state and statistics; latency is
        only exposed when fetch actually waits — and even then a hit
        overlaps with the pipeline redirect, so only refills stall.
        """
        events = self.flow.events
        if not events:
            return 0
        stall = 0
        hit_latency = self.config.drc.latency
        for kind, key in events:
            if kind == "derand":
                latency = self.drc.lookup(key, KIND_DERAND)
            elif kind == "redirect":
                latency = self.drc.lookup(key, KIND_RAND)
            elif kind == "rand":
                # Return-address randomization on a call: the pushed value
                # is not needed until the matching ret, so the lookup is
                # never on the critical path.
                self.drc.lookup(key, KIND_RAND)
                continue
            else:  # bitmap probe: tiny dedicated cache, fully pipelined
                self.drc.bitmap_probe()
                continue
            if fetch_waits:
                # The refill runs concurrently with the pipeline flush the
                # mispredict already paid for; only the excess is exposed.
                stall += max(0, latency - hit_latency - overlap)
        events.clear()
        return stall

    # -- branch penalties --------------------------------------------------------------------

    def _branch_stall(self, inst: Instruction, kind: int, next_fetch_pc: int,
                      arch_target: int):
        """Front-end penalty for this instruction's control-flow outcome.

        Predictions are made on the *fetch-space* PC (under VCFR that is
        the de-randomized UPC, per §IV-D), so predictor accuracy does not
        depend on the randomization.  Returns ``(penalty, predicted_ok)``.
        """
        branch = self.branch
        pc = inst.addr
        if inst.cc is not None:
            taken = kind == CTRL_JUMP
            return branch.conditional(pc, taken, next_fetch_pc if taken else 0)
        if kind == CTRL_NONE or kind == CTRL_HALT:
            return 0, True
        m = inst.mnemonic
        if m == "call":
            return branch.direct(pc, next_fetch_pc, True, self.state.last_retaddr)
        if m == "jmp" or m == "jmp8":
            return branch.direct(pc, next_fetch_pc, False)
        if m == "calli":
            return branch.indirect(pc, next_fetch_pc, True, self.state.last_retaddr)
        if m == "jmpi":
            return branch.indirect(pc, next_fetch_pc, False)
        if m == "ret":
            return branch.ret(pc, arch_target)
        return 0, True

    # -- main loop ----------------------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = 1_000_000,
        warmup_instructions: int = 0,
    ) -> SimResult:
        """Simulate until program exit or the instruction budget is spent.

        ``warmup_instructions`` executes (and warms caches/predictors) but
        is excluded from the reported statistics.
        """
        self.events.emit(
            "run_start",
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
            checkpoint_interval=self.checkpoint_interval,
            **self.event_fields,
        )
        if warmup_instructions:
            self._ensure_started()
            self._execute_loop(self.state.icount + warmup_instructions)
            self._reset_stats()
        elif not self._started:
            self._reset_stats()
        self._ensure_started()
        finished = self._execute_with_checkpoints(
            self.state.icount + max_instructions
        )
        result = self._result(finished, warmup_instructions)
        self.events.emit(
            "run_end",
            instructions=result.instructions,
            cycles=result.cycles,
            ipc=round(result.ipc, 6),
            il1_miss_rate=round(result.il1_miss_rate, 6),
            drc_miss_rate=round(result.drc_miss_rate, 6),
            finished=result.finished,
            checkpoints=len(result.checkpoints),
            host_seconds=round(time.perf_counter() - self._run_t0, 6),
            tiers=self.tier_stats() if self.events.enabled else None,
            **self.event_fields,
        )
        return result

    def run_slice(self, instructions: int) -> bool:
        """Resumable execution: run up to ``instructions`` more.

        Unlike :meth:`run`, statistics accumulate across slices and the
        program continues from where the previous slice stopped — the
        primitive the time-sharing model (:mod:`repro.arch.context`) is
        built on.  Returns True when the program terminated.
        """
        if not self._started:
            self._reset_stats()
        self._ensure_started()
        return self._execute_loop(self.state.icount + instructions)

    def run_profiled(
        self,
        max_instructions: int = 1_000_000,
        warmup_instructions: int = 0,
        profiler=None,
        prefix: str = "sim.",
    ) -> SimResult:
        """Like :meth:`run`, but attribute host wall-time to pipeline
        phases (decode, fetch-translate, execute, cache-data,
        branch-predict, drc, retire).

        The timed loop costs a handful of ``perf_counter`` calls per
        instruction, so it is opt-in; the always-on path stays
        unprofiled.  When ``profiler`` (a
        :class:`~repro.obs.profile.PhaseProfiler`) is given, the totals
        are folded into it under ``prefix`` and mirrored as ``phase``
        events.
        """
        self._phase_times = dict.fromkeys(
            ("decode", "fetch-translate", "execute", "cache-data",
             "branch-predict", "drc", "retire"), 0.0,
        )
        self._profiled = True
        try:
            result = self.run(max_instructions, warmup_instructions)
        finally:
            self._profiled = False
        if profiler is not None:
            for name, seconds in self._phase_times.items():
                profiler.add(
                    prefix + name, seconds,
                    calls=result.instructions, **self.event_fields,
                )
        return result

    @property
    def phase_times(self) -> Dict[str, float]:
        """Per-phase host seconds from the last :meth:`run_profiled`."""
        return dict(self._phase_times)

    def _ensure_started(self) -> None:
        if not self._started:
            self._resume_fetch_pc = self.flow.initial_fetch_pc()
            self._started = True

    def _execute_with_checkpoints(self, budget: int) -> bool:
        """Run to ``budget``, pausing at checkpoint boundaries.

        Checkpointing costs nothing on the per-instruction path: the
        inner loop's own budget check doubles as the checkpoint trigger
        (each chunk's budget is clipped to the next boundary), so a
        disabled-checkpoint run and an enabled one execute the same
        loop body.
        """
        if not self.checkpoint_interval:
            return self._execute_loop(budget)
        while True:
            finished = self._execute_loop(min(budget, self._next_checkpoint))
            if self.state.icount >= self._next_checkpoint:
                self._take_checkpoint()
            if finished or self.state.icount >= budget:
                return finished

    def _execute_loop(self, budget: int) -> bool:
        """Run until ``state.icount`` reaches ``budget`` or the program
        terminates; returns the termination flag.

        Dispatches to one of three cycle/stat-identical loop bodies: the
        pre-decoded block fast path (default), the per-instruction
        reference loop (``fastpath=False``), or the reference loop's
        timed mirror (:meth:`run_profiled`).
        """
        if self._profiled:
            return self._execute_loop_profiled(budget)
        if self._fastpath:
            return self._execute_loop_fast(budget)
        return self._execute_loop_ref(budget)

    def _execute_loop_ref(self, budget: int) -> bool:
        """The per-instruction reference pipeline loop.

        This is the semantic ground truth the block fast path is
        differentially tested against; it also executes partial-block
        tails for the fast path when a budget boundary (checkpoint or
        instruction cap) lands inside a block.
        """
        state = self.state
        flow = self.flow
        fetch_pc = self._resume_fetch_pc
        if self._finished:
            return True

        while state.icount < budget:
            inst = self._fetch(fetch_pc)
            state.pc = flow.arch_pc_of(fetch_pc)
            stall = self._fetch_stall(fetch_pc, inst.length)

            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                self._finished = True
                self.cycle += 1
                break

            stall += _EXEC_EXTRA.get(inst.mnemonic, 0)
            stall += self._data_stall()

            if kind == CTRL_NONE:
                next_fetch_pc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                self._finished = True
                self.cycle += 1 + stall
                break
            else:
                next_fetch_pc = flow.transfer(target)

            branch_penalty, predicted_ok = self._branch_stall(
                inst, kind, next_fetch_pc, target
            )
            stall += branch_penalty
            stall += self._drc_stall(
                fetch_waits=not predicted_ok, overlap=branch_penalty
            )

            if self.tracer is not None:
                self.tracer.record(
                    inst, state.pc, fetch_pc, kind != CTRL_NONE, target
                )

            self.cycle += 1 + stall
            fetch_pc = next_fetch_pc

        self._resume_fetch_pc = fetch_pc
        return self._finished

    def _execute_loop_fast(self, budget: int) -> bool:
        """The basic-block fast path.

        Replays pre-decoded op tuples (:mod:`repro.arch.blockcache`) and
        must stay cycle- and stat-identical to :meth:`_execute_loop_ref`
        — any timing change must land in both bodies (and the profiled
        mirror).  The interior of a block only skips work the reference
        loop performs vacuously there: the branch unit returns a
        stat-free ``(0, True)`` for non-control instructions, and the
        DRC drain is a no-op without pending flow events (checked per
        instruction, since VCFR loads from marked stack slots emit
        events mid-block).  A block that does not fit in the remaining
        budget is delegated whole to the reference loop, which stops at
        exactly the boundary — so checkpoint windows clip identically.

        On top of the block tier sits the superblock trace tier
        (:mod:`repro.arch.tracecache`): the loop head dispatches hot
        fetch PCs to compiled traces, and the per-block epilogue feeds
        the trace profiler/recorder.  Traces are only entered when they
        fit the remaining budget whole and return control at guard
        side-exits, so the block path (and through it the reference
        loop) remains the single source of truth for every boundary.
        """
        if self._finished:
            return True
        state = self.state
        flow = self.flow
        flow_events = flow.events
        transfer = flow.transfer
        sequential = flow.sequential
        blockcache = self._blockcache
        blocks = blockcache.blocks
        build = blockcache.build
        mem = self.mem
        page_shift = self._page_shift
        line_shift = self._line_shift
        cfg = self.config
        il1_access = self.il1.access
        il1_prefetch = self.il1.prefetch
        il1_latency = cfg.il1.latency
        do_prefetch = cfg.prefetch_il1
        itlb_access = self.itlb.access
        dtlb_access = self.dtlb.access
        dl1_access = self.dl1.access
        dl1_latency = cfg.dl1.latency
        load_use = cfg.load_use_stall
        burst = self._burst_track
        note_fill = self._note_fetch_fill
        drc_stall = self._drc_stall
        branch_stall = self._branch_stall
        tracer = self.tracer
        tracecache = self._tracecache
        if tracecache is not None:
            trace_get = tracecache.traces.get
            on_block = tracecache.on_block
            out = self._trace_out
        else:
            trace_get = None
            on_block = None
            out = None

        fetch_pc = self._resume_fetch_pc
        cycle = self.cycle
        last_page = self._last_fetch_page
        last_line = self._last_fetch_line
        icount = state.icount
        bexec = 0
        tail = False
        try:
            while icount < budget:
                if trace_get is not None:
                    trace = trace_get(fetch_pc)
                    if trace is not None and icount + trace.n <= budget:
                        trace.entries += 1
                        try:
                            status, fetch_pc = trace.fn(
                                cycle, icount, budget, last_page,
                                last_line, tracer, out,
                            )
                        finally:
                            # The generated function settles counters
                            # through ``out`` in its own finally, so
                            # faults propagate with them written back.
                            cycle = out[0]
                            icount = out[1]
                            last_page = out[2]
                            last_line = out[3]
                        if status:
                            self._finished = True
                            break
                        continue
                block = blocks.get(fetch_pc)
                if block is None:
                    block = build(fetch_pc, mem, flow, page_shift,
                                  line_shift)
                if icount + block.n > budget:
                    # Partial block: let the reference loop retire the
                    # head of it up to the exact budget boundary.
                    tail = True
                    break

                halted = False
                for op in block.interior:
                    (handler, inst, fpc, arch_pc, extra, page, line, pf1,
                     cross, addr2, line2, pf2, _seq, touch, is_int) = op
                    state.pc = arch_pc
                    stall = extra
                    if page != last_page:
                        last_page = page
                        stall += itlb_access(fpc)
                    if line != last_line:
                        last_line = line
                        latency = il1_access(fpc, False)
                        stall += latency - il1_latency
                        if burst:
                            note_fill(latency > il1_latency, fpc)
                        if do_prefetch:
                            il1_prefetch(pf1)
                    if cross and line2 != last_line:
                        last_line = line2
                        latency = il1_access(addr2, False)
                        stall += latency - il1_latency
                        if burst:
                            note_fill(latency > il1_latency, fpc)
                        if do_prefetch:
                            il1_prefetch(pf2)

                    icount += 1
                    if burst or is_int:
                        state.icount = icount
                    if touch:
                        state.last_load_addr = None
                        state.last_store_addr = None
                        try:
                            handler(inst, state, flow)
                        except ExitProgram:
                            self._finished = True
                            cycle += 1
                            fetch_pc = fpc
                            halted = True
                            break
                        addr = state.last_load_addr
                        if addr is not None:
                            stall += dtlb_access(addr)
                            stall += dl1_access(addr, False) - dl1_latency
                            stall += load_use
                        addr = state.last_store_addr
                        if addr is not None:
                            stall += dtlb_access(addr)
                            stall += dl1_access(addr, True) - dl1_latency
                    else:
                        try:
                            handler(inst, state, flow)
                        except ExitProgram:
                            self._finished = True
                            cycle += 1
                            fetch_pc = fpc
                            halted = True
                            break

                    if flow_events:
                        drc_stall(False, 0)
                    if tracer is not None:
                        tracer.record(inst, arch_pc, fpc, False, 0)
                    cycle += 1 + stall
                if halted:
                    break

                (handler, inst, fpc, arch_pc, extra, page, line, pf1,
                 cross, addr2, line2, pf2, seq, touch, is_int) = block.term
                state.pc = arch_pc
                stall = extra
                if page != last_page:
                    last_page = page
                    stall += itlb_access(fpc)
                if line != last_line:
                    last_line = line
                    latency = il1_access(fpc, False)
                    stall += latency - il1_latency
                    if burst:
                        note_fill(latency > il1_latency, fpc)
                    if do_prefetch:
                        il1_prefetch(pf1)
                if cross and line2 != last_line:
                    last_line = line2
                    latency = il1_access(addr2, False)
                    stall += latency - il1_latency
                    if burst:
                        note_fill(latency > il1_latency, fpc)
                    if do_prefetch:
                        il1_prefetch(pf2)

                icount += 1
                if burst or is_int:
                    state.icount = icount
                if touch:
                    state.last_load_addr = None
                    state.last_store_addr = None
                try:
                    kind, target = handler(inst, state, flow)
                except ExitProgram:
                    self._finished = True
                    cycle += 1
                    fetch_pc = fpc
                    break

                if touch:
                    addr = state.last_load_addr
                    if addr is not None:
                        stall += dtlb_access(addr)
                        stall += dl1_access(addr, False) - dl1_latency
                        stall += load_use
                    addr = state.last_store_addr
                    if addr is not None:
                        stall += dtlb_access(addr)
                        stall += dl1_access(addr, True) - dl1_latency

                if kind == CTRL_NONE:
                    next_fetch_pc = seq if seq is not None else \
                        sequential(inst)
                elif kind == CTRL_HALT:
                    self._finished = True
                    cycle += 1 + stall
                    fetch_pc = fpc
                    break
                else:
                    next_fetch_pc = transfer(target)

                branch_penalty, predicted_ok = branch_stall(
                    inst, kind, next_fetch_pc, target
                )
                stall += branch_penalty
                if flow_events:
                    stall += drc_stall(not predicted_ok, branch_penalty)

                if tracer is not None:
                    tracer.record(inst, arch_pc, fpc, kind != CTRL_NONE,
                                  target)

                cycle += 1 + stall
                bexec += 1
                if on_block is not None:
                    on_block(block, next_fetch_pc)
                fetch_pc = next_fetch_pc
        finally:
            # Exceptions (security faults, decode errors, visibility
            # faults) propagate with counters written back, exactly as
            # the reference loop leaves them; ``_resume_fetch_pc`` is
            # deliberately not updated on that path (reference parity).
            # ``state.icount`` is synced lazily inside the loop (only
            # syscalls and burst tracking observe it mid-run), so it is
            # settled here for checkpoints, results and fault handlers.
            state.icount = icount
            self.cycle = cycle
            self._last_fetch_page = last_page
            self._last_fetch_line = last_line
            blockcache.execs += bexec
        self._resume_fetch_pc = fetch_pc
        if tail:
            return self._execute_loop_ref(budget)
        return self._finished

    def _execute_loop_profiled(self, budget: int) -> bool:
        """Timed mirror of :meth:`_execute_loop_ref`.

        Keep the loop bodies (reference, fast, profiled) in lockstep
        when changing pipeline behaviour — this variant only adds
        ``perf_counter`` brackets that deposit per-phase host seconds
        into ``_phase_times``.
        """
        state = self.state
        flow = self.flow
        times = self._phase_times
        now = time.perf_counter
        fetch_pc = self._resume_fetch_pc
        if self._finished:
            return True

        while state.icount < budget:
            t0 = now()
            inst = self._fetch(fetch_pc)
            t1 = now()
            state.pc = flow.arch_pc_of(fetch_pc)
            stall = self._fetch_stall(fetch_pc, inst.length)
            t2 = now()
            times["decode"] += t1 - t0
            times["fetch-translate"] += t2 - t1

            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                self._finished = True
                self.cycle += 1
                times["execute"] += now() - t2
                break
            t3 = now()
            times["execute"] += t3 - t2

            stall += _EXEC_EXTRA.get(inst.mnemonic, 0)
            stall += self._data_stall()
            t4 = now()
            times["cache-data"] += t4 - t3

            if kind == CTRL_NONE:
                next_fetch_pc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                self._finished = True
                self.cycle += 1 + stall
                times["retire"] += now() - t4
                break
            else:
                next_fetch_pc = flow.transfer(target)

            branch_penalty, predicted_ok = self._branch_stall(
                inst, kind, next_fetch_pc, target
            )
            stall += branch_penalty
            t5 = now()
            times["branch-predict"] += t5 - t4

            stall += self._drc_stall(
                fetch_waits=not predicted_ok, overlap=branch_penalty
            )
            t6 = now()
            times["drc"] += t6 - t5

            if self.tracer is not None:
                self.tracer.record(
                    inst, state.pc, fetch_pc, kind != CTRL_NONE, target
                )

            self.cycle += 1 + stall
            fetch_pc = next_fetch_pc
            times["retire"] += now() - t6

        self._resume_fetch_pc = fetch_pc
        return self._finished

    # -- progress checkpoints ------------------------------------------------------------------

    def _arm_checkpoints(self) -> None:
        """(Re)base the checkpoint windows on the current counters."""
        if self.checkpoint_interval:
            self._next_checkpoint = (
                self.state.icount + self.checkpoint_interval
            )
        else:
            self._next_checkpoint = _NO_CHECKPOINT
        self.checkpoints = []
        self._ckpt_icount = self.state.icount
        self._ckpt_cycle = self.cycle
        il1 = self.il1.stats
        self._ckpt_il1_acc = il1.accesses
        self._ckpt_il1_miss = il1.misses
        drc = self.drc.stats
        self._ckpt_drc_lookups = drc.lookups
        self._ckpt_drc_misses = drc.misses
        self._ckpt_drc_evictions = drc.evictions
        self._run_t0 = time.perf_counter()

    def _take_checkpoint(self) -> None:
        """Sample the window since the previous checkpoint."""
        icount = self.state.icount
        delta_instr = icount - self._ckpt_icount
        if delta_instr <= 0:
            self._next_checkpoint = icount + (
                self.checkpoint_interval or _NO_CHECKPOINT
            )
            return
        il1 = self.il1.stats
        drc = self.drc.stats
        delta_cycle = self.cycle - self._ckpt_cycle
        checkpoint = Checkpoint(
            instructions=icount - self._warmup_icount,
            cycles=self.cycle - self._warmup_cycle,
            ipc=ratio(delta_instr, delta_cycle),
            il1_miss_rate=ratio(il1.misses - self._ckpt_il1_miss,
                                il1.accesses - self._ckpt_il1_acc),
            drc_miss_rate=ratio(drc.misses - self._ckpt_drc_misses,
                                drc.lookups - self._ckpt_drc_lookups),
            host_seconds=time.perf_counter() - self._run_t0,
        )
        self.checkpoints.append(checkpoint)
        if self.events.enabled:
            self.events.emit(
                "checkpoint", **checkpoint.as_dict(), **self.event_fields
            )
            evictions = drc.evictions - self._ckpt_drc_evictions
            if evictions:
                self.events.emit(
                    "drc_evict",
                    evictions=evictions,
                    lookups=drc.lookups - self._ckpt_drc_lookups,
                    misses=drc.misses - self._ckpt_drc_misses,
                    instructions=checkpoint.instructions,
                    **self.event_fields,
                )
        if self.on_checkpoint is not None:
            self.on_checkpoint(checkpoint)
        self._ckpt_icount = icount
        self._ckpt_cycle = self.cycle
        self._ckpt_il1_acc = il1.accesses
        self._ckpt_il1_miss = il1.misses
        self._ckpt_drc_lookups = drc.lookups
        self._ckpt_drc_misses = drc.misses
        self._ckpt_drc_evictions = drc.evictions
        self._next_checkpoint = icount + (
            self.checkpoint_interval or _NO_CHECKPOINT
        )

    # -- bookkeeping ----------------------------------------------------------------------------

    def _reset_stats(self) -> None:
        """Zero all counters (cache/predictor contents are preserved)."""
        from .branch import BranchStats
        from .dram import DRAMStats
        from .drc import DRCStats
        from .tlb import TLBStats

        self._warmup_icount = self.state.icount
        self._warmup_cycle = self.cycle
        # Cache stats reset in place: compiled trace code closes over
        # the il1/dl1 CacheStats objects, so rebinding them would strand
        # those counters (see repro.arch.tracecache).
        self.il1.stats.reset()
        self.dl1.stats.reset()
        self.l2.stats.reset()
        self.dram.stats = DRAMStats()
        self.itlb.stats = TLBStats()
        self.dtlb.stats = TLBStats()
        self.branch.stats = BranchStats()
        self.drc.stats = DRCStats()
        self._arm_checkpoints()

    def _result(self, finished: bool, warmup: int) -> SimResult:
        # Close out observability state: a final partial-window sample
        # (so short runs still report trailing progress) and any fill
        # streak still open when the program stopped.
        if self.checkpoint_interval and self.state.icount > self._ckpt_icount:
            self._take_checkpoint()
        if self._burst_track and self._fill_streak:
            self._note_fetch_fill(False, 0)

        warm_icount = getattr(self, "_warmup_icount", 0)
        warm_cycle = getattr(self, "_warmup_cycle", 0)
        state = self.state
        instructions = state.icount - warm_icount
        cycles = self.cycle - warm_cycle

        result = SimResult(
            mode=getattr(self.flow, "name", "unknown"),
            cycles=cycles,
            instructions=instructions,
            warmup_instructions=warmup,
            exit_code=state.exit_code,
            finished=finished,
            output=state.out,
            il1=self.il1.stats.snapshot(),
            dl1=self.dl1.stats.snapshot(),
            l2=self.l2.stats.snapshot(),
            itlb_misses=self.itlb.stats.misses,
            dtlb_misses=self.dtlb.stats.misses,
            dram_accesses=self.dram.stats.accesses,
            dram_row_hit_rate=self.dram.stats.row_hit_rate,
            cond_branches=self.branch.stats.cond_branches,
            cond_mispredicts=self.branch.stats.cond_mispredicts,
            ras_mispredicts=self.branch.stats.ras_mispredicts,
            indirect_mispredicts=self.branch.stats.indirect_mispredicts,
            drc_lookups=self.drc.stats.lookups,
            drc_misses=self.drc.stats.misses,
            drc_bitmap_probes=self.drc.stats.bitmap_probes,
            checkpoints=list(self.checkpoints),
        )
        result.energy = compute_energy(
            self._activity(result), EnergyParams(), self.config.drc.entries
        )
        self._sync_metrics(result)
        return result

    def tier_stats(self) -> Dict[str, Dict[str, int]]:
        """Host-side execution-tier telemetry: block-cache and (when
        the trace tier is on) trace-cache counters.  These are host
        strategy observables — never part of simulated statistics."""
        stats = {"blocks": self._blockcache.stats()}
        if self._tracecache is not None:
            stats["traces"] = self._tracecache.stats()
        return stats

    #: tier_stats keys that are point-in-time sizes (synced as gauges);
    #: everything else is monotonic and synced as counter deltas.
    _TIER_GAUGES = frozenset(("blocks", "decoded", "traces",
                              "live_entries"))

    def _sync_tier_metrics(self, registry) -> None:
        for tier, tier_stats in self.tier_stats().items():
            for key, value in tier_stats.items():
                name = "sim.tier.%s.%s" % (tier, key)
                if key in self._TIER_GAUGES:
                    registry.gauge(name).set(value)
                    continue
                delta = value - self._tier_synced.get(name, 0)
                self._tier_synced[name] = value
                if delta > 0:
                    registry.counter(name).inc(delta)

    def _sync_metrics(self, result: SimResult) -> None:
        """Fold the finished run into the process-global metrics
        registry (end-of-run only, so the hot loop never touches it)."""
        registry = get_registry()
        if not registry.enabled:
            return
        self._sync_tier_metrics(registry)
        mode = result.mode
        registry.counter("sim.runs").inc()
        registry.counter("sim.instructions").inc(result.instructions)
        registry.counter("sim.cycles").inc(result.cycles)
        registry.counter("sim.%s.instructions" % mode).inc(result.instructions)
        registry.counter("sim.%s.cycles" % mode).inc(result.cycles)
        if result.drc_lookups:
            registry.counter("sim.drc.lookups").inc(result.drc_lookups)
            registry.counter("sim.drc.misses").inc(result.drc_misses)
        registry.gauge("sim.%s.last_ipc" % mode).set(result.ipc)
        histogram = registry.histogram(
            "sim.checkpoint.ipc", bounds=(0.2, 0.4, 0.6, 0.8, 1.0)
        )
        for checkpoint in result.checkpoints:
            histogram.observe(checkpoint.ipc)

    def _activity(self, result: SimResult) -> Dict[str, int]:
        """Activity counters for the power model."""
        return {
            "il1": self.il1.stats.accesses + self.il1.stats.prefetches,
            "dl1": self.dl1.stats.accesses,
            "l2": self.l2.stats.accesses,
            "dram": self.dram.stats.accesses,
            "itlb": self.itlb.stats.accesses,
            "dtlb": self.dtlb.stats.accesses,
            "btb": self.branch.stats.btb_lookups,
            "gshare": self.branch.stats.cond_branches,
            "ras": self.branch.stats.ras_pushes + self.branch.stats.ras_pops,
            "decode": result.instructions,
            "fetch": result.instructions,
            "alu": result.instructions,
            "regfile": 2 * result.instructions,
            "drc": self.drc.stats.lookups,
            "drc_bitmap": self.drc.stats.bitmap_probes,
        }


def simulate(
    image: BinaryImage,
    flow,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 1_000_000,
    warmup_instructions: int = 0,
    events: Optional[EventLog] = None,
    checkpoint_interval: int = 0,
    on_checkpoint: Optional[Callable[[Checkpoint], None]] = None,
    event_fields: Optional[dict] = None,
) -> SimResult:
    """One-shot helper: build a :class:`CycleCPU` and run it."""
    cpu = CycleCPU(
        image,
        flow,
        config,
        events=events,
        checkpoint_interval=checkpoint_interval,
        on_checkpoint=on_checkpoint,
        event_fields=event_fields,
    )
    return cpu.run(max_instructions, warmup_instructions)
