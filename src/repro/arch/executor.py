"""Functional executor for decoded RX86 instructions.

The executor implements instruction *semantics* only.  Everything that
depends on the execution mode (baseline / naive hardware ILR / VCFR /
software emulation) is delegated to a :class:`ModeAdapter`:

* what the sequential fall-through PC is (naive ILR follows the
  randomized fall-through map, the others use ``addr + length``),
* which value a ``call`` pushes as return address (VCFR pushes the
  *randomized* return address, paper §IV-A),
* the §IV-C auto-de-randomization of loads that hit a stack slot holding
  a randomized return address, and the bitmap bookkeeping behind it.

All four execution paths in this repo drive this one executor, which is
what makes the cross-mode equivalence invariant testable.

Semantics are organized as one handler function per mnemonic, dispatched
through :data:`DISPATCH`.  :func:`execute` remains the public entry
point (per-instruction prologue + table dispatch); the cycle simulator's
basic-block fast path binds handlers per pre-decoded instruction so its
hot loop pays neither the mnemonic lookup nor the wrapper frame — both
paths run the *same* handler bodies, so they cannot diverge.
"""

from __future__ import annotations

from typing import Dict

from ..isa import opcodes
from ..isa.flags import to_signed32
from ..isa.instruction import Instruction
from ..isa.registers import MASK32
from .state import MachineState

# Control-flow outcome kinds.
CTRL_NONE = 0  # sequential (includes not-taken conditional branches)
CTRL_JUMP = 1  # taken jump (conditional or not, direct or indirect)
CTRL_CALL = 2
CTRL_RET = 3
CTRL_HALT = 4

#: Extra execute-stage cycles per mnemonic (beyond the 1-cycle issue
#: slot) — consumed by the cycle simulator's timing model.
EXEC_EXTRA: Dict[str, int] = {"imul": 2}


class ExecutionError(Exception):
    """Raised when a decodable instruction has no defined semantics."""


class ModeAdapter:
    """Mode-specific address-space behaviour.  Base class = no randomization."""

    #: §IV-C randomized-value tag machinery.  ``derand_map`` is the tag
    #: *producer* set: materializing one of its keys (a current
    #: randomized address) via ``movi``/``mov ri`` tags the destination
    #: register.  ``tagmask`` holds the per-register tag bits (bit *i*
    #: = register *i*): register moves propagate them, loads and
    #: arithmetic clear them, and stores hand them to ``note_store`` so
    #: the bitmap marks slots by *provenance*, never by comparing the
    #: stored value against the tables.  With no randomization both
    #: stay empty/zero, and every maintenance site in the handlers is
    #: guarded on them, so baseline execution never writes either.
    derand_map: dict = {}
    tagmask: int = 0

    def fallthrough(self, inst: Instruction) -> int:
        """Architectural PC of the next sequential instruction."""
        return inst.addr + inst.length

    def call_retaddr(self, inst: Instruction) -> int:
        """The value a call at ``inst`` pushes on the stack."""
        return inst.addr + inst.length

    def fixup_load(self, addr: int, value: int) -> int:
        """Filter a 32-bit value loaded from ``addr`` into a register."""
        return value

    def note_store(self, addr: int, value: int, tagged: bool = False) -> None:
        """A 32-bit store of ``value`` hit ``addr``.

        Randomized modes maintain the §IV-C bitmap here: ``tagged``
        carries the stored register's randomized-tag bit as seen by the
        store hardware at retirement, so a store of a live randomized
        code pointer marks the slot and any other store clears a stale
        mark.
        """

    def note_retaddr_push(self, addr: int, value: int) -> None:
        """A call pushed return address ``value`` into stack slot ``addr``."""


#: Shared stateless adapter for un-randomized execution.
BASELINE_ADAPTER = ModeAdapter()


# -- per-mnemonic handlers ---------------------------------------------------
#
# Every handler has the signature ``(inst, state, adapter) -> (kind,
# target)`` and assumes the per-instruction prologue (icount bump,
# load/store address reset) already ran — :func:`execute` provides it for
# the functional paths, the block fast path inlines it.

def _op_movi(inst, state, adapter):
    value = inst.imm & MASK32
    state.regs.regs[inst.reg] = value
    if value in adapter.derand_map:
        adapter.tagmask |= 1 << inst.reg
    elif adapter.tagmask:
        adapter.tagmask &= ~(1 << inst.reg)
    return (CTRL_NONE, 0)


def _op_push(inst, state, adapter):
    value = state.regs.regs[inst.reg]
    slot = state.push(value)
    adapter.note_store(slot, value,
                       bool(adapter.tagmask & (1 << inst.reg)))
    state.last_store_addr = slot
    return (CTRL_NONE, 0)


def _op_pop(inst, state, adapter):
    value, slot = state.pop()
    state.regs.regs[inst.reg] = adapter.fixup_load(slot, value)
    if adapter.tagmask:  # loads auto-de-randomize: result is untagged
        adapter.tagmask &= ~(1 << inst.reg)
    state.last_load_addr = slot
    return (CTRL_NONE, 0)


def _op_nop(inst, state, adapter):
    return (CTRL_NONE, 0)


def _op_halt(inst, state, adapter):
    return (CTRL_HALT, 0)


def _op_int(inst, state, adapter):
    state.syscall(inst.imm)
    if adapter.tagmask:  # syscalls may write EAX (ICOUNT): plain data
        adapter.tagmask &= ~1
    return (CTRL_NONE, 0)


def _op_leave(inst, state, adapter):
    # mov esp, ebp ; pop ebp
    regs = state.regs.regs
    regs[4] = regs[5]
    value, slot = state.pop()
    regs[5] = adapter.fixup_load(slot, value)
    if adapter.tagmask:
        t = adapter.tagmask
        t = (t | 0x10) if t & 0x20 else (t & ~0x10)  # esp inherits ebp
        adapter.tagmask = t & ~0x20  # popped frame pointer: untagged
    state.last_load_addr = slot
    return (CTRL_NONE, 0)


def _op_jmp(inst, state, adapter):
    return (CTRL_JUMP, inst.target)


def _op_jcc(inst, state, adapter):
    if state.flags.evaluate(inst.cc):
        return (CTRL_JUMP, inst.target)
    return (CTRL_NONE, 0)


def _op_call(inst, state, adapter):
    ret = adapter.call_retaddr(inst)
    slot = state.push(ret)
    adapter.note_retaddr_push(slot, ret)
    state.last_store_addr = slot
    state.last_retaddr = ret
    return (CTRL_CALL, inst.target)


def _op_calli(inst, state, adapter):
    if inst.mode == opcodes.MODE_RR:
        target = state.regs.regs[inst.rm]
    else:
        addr = (state.regs.regs[inst.rm] + inst.disp) & MASK32
        target = state.mem.read_u32(addr)
        state.last_load_addr = addr
    ret = adapter.call_retaddr(inst)
    slot = state.push(ret)
    adapter.note_retaddr_push(slot, ret)
    state.last_store_addr = slot
    state.last_retaddr = ret
    return (CTRL_CALL, target)


def _op_jmpi(inst, state, adapter):
    if inst.mode == opcodes.MODE_RR:
        target = state.regs.regs[inst.rm]
    else:
        addr = (state.regs.regs[inst.rm] + inst.disp) & MASK32
        target = state.mem.read_u32(addr)
        state.last_load_addr = addr
    return (CTRL_JUMP, target)


def _op_ret(inst, state, adapter):
    # The popped value is consumed *as a control-flow target*; it is
    # intentionally NOT run through fixup_load — a randomized return
    # address must stay randomized so fetch can translate and police it.
    target, slot = state.pop()
    state.last_load_addr = slot
    return (CTRL_RET, target)


def _op_shift(inst, state, adapter):
    m = inst.mnemonic
    regs = state.regs.regs
    count = inst.imm & 31
    value = regs[inst.rm]
    if m == "shl":
        result = (value << count) & MASK32
    elif m == "shr":
        result = (value >> count) & MASK32
    else:
        result = (to_signed32(value) >> count) & MASK32
    regs[inst.rm] = result
    if adapter.tagmask:  # arithmetic clears the randomized-value tag
        adapter.tagmask &= ~(1 << inst.rm)
    state.flags.set_logic(result)
    return (CTRL_NONE, 0)


def _op_lea(inst, state, adapter):
    if inst.mode != opcodes.MODE_RM:
        raise ExecutionError("lea requires the load form")
    regs = state.regs.regs
    regs[inst.reg] = (regs[inst.rm] + inst.disp) & MASK32
    if adapter.tagmask:
        adapter.tagmask &= ~(1 << inst.reg)
    return (CTRL_NONE, 0)


def _op_alu(inst, state, adapter):
    """Two-operand ALU / mov group (mode-driven operand fetch)."""
    m = inst.mnemonic
    regs = state.regs.regs
    mem = state.mem
    mode = inst.mode
    if mode is None:
        raise ExecutionError("no semantics for %s" % m)

    if mode == opcodes.MODE_RR:
        a = regs[inst.reg]
        b = regs[inst.rm]
    elif mode == opcodes.MODE_RM:
        addr = (regs[inst.rm] + inst.disp) & MASK32
        a = regs[inst.reg]
        b = adapter.fixup_load(addr, mem.read_u32(addr))
        state.last_load_addr = addr
    elif mode == opcodes.MODE_MR:
        addr = (regs[inst.rm] + inst.disp) & MASK32
        b = regs[inst.reg]
        if m == "mov":
            a = 0  # pure store: no read-modify-write
        else:
            a = adapter.fixup_load(addr, mem.read_u32(addr))
            state.last_load_addr = addr
    else:  # MODE_RI
        a = regs[inst.reg]
        b = inst.imm & MASK32

    flags = state.flags
    write_back = True
    if m == "mov":
        result = b
    elif m == "add":
        total = a + b
        result = total & MASK32
        flags.set_add(a, b, total)
    elif m == "sub":
        result = (a - b) & MASK32
        flags.set_sub(a, b)
    elif m == "cmp":
        flags.set_sub(a, b)
        result = a
        write_back = False
    elif m == "test":
        flags.set_logic(a & b)
        result = a
        write_back = False
    elif m == "and":
        result = a & b
        flags.set_logic(result)
    elif m == "or":
        result = a | b
        flags.set_logic(result)
    elif m == "xor":
        result = a ^ b
        flags.set_logic(result)
    elif m == "imul":
        if mode == opcodes.MODE_MR:
            raise ExecutionError("imul has no store form")
        product = to_signed32(a) * to_signed32(b)
        result = product & MASK32
        flags.set_mul(product)
    else:
        raise ExecutionError("no semantics for %s" % m)

    if write_back:
        if mode == opcodes.MODE_MR:
            mem.write_u32(addr, result)
            # Only a pure store forwards the source register's tag; a
            # read-modify-write result is arithmetic, hence untagged.
            adapter.note_store(addr, result,
                               m == "mov"
                               and bool(adapter.tagmask & (1 << inst.reg)))
            state.last_store_addr = addr
        else:
            regs[inst.reg] = result
            if m == "mov" and mode == opcodes.MODE_RR:
                t = adapter.tagmask
                if t:
                    if t & (1 << inst.rm):
                        adapter.tagmask = t | (1 << inst.reg)
                    else:
                        adapter.tagmask = t & ~(1 << inst.reg)
            elif m == "mov" and mode == opcodes.MODE_RI:
                if result in adapter.derand_map:
                    adapter.tagmask |= 1 << inst.reg
                elif adapter.tagmask:
                    adapter.tagmask &= ~(1 << inst.reg)
            elif adapter.tagmask:  # loads and arithmetic: untagged
                adapter.tagmask &= ~(1 << inst.reg)

    return (CTRL_NONE, 0)


#: Mnemonic -> handler table.  One entry per mnemonic the decoder can
#: produce (the conditional-branch family shares ``_op_jcc``, the
#: two-operand ALU/mov group shares ``_op_alu``).
DISPATCH: Dict[str, object] = {
    "movi": _op_movi,
    "push": _op_push,
    "pop": _op_pop,
    "nop": _op_nop,
    "halt": _op_halt,
    "int": _op_int,
    "leave": _op_leave,
    "jmp": _op_jmp,
    "jmp8": _op_jmp,
    "call": _op_call,
    "calli": _op_calli,
    "jmpi": _op_jmpi,
    "ret": _op_ret,
    "shl": _op_shift,
    "shr": _op_shift,
    "sar": _op_shift,
    "lea": _op_lea,
}
DISPATCH.update(("j" + name, _op_jcc) for name in opcodes.CC_NAMES)
DISPATCH.update(
    (name, _op_alu)
    for name in ("mov", "add", "sub", "cmp", "test", "and", "or", "xor",
                 "imul")
)


def handler_for(inst: Instruction):
    """The semantics handler for ``inst`` (raises like :func:`execute`
    would for an instruction with no defined semantics)."""
    handler = DISPATCH.get(inst.mnemonic)
    if handler is None:
        raise ExecutionError("no semantics for %s" % inst.mnemonic)
    return handler


# -- decode-time specialization (block fast path) -----------------------------

#: Shared sequential-outcome tuple; handlers may return the same object
#: every call (callers only unpack it).
_NONE0 = (CTRL_NONE, 0)


def specialize_handler(inst: Instruction):
    """A handler specialized to ``inst`` at decode time.

    Semantically identical to :func:`handler_for`'s result — same side
    effects, same flag updates, same exceptions — but with the mnemonic
    and operand-mode dispatch resolved *once* and the instruction's
    fields (register indices, displacement, immediate, branch target)
    captured as locals, so the per-call body is straight-line.  Shapes
    not worth specializing fall back to the generic handler.  The block
    cache binds these into its op tuples; the functional paths keep
    dispatching through :data:`DISPATCH`, and
    ``tests/test_fastpath_equivalence.py`` locks the two together.
    """
    m = inst.mnemonic
    mode = inst.mode
    RR, RI = opcodes.MODE_RR, opcodes.MODE_RI
    RM, MR = opcodes.MODE_RM, opcodes.MODE_MR

    if m == "movi":
        def h(inst, state, adapter, _r=inst.reg, _v=inst.imm & MASK32,
              _bit=1 << inst.reg):
            state.regs.regs[_r] = _v
            if _v in adapter.derand_map:
                adapter.tagmask |= _bit
            elif adapter.tagmask:
                adapter.tagmask &= ~_bit
            return _NONE0
        return h

    if inst.cc is not None:  # the conditional-branch family
        def h(inst, state, adapter, _cc=inst.cc,
              _taken=(CTRL_JUMP, inst.target)):
            if state.flags.evaluate(_cc):
                return _taken
            return _NONE0
        return h

    if m in ("jmp", "jmp8"):
        def h(inst, state, adapter, _out=(CTRL_JUMP, inst.target)):
            return _out
        return h

    if m == "call":
        def h(inst, state, adapter, _out=(CTRL_CALL, inst.target)):
            ret = adapter.call_retaddr(inst)
            slot = state.push(ret)
            adapter.note_retaddr_push(slot, ret)
            state.last_store_addr = slot
            state.last_retaddr = ret
            return _out
        return h

    if m == "push":
        def h(inst, state, adapter, _r=inst.reg, _bit=1 << inst.reg):
            value = state.regs.regs[_r]
            slot = state.push(value)
            adapter.note_store(slot, value, bool(adapter.tagmask & _bit))
            state.last_store_addr = slot
            return _NONE0
        return h

    if m == "pop":
        def h(inst, state, adapter, _r=inst.reg, _bit=1 << inst.reg):
            value, slot = state.pop()
            state.regs.regs[_r] = adapter.fixup_load(slot, value)
            if adapter.tagmask:
                adapter.tagmask &= ~_bit
            state.last_load_addr = slot
            return _NONE0
        return h

    if m in ("shl", "shr", "sar"):
        count = inst.imm & 31
        if m == "shl":
            def h(inst, state, adapter, _rm=inst.rm, _c=count,
                  _bit=1 << inst.rm):
                regs = state.regs.regs
                result = (regs[_rm] << _c) & MASK32
                regs[_rm] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        elif m == "shr":
            def h(inst, state, adapter, _rm=inst.rm, _c=count,
                  _bit=1 << inst.rm):
                regs = state.regs.regs
                result = (regs[_rm] >> _c) & MASK32
                regs[_rm] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        else:
            def h(inst, state, adapter, _rm=inst.rm, _c=count,
                  _bit=1 << inst.rm):
                regs = state.regs.regs
                result = (to_signed32(regs[_rm]) >> _c) & MASK32
                regs[_rm] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        return h

    if m == "lea" and mode == opcodes.MODE_RM:
        def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
              _d=inst.disp, _bit=1 << inst.reg):
            regs = state.regs.regs
            regs[_r] = (regs[_rm] + _d) & MASK32
            if adapter.tagmask:
                adapter.tagmask &= ~_bit
            return _NONE0
        return h

    if m == "int":
        def h(inst, state, adapter, _imm=inst.imm):
            state.syscall(_imm)
            if adapter.tagmask:
                adapter.tagmask &= ~1
            return _NONE0
        return h

    if m == "mov":
        if mode == RR:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _dbit=1 << inst.reg, _sbit=1 << inst.rm):
                regs = state.regs.regs
                regs[_r] = regs[_rm]
                t = adapter.tagmask
                if t:  # register moves propagate the tag bit
                    adapter.tagmask = (t | _dbit) if t & _sbit \
                        else (t & ~_dbit)
                return _NONE0
            return h
        if mode == RI:
            def h(inst, state, adapter, _r=inst.reg,
                  _v=inst.imm & MASK32, _bit=1 << inst.reg):
                state.regs.regs[_r] = _v
                if _v in adapter.derand_map:
                    adapter.tagmask |= _bit
                elif adapter.tagmask:
                    adapter.tagmask &= ~_bit
                return _NONE0
            return h
        if mode == RM:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _d=inst.disp, _bit=1 << inst.reg):
                regs = state.regs.regs
                addr = (regs[_rm] + _d) & MASK32
                regs[_r] = adapter.fixup_load(addr, state.mem.read_u32(addr))
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.last_load_addr = addr
                return _NONE0
            return h
        if mode == MR:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _d=inst.disp, _bit=1 << inst.reg):
                regs = state.regs.regs
                addr = (regs[_rm] + _d) & MASK32
                value = regs[_r]
                state.mem.write_u32(addr, value)
                adapter.note_store(addr, value,
                                   bool(adapter.tagmask & _bit))
                state.last_store_addr = addr
                return _NONE0
            return h
        return _op_alu

    if m == "add":
        if mode == RR:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _bit=1 << inst.reg):
                regs = state.regs.regs
                a = regs[_r]
                b = regs[_rm]
                total = a + b
                regs[_r] = total & MASK32
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_add(a, b, total)
                return _NONE0
            return h
        if mode == RI:
            def h(inst, state, adapter, _r=inst.reg,
                  _b=inst.imm & MASK32, _bit=1 << inst.reg):
                regs = state.regs.regs
                a = regs[_r]
                total = a + _b
                regs[_r] = total & MASK32
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_add(a, _b, total)
                return _NONE0
            return h
        if mode == RM:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _d=inst.disp, _bit=1 << inst.reg):
                regs = state.regs.regs
                addr = (regs[_rm] + _d) & MASK32
                a = regs[_r]
                b = adapter.fixup_load(addr, state.mem.read_u32(addr))
                state.last_load_addr = addr
                total = a + b
                regs[_r] = total & MASK32
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_add(a, b, total)
                return _NONE0
            return h
        if mode == MR:
            def h(inst, state, adapter, _r=inst.reg, _rm=inst.rm,
                  _d=inst.disp):
                regs = state.regs.regs
                addr = (regs[_rm] + _d) & MASK32
                b = regs[_r]
                a = adapter.fixup_load(addr, state.mem.read_u32(addr))
                state.last_load_addr = addr
                total = a + b
                result = total & MASK32
                state.flags.set_add(a, b, total)
                state.mem.write_u32(addr, result)
                adapter.note_store(addr, result)
                state.last_store_addr = addr
                return _NONE0
            return h
        return _op_alu

    if m in ("sub", "cmp", "test", "and", "or", "xor", "imul"):
        if mode not in (RR, RI):
            return _op_alu  # rare store/load forms: generic ladder
        reg = inst.reg
        rm = inst.rm
        imm = inst.imm & MASK32 if mode == RI else 0
        is_ri = mode == RI
        if m == "sub":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri, _bit=1 << reg):
                regs = state.regs.regs
                a = regs[_r]
                b = _imm if _ri else regs[_rm]
                regs[_r] = (a - b) & MASK32
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_sub(a, b)
                return _NONE0
        elif m == "cmp":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri):
                regs = state.regs.regs
                state.flags.set_sub(
                    regs[_r], _imm if _ri else regs[_rm]
                )
                return _NONE0
        elif m == "test":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri):
                regs = state.regs.regs
                state.flags.set_logic(
                    regs[_r] & (_imm if _ri else regs[_rm])
                )
                return _NONE0
        elif m == "and":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri, _bit=1 << reg):
                regs = state.regs.regs
                result = regs[_r] & (_imm if _ri else regs[_rm])
                regs[_r] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        elif m == "or":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri, _bit=1 << reg):
                regs = state.regs.regs
                result = regs[_r] | (_imm if _ri else regs[_rm])
                regs[_r] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        elif m == "xor":
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri, _bit=1 << reg):
                regs = state.regs.regs
                result = regs[_r] ^ (_imm if _ri else regs[_rm])
                regs[_r] = result
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_logic(result)
                return _NONE0
        else:  # imul
            def h(inst, state, adapter, _r=reg, _rm=rm, _imm=imm,
                  _ri=is_ri, _bit=1 << reg):
                regs = state.regs.regs
                a = regs[_r]
                b = _imm if _ri else regs[_rm]
                product = to_signed32(a) * to_signed32(b)
                regs[_r] = product & MASK32
                if adapter.tagmask:
                    adapter.tagmask &= ~_bit
                state.flags.set_mul(product)
                return _NONE0
        return h

    return handler_for(inst)


# -- compile-time source templates (superblock trace tier) --------------------
#
# The trace tier (:mod:`repro.arch.tracecache`) compiles hot block
# sequences into one specialized Python function via source generation +
# ``exec``.  The templates below emit, for one decoded instruction, the
# straight-line source implementing exactly the matching handler body
# above — same side effects, same observable intermediate state on a
# fault, same flag algebra — with the instruction's fields baked in as
# literals.  Keeping the templates next to the handlers is what keeps
# them honest: any semantics change must touch both, and the
# differential suites (tests/test_fastpath_equivalence.py, repro.qa)
# compare the tiers instruction-by-instruction.
#
# Generated-scope name contract (bound by the trace compiler):
#
# ``st`` (MachineState), ``regs`` (register list), ``flags``, ``rd``/
# ``wr`` (mem.read_u32/write_u32), ``syscall``, ``flow``, ``events``,
# ``fixup`` (flow.fixup_load), ``note_store``, ``note_push``
# (note_retaddr_push), ``call_ret`` (call_retaddr), ``i{n}`` (this op's
# Instruction).  Templates may define locals ``a``, ``b_``, ``r_``,
# ``t_``, ``v``, ``ov``, ``addr``, ``sp``, ``tgt``, ``ret_``.

_M32 = "4294967295"
_SIGN = "2147483648"


def _src_flags_logic(result: str):
    """Inline ``Flags.set_logic`` (CF=OF=0)."""
    return [
        "flags.zf = %s == 0" % result,
        "flags.sf = (%s & %s) != 0" % (result, _SIGN),
        "flags.cf = False",
        "flags.of = False",
    ]


def _src_flags_add(a: str, b: str, total: str, result: str):
    """Inline ``Flags.set_add``."""
    return [
        "flags.zf = %s == 0" % result,
        "flags.sf = (%s & %s) != 0" % (result, _SIGN),
        "flags.cf = %s > %s" % (total, _M32),
        "flags.of = ((~(%s ^ %s)) & (%s ^ %s) & %s) != 0"
        % (a, b, a, result, _SIGN),
    ]


def _src_flags_sub(a: str, b: str, result: str):
    """Inline ``Flags.set_sub`` (``result`` holds ``(a - b) & MASK32``)."""
    return [
        "flags.zf = %s == 0" % result,
        "flags.sf = (%s & %s) != 0" % (result, _SIGN),
        "flags.cf = %s > %s" % (b, a),
        "flags.of = ((%s ^ %s) & (%s ^ %s) & %s) != 0"
        % (a, b, a, result, _SIGN),
    ]


def _src_tag_clear(bit: int):
    """Inline the handlers' ``if tagmask: tagmask &= ~bit`` maintenance."""
    return [
        "if flow.tagmask:",
        "    flow.tagmask &= %d" % ~bit,
    ]


def _src_tag_imm(value: int, bit: int, derand_map):
    """Tag maintenance for materializing immediate ``value``.

    The ``value in derand_map`` membership is folded at compile time:
    the producer map only ever changes on a re-randomization epoch,
    which flushes every compiled trace (the same contract that lets the
    block cache freeze per-op ``arch_pc``).
    """
    if value in derand_map:
        return ["flow.tagmask |= %d" % bit]
    return _src_tag_clear(bit)


#: Condition-code expressions, mirroring ``Flags.evaluate``.
_CC_SRC = {
    opcodes.CC_Z: "flags.zf",
    opcodes.CC_NZ: "not flags.zf",
    opcodes.CC_L: "flags.sf != flags.of",
    opcodes.CC_GE: "flags.sf == flags.of",
    opcodes.CC_LE: "flags.zf or flags.sf != flags.of",
    opcodes.CC_G: "not flags.zf and flags.sf == flags.of",
    opcodes.CC_B: "flags.cf",
    opcodes.CC_AE: "not flags.cf",
}


def _load_src(randomized: bool, dest: str, addr: str):
    """A fixed-up 32-bit load into ``dest`` (baseline fixup is identity)."""
    if randomized:
        return "%s = fixup(%s, rd(%s))" % (dest, addr, addr)
    return "%s = rd(%s)" % (dest, addr)


def inline_exec_src(inst: Instruction, n: int, randomized: bool,
                    derand_map=None):
    """Execute-stage source for a CTRL_NONE instruction.

    Returns ``{"lines", "loads", "stores", "can_event"}`` — ``loads``/
    ``stores`` name locals holding data addresses (in the order the fast
    loop probes them), ``can_event`` says whether the op can append flow
    events (loads through ``fixup``) — or None when the shape has no
    template (caller falls back to the bound handler).  ``int`` is not
    handled here: its ExitProgram unwind is control flow the trace
    compiler owns.
    """
    m = inst.mnemonic
    mode = inst.mode
    derand_map = derand_map if derand_map is not None else {}
    RR, RI = opcodes.MODE_RR, opcodes.MODE_RI
    RM, MR = opcodes.MODE_RM, opcodes.MODE_MR

    def out(lines, loads=(), stores=()):
        return {
            "lines": lines,
            "loads": list(loads),
            "stores": list(stores),
            "can_event": randomized and bool(loads),
        }

    if m == "nop":
        return out([])

    if m == "movi" or (m == "mov" and mode == RI):
        value = inst.imm & MASK32
        lines = ["regs[%d] = %d" % (inst.reg, value)]
        if randomized:
            lines += _src_tag_imm(value, 1 << inst.reg, derand_map)
        return out(lines)

    if m == "mov":
        if mode == RR:
            lines = ["regs[%d] = regs[%d]" % (inst.reg, inst.rm)]
            if randomized:
                lines += [
                    "t_ = flow.tagmask",
                    "if t_:",
                    "    flow.tagmask = (t_ | %d) if t_ & %d else (t_ & %d)"
                    % (1 << inst.reg, 1 << inst.rm, ~(1 << inst.reg)),
                ]
            return out(lines)
        if mode == RM:
            lines = [
                "addr = (regs[%d] + %d) & %s" % (inst.rm, inst.disp, _M32),
                _load_src(randomized, "regs[%d]" % inst.reg, "addr"),
            ]
            if randomized:
                lines += _src_tag_clear(1 << inst.reg)
            lines.append("st.last_load_addr = addr")
            return out(lines, loads=["addr"])
        if mode == MR:
            lines = [
                "addr = (regs[%d] + %d) & %s" % (inst.rm, inst.disp, _M32),
                "v = regs[%d]" % inst.reg,
                "wr(addr, v)",
            ]
            if randomized:
                lines.append(
                    "note_store(addr, v, flow.tagmask & %d != 0)"
                    % (1 << inst.reg)
                )
            lines.append("st.last_store_addr = addr")
            return out(lines, stores=["addr"])
        return None

    if m == "add":
        if mode == RR or mode == RI:
            b = "regs[%d]" % inst.rm if mode == RR else str(inst.imm & MASK32)
            lines = [
                "a = regs[%d]" % inst.reg,
                "t_ = a + %s" % b,
                "r_ = t_ & %s" % _M32,
                "regs[%d] = r_" % inst.reg,
            ]
            if randomized:
                lines += _src_tag_clear(1 << inst.reg)
            lines += _src_flags_add("a", b, "t_", "r_")
            return out(lines)
        if mode == RM:
            lines = [
                "addr = (regs[%d] + %d) & %s" % (inst.rm, inst.disp, _M32),
                "a = regs[%d]" % inst.reg,
                _load_src(randomized, "b_", "addr"),
                "st.last_load_addr = addr",
                "t_ = a + b_",
                "r_ = t_ & %s" % _M32,
                "regs[%d] = r_" % inst.reg,
            ]
            if randomized:
                lines += _src_tag_clear(1 << inst.reg)
            lines += _src_flags_add("a", "b_", "t_", "r_")
            return out(lines, loads=["addr"])
        if mode == MR:
            lines = [
                "addr = (regs[%d] + %d) & %s" % (inst.rm, inst.disp, _M32),
                "b_ = regs[%d]" % inst.reg,
                _load_src(randomized, "a", "addr"),
                "st.last_load_addr = addr",
                "t_ = a + b_",
                "r_ = t_ & %s" % _M32,
            ]
            lines += _src_flags_add("a", "b_", "t_", "r_")
            lines.append("wr(addr, r_)")
            if randomized:
                lines.append("note_store(addr, r_)")
            lines.append("st.last_store_addr = addr")
            return out(lines, loads=["addr"], stores=["addr"])
        return None

    if m in ("sub", "cmp", "test", "and", "or", "xor", "imul"):
        if mode != RR and mode != RI:
            return None  # rare load/store forms: generic handler ladder
        b = "regs[%d]" % inst.rm if mode == RR else str(inst.imm & MASK32)
        bit = 1 << inst.reg
        if m == "sub":
            lines = [
                "a = regs[%d]" % inst.reg,
                "r_ = (a - %s) & %s" % (b, _M32),
                "regs[%d] = r_" % inst.reg,
            ]
            if randomized:
                lines += _src_tag_clear(bit)
            lines += _src_flags_sub("a", b, "r_")
            return out(lines)
        if m == "cmp":
            lines = [
                "a = regs[%d]" % inst.reg,
                "r_ = (a - %s) & %s" % (b, _M32),
            ]
            lines += _src_flags_sub("a", b, "r_")
            return out(lines)
        if m == "test":
            lines = ["r_ = regs[%d] & %s" % (inst.reg, b)]
            lines += _src_flags_logic("r_")
            return out(lines)
        if m in ("and", "or", "xor"):
            op_ch = {"and": "&", "or": "|", "xor": "^"}[m]
            lines = [
                "r_ = regs[%d] %s %s" % (inst.reg, op_ch, b),
                "regs[%d] = r_" % inst.reg,
            ]
            if randomized:
                lines += _src_tag_clear(bit)
            lines += _src_flags_logic("r_")
            return out(lines)
        # imul RR/RI: exact signed product for the CF/OF overflow rule.
        lines = [
            "a = regs[%d]" % inst.reg,
            "a = a - 4294967296 if a & %s else a" % _SIGN,
            "b_ = %s" % b,
            "b_ = b_ - 4294967296 if b_ & %s else b_" % _SIGN,
            "t_ = a * b_",
            "r_ = t_ & %s" % _M32,
            "regs[%d] = r_" % inst.reg,
        ]
        if randomized:
            lines += _src_tag_clear(bit)
        lines += [
            "v = r_ - 4294967296 if r_ & %s else r_" % _SIGN,
            "ov = v != t_",
            "flags.zf = r_ == 0",
            "flags.sf = (r_ & %s) != 0" % _SIGN,
            "flags.cf = ov",
            "flags.of = ov",
        ]
        return out(lines)

    if m in ("shl", "shr", "sar"):
        count = inst.imm & 31
        bit = 1 << inst.rm
        if m == "shl":
            lines = ["r_ = (regs[%d] << %d) & %s" % (inst.rm, count, _M32)]
        elif m == "shr":
            lines = ["r_ = regs[%d] >> %d" % (inst.rm, count)]
        else:
            lines = [
                "v = regs[%d]" % inst.rm,
                "v = v - 4294967296 if v & %s else v" % _SIGN,
                "r_ = (v >> %d) & %s" % (count, _M32),
            ]
        lines.append("regs[%d] = r_" % inst.rm)
        if randomized:
            lines += _src_tag_clear(bit)
        lines += _src_flags_logic("r_")
        return out(lines)

    if m == "lea" and mode == RM:
        lines = [
            "regs[%d] = (regs[%d] + %d) & %s"
            % (inst.reg, inst.rm, inst.disp, _M32)
        ]
        if randomized:
            lines += _src_tag_clear(1 << inst.reg)
        return out(lines)

    if m == "push":
        lines = [
            "v = regs[%d]" % inst.reg,
            "sp = (regs[4] - 4) & %s" % _M32,
            "regs[4] = sp",
            "wr(sp, v)",
        ]
        if randomized:
            lines.append(
                "note_store(sp, v, flow.tagmask & %d != 0)" % (1 << inst.reg)
            )
        lines.append("st.last_store_addr = sp")
        return out(lines, stores=["sp"])

    if m == "pop":
        lines = [
            "sp = regs[4]",
            "v = rd(sp)",
            "regs[4] = (sp + 4) & %s" % _M32,
        ]
        if randomized:
            lines.append("regs[%d] = fixup(sp, v)" % inst.reg)
            lines += _src_tag_clear(1 << inst.reg)
        else:
            lines.append("regs[%d] = v" % inst.reg)
        lines.append("st.last_load_addr = sp")
        return out(lines, loads=["sp"])

    if m == "leave":
        lines = [
            "regs[4] = regs[5]",
            "sp = regs[4]",
            "v = rd(sp)",
            "regs[4] = (sp + 4) & %s" % _M32,
        ]
        if randomized:
            lines += [
                "regs[5] = fixup(sp, v)",
                "t_ = flow.tagmask",
                "if t_:",
                "    flow.tagmask = ((t_ | 16) if t_ & 32 else (t_ & -17))"
                " & -33",
            ]
        else:
            lines.append("regs[5] = v")
        lines.append("st.last_load_addr = sp")
        return out(lines, loads=["sp"])

    return None


def inline_term_src(inst: Instruction, n: int, randomized: bool,
                    retaddr=None):
    """Control-flow source plan for a block-terminal instruction.

    Returns a dict with ``kind`` ('jcc'/'jump'/'call'/'ret'/'calli'/
    'jmpi'), side-effect ``lines`` (run before the data-stall probes),
    ``loads``/``stores``, the branch-unit kind number ``ctrl``, and
    either a static ``target`` or the name of the ``target_var`` local —
    or None when the mnemonic has no plan (never the case for blocks the
    trace recorder accepted).  ``retaddr`` carries a compile-time-folded
    return-address value for call/calli when the flow records no events
    (baseline, naive ILR); with events recording the generated code must
    call ``call_ret`` at run time so the DRC sees the 'rand' lookup.
    """
    m = inst.mnemonic

    if inst.cc is not None:
        return {
            "kind": "jcc", "ctrl": CTRL_JUMP, "cond": _CC_SRC[inst.cc],
            "lines": [], "loads": [], "stores": [], "target": inst.target,
            "target_var": None,
        }
    if m in ("jmp", "jmp8"):
        return {
            "kind": "jump", "ctrl": CTRL_JUMP, "cond": None, "lines": [],
            "loads": [], "stores": [], "target": inst.target,
            "target_var": None,
        }

    def push_ret():
        if retaddr is None:
            lines = ["ret_ = call_ret(i%d)" % n]
            ret = "ret_"
        else:
            lines = []
            ret = str(retaddr)
        lines += [
            "sp = (regs[4] - 4) & %s" % _M32,
            "regs[4] = sp",
            "wr(sp, %s)" % ret,
        ]
        if randomized:
            lines.append("note_push(sp, %s)" % ret)
        lines += [
            "st.last_store_addr = sp",
            "st.last_retaddr = %s" % ret,
        ]
        return lines

    if m == "call":
        return {
            "kind": "call", "ctrl": CTRL_CALL, "cond": None,
            "lines": push_ret(), "loads": [], "stores": ["sp"],
            "target": inst.target, "target_var": None,
        }
    if m == "ret":
        # The popped value is a control target: NOT run through fixup.
        lines = [
            "sp = regs[4]",
            "tgt = rd(sp)",
            "regs[4] = (sp + 4) & %s" % _M32,
            "st.last_load_addr = sp",
        ]
        return {
            "kind": "ret", "ctrl": CTRL_RET, "cond": None, "lines": lines,
            "loads": ["sp"], "stores": [], "target": None,
            "target_var": "tgt",
        }
    if m in ("calli", "jmpi"):
        if inst.mode == opcodes.MODE_RR:
            lines = ["tgt = regs[%d]" % inst.rm]
            loads = []
        else:
            lines = [
                "addr = (regs[%d] + %d) & %s" % (inst.rm, inst.disp, _M32),
                "tgt = rd(addr)",
                "st.last_load_addr = addr",
            ]
            loads = ["addr"]
        if m == "calli":
            return {
                "kind": "calli", "ctrl": CTRL_CALL, "cond": None,
                "lines": lines + push_ret(), "loads": loads,
                "stores": ["sp"], "target": None, "target_var": "tgt",
            }
        return {
            "kind": "jmpi", "ctrl": CTRL_JUMP, "cond": None, "lines": lines,
            "loads": loads, "stores": [], "target": None, "target_var": "tgt",
        }
    return None


def execute(inst: Instruction, state: MachineState, adapter: ModeAdapter):
    """Execute one instruction; returns ``(kind, target)``.

    ``target`` is the architectural branch target for JUMP/CALL/RET, else 0.
    The caller is responsible for updating ``state.pc`` (so that the cycle
    simulator can interleave translation and security checks) — except for
    register/flag/memory side effects, which happen here.

    May raise :class:`~repro.arch.state.ExitProgram` (EXIT syscall) or
    :class:`ExecutionError`.
    """
    state.icount += 1
    state.last_load_addr = None
    state.last_store_addr = None
    handler = DISPATCH.get(inst.mnemonic)
    if handler is None:
        raise ExecutionError("no semantics for %s" % inst.mnemonic)
    return handler(inst, state, adapter)
