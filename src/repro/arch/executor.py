"""Functional executor for decoded RX86 instructions.

The executor implements instruction *semantics* only.  Everything that
depends on the execution mode (baseline / naive hardware ILR / VCFR /
software emulation) is delegated to a :class:`ModeAdapter`:

* what the sequential fall-through PC is (naive ILR follows the
  randomized fall-through map, the others use ``addr + length``),
* which value a ``call`` pushes as return address (VCFR pushes the
  *randomized* return address, paper §IV-A),
* the §IV-C auto-de-randomization of loads that hit a stack slot holding
  a randomized return address, and the bitmap bookkeeping behind it.

All four execution paths in this repo drive this one executor, which is
what makes the cross-mode equivalence invariant testable.
"""

from __future__ import annotations

from ..isa import opcodes
from ..isa.flags import to_signed32
from ..isa.instruction import Instruction
from ..isa.registers import MASK32
from .state import MachineState

# Control-flow outcome kinds.
CTRL_NONE = 0  # sequential (includes not-taken conditional branches)
CTRL_JUMP = 1  # taken jump (conditional or not, direct or indirect)
CTRL_CALL = 2
CTRL_RET = 3
CTRL_HALT = 4


class ExecutionError(Exception):
    """Raised when a decodable instruction has no defined semantics."""


class ModeAdapter:
    """Mode-specific address-space behaviour.  Base class = no randomization."""

    def fallthrough(self, inst: Instruction) -> int:
        """Architectural PC of the next sequential instruction."""
        return inst.addr + inst.length

    def call_retaddr(self, inst: Instruction) -> int:
        """The value a call at ``inst`` pushes on the stack."""
        return inst.addr + inst.length

    def fixup_load(self, addr: int, value: int) -> int:
        """Filter a 32-bit value loaded from ``addr`` into a register."""
        return value

    def note_store(self, addr: int) -> None:
        """A 32-bit store hit ``addr`` (clears any stale return-addr mark)."""

    def note_retaddr_push(self, addr: int, value: int) -> None:
        """A call pushed return address ``value`` into stack slot ``addr``."""


#: Shared stateless adapter for un-randomized execution.
BASELINE_ADAPTER = ModeAdapter()


def execute(inst: Instruction, state: MachineState, adapter: ModeAdapter):
    """Execute one instruction; returns ``(kind, target)``.

    ``target`` is the architectural branch target for JUMP/CALL/RET, else 0.
    The caller is responsible for updating ``state.pc`` (so that the cycle
    simulator can interleave translation and security checks) — except for
    register/flag/memory side effects, which happen here.

    May raise :class:`~repro.arch.state.ExitProgram` (EXIT syscall) or
    :class:`ExecutionError`.
    """
    state.icount += 1
    state.last_load_addr = None
    state.last_store_addr = None

    m = inst.mnemonic
    regs = state.regs.regs
    mem = state.mem

    # -- moves and stack ----------------------------------------------------

    if m == "movi":
        regs[inst.reg] = inst.imm & MASK32
        return (CTRL_NONE, 0)

    if m == "push":
        slot = state.push(regs[inst.reg])
        adapter.note_store(slot)
        state.last_store_addr = slot
        return (CTRL_NONE, 0)

    if m == "pop":
        value, slot = state.pop()
        regs[inst.reg] = adapter.fixup_load(slot, value)
        state.last_load_addr = slot
        return (CTRL_NONE, 0)

    if m == "nop":
        return (CTRL_NONE, 0)

    if m == "halt":
        return (CTRL_HALT, 0)

    if m == "int":
        state.syscall(inst.imm)
        return (CTRL_NONE, 0)

    if m == "leave":
        # mov esp, ebp ; pop ebp
        regs[4] = regs[5]
        value, slot = state.pop()
        regs[5] = adapter.fixup_load(slot, value)
        state.last_load_addr = slot
        return (CTRL_NONE, 0)

    # -- control transfers -----------------------------------------------------

    if m == "jmp" or m == "jmp8":
        return (CTRL_JUMP, inst.target)

    if inst.cc is not None:
        if state.flags.evaluate(inst.cc):
            return (CTRL_JUMP, inst.target)
        return (CTRL_NONE, 0)

    if m == "call":
        ret = adapter.call_retaddr(inst)
        slot = state.push(ret)
        adapter.note_retaddr_push(slot, ret)
        state.last_store_addr = slot
        state.last_retaddr = ret
        return (CTRL_CALL, inst.target)

    if m == "calli":
        if inst.mode == opcodes.MODE_RR:
            target = regs[inst.rm]
        else:
            addr = (regs[inst.rm] + inst.disp) & MASK32
            target = mem.read_u32(addr)
            state.last_load_addr = addr
        ret = adapter.call_retaddr(inst)
        slot = state.push(ret)
        adapter.note_retaddr_push(slot, ret)
        state.last_store_addr = slot
        state.last_retaddr = ret
        return (CTRL_CALL, target)

    if m == "jmpi":
        if inst.mode == opcodes.MODE_RR:
            target = regs[inst.rm]
        else:
            addr = (regs[inst.rm] + inst.disp) & MASK32
            target = mem.read_u32(addr)
            state.last_load_addr = addr
        return (CTRL_JUMP, target)

    if m == "ret":
        # The popped value is consumed *as a control-flow target*; it is
        # intentionally NOT run through fixup_load — a randomized return
        # address must stay randomized so fetch can translate and police it.
        target, slot = state.pop()
        state.last_load_addr = slot
        return (CTRL_RET, target)

    # -- shifts ---------------------------------------------------------------

    if m in ("shl", "shr", "sar"):
        count = inst.imm & 31
        value = regs[inst.rm]
        if m == "shl":
            result = (value << count) & MASK32
        elif m == "shr":
            result = (value >> count) & MASK32
        else:
            result = (to_signed32(value) >> count) & MASK32
        regs[inst.rm] = result
        state.flags.set_logic(result)
        return (CTRL_NONE, 0)

    # -- lea ----------------------------------------------------------------------

    if m == "lea":
        if inst.mode != opcodes.MODE_RM:
            raise ExecutionError("lea requires the load form")
        regs[inst.reg] = (regs[inst.rm] + inst.disp) & MASK32
        return (CTRL_NONE, 0)

    # -- two-operand ALU / mov ---------------------------------------------------------

    mode = inst.mode
    if mode is None:
        raise ExecutionError("no semantics for %s" % m)

    if mode == opcodes.MODE_RR:
        a = regs[inst.reg]
        b = regs[inst.rm]
    elif mode == opcodes.MODE_RM:
        addr = (regs[inst.rm] + inst.disp) & MASK32
        a = regs[inst.reg]
        b = adapter.fixup_load(addr, mem.read_u32(addr))
        state.last_load_addr = addr
    elif mode == opcodes.MODE_MR:
        addr = (regs[inst.rm] + inst.disp) & MASK32
        b = regs[inst.reg]
        if m == "mov":
            a = 0  # pure store: no read-modify-write
        else:
            a = adapter.fixup_load(addr, mem.read_u32(addr))
            state.last_load_addr = addr
    else:  # MODE_RI
        a = regs[inst.reg]
        b = inst.imm & MASK32

    flags = state.flags
    write_back = True
    if m == "mov":
        result = b
    elif m == "add":
        total = a + b
        result = total & MASK32
        flags.set_add(a, b, total)
    elif m == "sub":
        result = (a - b) & MASK32
        flags.set_sub(a, b)
    elif m == "cmp":
        flags.set_sub(a, b)
        result = a
        write_back = False
    elif m == "test":
        flags.set_logic(a & b)
        result = a
        write_back = False
    elif m == "and":
        result = a & b
        flags.set_logic(result)
    elif m == "or":
        result = a | b
        flags.set_logic(result)
    elif m == "xor":
        result = a ^ b
        flags.set_logic(result)
    elif m == "imul":
        if mode == opcodes.MODE_MR:
            raise ExecutionError("imul has no store form")
        product = to_signed32(a) * to_signed32(b)
        result = product & MASK32
        flags.set_mul(product)
    else:
        raise ExecutionError("no semantics for %s" % m)

    if write_back:
        if mode == opcodes.MODE_MR:
            mem.write_u32(addr, result)
            adapter.note_store(addr)
            state.last_store_addr = addr
        else:
            regs[inst.reg] = result

    return (CTRL_NONE, 0)
