"""DDR-style DRAM timing model (DRAMSim2 stand-in).

Open-page policy over independent banks: an access to the currently-open
row of a bank pays only CAS; a row conflict pays precharge + activate +
CAS (paper §VI-C: "It uses open page policy, and therefore attempts to
schedule accesses to the same pages together to maximize row buffer hits.
The DRAM model tracks individual ranks and banks, and accounts for
pre-charge latencies, CAS and RAS latencies").

Latencies are expressed directly in CPU cycles for simplicity (the paper
core is single-issue at 1.6 GHz; a DDR2/3 part at those timings lands in
the 40–70 CPU-cycle range modelled here).
"""

from __future__ import annotations

from .config import DRAMConfig


class DRAMStats:
    __slots__ = ("accesses", "row_hits", "row_conflicts", "reads", "writes")

    def __init__(self):
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.reads = 0
        self.writes = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DRAM:
    """Bank/row-buffer main-memory model."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        self.stats = DRAMStats()
        self._open_rows = [None] * config.num_banks

    def access(self, addr: int, is_write: bool = False) -> int:
        """Return the latency of one line fill / writeback."""
        cfg = self.config
        row = addr >> cfg.row_bits
        bank = row % cfg.num_banks

        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
            return cfg.controller_overhead + cfg.t_cas
        self.stats.row_conflicts += 1
        self._open_rows[bank] = row
        return cfg.controller_overhead + cfg.t_rp + cfg.t_rcd + cfg.t_cas
