"""Architectural machine state and program-exit signalling."""

from __future__ import annotations

from typing import Optional

from ..isa.flags import Flags
from ..isa.registers import ESP, MASK32, RegisterFile
from ..isa.syscalls import (
    SYS_EMIT,
    SYS_EXIT,
    SYS_ICOUNT,
    SYS_PUTC,
    SYSCALL_VECTOR,
    OutputStream,
    SyscallError,
)
from ..isa.registers import EAX, EBX
from .memory import SparseMemory


class ExitProgram(Exception):
    """Raised by the EXIT syscall to unwind out of the execution loop."""

    def __init__(self, code: int):
        super().__init__("program exited with code %d" % code)
        self.code = code


class MachineState:
    """Registers + flags + memory + output of one executing program.

    ``pc`` is the *architectural* program counter — in randomized space
    when executing a randomized binary (naive ILR / VCFR), in the original
    space otherwise.  The mode adapters own the interpretation.
    """

    __slots__ = (
        "regs", "flags", "mem", "out", "pc", "icount", "exit_code",
        "last_load_addr", "last_store_addr", "last_retaddr",
    )

    def __init__(self, mem: Optional[SparseMemory] = None, stack_top: int = 0):
        self.regs = RegisterFile(stack_pointer=stack_top)
        self.flags = Flags()
        self.mem = mem if mem is not None else SparseMemory()
        self.out = OutputStream()
        self.pc = 0
        self.icount = 0
        self.exit_code: Optional[int] = None
        #: Address of the most recent data load / store (None if the last
        #: instruction had no data access) — consumed by the timing model.
        self.last_load_addr: Optional[int] = None
        self.last_store_addr: Optional[int] = None
        #: Return address pushed by the most recent call (architectural
        #: value) — consumed by the RAS model in the cycle simulator.
        self.last_retaddr: Optional[int] = None

    # -- stack helpers -----------------------------------------------------------

    def push(self, value: int) -> int:
        """Push a 32-bit value; returns the slot address."""
        sp = (self.regs.regs[ESP] - 4) & MASK32
        self.regs.regs[ESP] = sp
        self.mem.write_u32(sp, value)
        return sp

    def pop(self) -> tuple:
        """Pop a 32-bit value; returns ``(value, slot_address)``."""
        sp = self.regs.regs[ESP]
        value = self.mem.read_u32(sp)
        self.regs.regs[ESP] = (sp + 4) & MASK32
        return value, sp

    # -- syscalls ----------------------------------------------------------------

    def syscall(self, vector: int) -> None:
        """Handle ``int vector``; only ``SYSCALL_VECTOR`` (0x80) is defined."""
        if vector != SYSCALL_VECTOR:
            raise SyscallError("unknown interrupt vector 0x%x" % vector)
        num = self.regs.regs[EAX]
        arg = self.regs.regs[EBX]
        if num == SYS_EXIT:
            self.exit_code = arg
            raise ExitProgram(arg)
        if num == SYS_PUTC:
            self.out.putc(arg)
        elif num == SYS_EMIT:
            self.out.emit(arg)
        elif num == SYS_ICOUNT:
            self.regs.regs[EAX] = self.icount & MASK32
        else:
            raise SyscallError("unknown syscall %d" % num)

    # -- comparisons ---------------------------------------------------------------

    def architectural_snapshot(self) -> tuple:
        """Everything the cross-mode equivalence check compares.

        Deliberately excludes ESP-relative garbage and the PC (which lives
        in different address spaces per mode): output streams, exit code
        and the non-stack-pointer register values at exit.
        """
        return (self.out.snapshot(), self.exit_code)
