"""Execution tracing: the simulator's debugging/inspection instrument.

A :class:`Tracer` records a bounded ring of per-instruction events —
architectural PC, fetch PC, mnemonic, control-flow outcome — plus a
branch trace.  It is how one inspects *what the pipeline saw* in each
address space: under VCFR the trace shows the randomized RPC stream next
to the de-randomized UPC stream, which is the clearest demonstration of
the paper's "two program counters" design (Fig. 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from ..isa.instruction import Instruction


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction."""

    seq: int          # retirement index
    arch_pc: int      # randomized-space PC (RPC) under VCFR/naive
    fetch_pc: int     # where the bytes were fetched (UPC under VCFR)
    mnemonic: str
    taken: bool       # control transfer taken?
    target: int       # architectural target when taken, else 0

    def format(self) -> str:
        tag = "->0x%08x" % self.target if self.taken else ""
        return "%6d  RPC=0x%08x  UPC=0x%08x  %-6s %s" % (
            self.seq, self.arch_pc, self.fetch_pc, self.mnemonic, tag,
        )

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "arch_pc": self.arch_pc,
            "fetch_pc": self.fetch_pc,
            "mnemonic": self.mnemonic,
            "taken": self.taken,
            "target": self.target,
        }


class Tracer:
    """Bounded instruction/branch trace collector."""

    def __init__(self, capacity: int = 4096, branches_only: bool = False):
        self.capacity = capacity
        self.branches_only = branches_only
        self.entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self.retired = 0

    def record(self, inst: Instruction, arch_pc: int, fetch_pc: int,
               taken: bool, target: int) -> None:
        self.retired += 1
        if self.branches_only and not inst.is_control:
            return
        self.entries.append(
            TraceEntry(self.retired, arch_pc, fetch_pc, inst.mnemonic,
                       taken, target)
        )

    # -- inspection --------------------------------------------------------

    def tail(self, count: int = 20) -> List[TraceEntry]:
        items = list(self.entries)
        return items[-count:]

    def branch_entries(self) -> List[TraceEntry]:
        return [e for e in self.entries if e.taken]

    def pcs_diverge(self) -> bool:
        """True when any entry fetched from a different space than it
        architected in — i.e. the trace shows VCFR's dual-PC behaviour."""
        return any(e.arch_pc != e.fetch_pc for e in self.entries)

    def format_tail(self, count: int = 20) -> str:
        return "\n".join(entry.format() for entry in self.tail(count))

    def to_jsonl(self, path: str) -> int:
        """Dump the ring's entries as JSONL (one record per retired
        instruction still in the buffer) for offline inspection next to
        a captured event log.  Returns the number of records written."""
        import json

        count = 0
        with open(path, "w") as fh:
            for entry in self.entries:
                fh.write(json.dumps(entry.as_dict(), sort_keys=True) + "\n")
                count += 1
        return count

    def clear(self) -> None:
        self.entries.clear()
        self.retired = 0


def attach_tracer(cpu, capacity: int = 4096,
                  branches_only: bool = False) -> Tracer:
    """Attach a :class:`Tracer` to a :class:`~repro.arch.cpu.CycleCPU`.

    Returns the tracer; the CPU records into it from then on.
    """
    tracer = Tracer(capacity, branches_only)
    cpu.tracer = tracer
    return tracer
