"""Shared last-level memory system for multi-tenant simulation.

The paper's §IV-D system-level story has every protected process keep
its *private* close-to-the-core state (DRC, TLBs, L1s) while the
unified L2 and DRAM are platform resources: RDR table refills go
"through the L2" and therefore contend with every other tenant's
working set.  :class:`SharedMemorySystem` models exactly that — one
:class:`~repro.arch.cache.Cache` L2 backed by one
:class:`~repro.arch.dram.DRAM`, handed out to per-tenant
:class:`~repro.arch.cpu.CycleCPU` instances through
:class:`MemoryPort` views.

Tenants are separate address spaces that may load the *same* image at
the *same* virtual addresses; a naive physically-indexed shared L2
would falsely alias their lines as shared.  Each port therefore adds a
per-tenant physical base (``index << PHYS_BASE_SHIFT``) before the L2:
distinct tags, identical set indexes — real occupancy/conflict
contention with no false sharing.  The offset also separates the
per-tenant RDR table regions, so one tenant's table refills genuinely
evict another tenant's lines without ever *hitting* on them.
"""

from __future__ import annotations

from typing import Optional

from .cache import Cache
from .config import MachineConfig, default_config
from .dram import DRAM

#: Per-tenant physical base stride.  Far above any virtual address the
#: toolchain emits (images, stacks, and RDR tables all live below
#: 2^32), and line-aligned by construction, so adding it never changes
#: a line's set index — only its tag.
PHYS_BASE_SHIFT = 44


class MemoryPort:
    """One tenant's view of the shared L2 + DRAM.

    The port is a drop-in for the private ``l2.access`` next-level
    callable: L1s and the DRC refill path call :meth:`access` with a
    line-aligned virtual byte address, and the port relocates it into
    the tenant's private physical region before the shared L2 sees it.
    """

    __slots__ = ("system", "index", "base", "l2", "dram")

    def __init__(self, system: "SharedMemorySystem", index: int):
        self.system = system
        self.index = index
        self.base = index << PHYS_BASE_SHIFT
        self.l2 = system.l2
        self.dram = system.dram

    def access(self, addr: int, is_write: bool = False) -> int:
        """Access the shared L2 at the tenant-relocated address."""
        return self.l2.access(self.base + addr, is_write)


class SharedMemorySystem:
    """One node's shared memory hierarchy: a unified L2 over DRAM.

    Construct once per simulated node, then hand ``port(i)`` to tenant
    ``i``'s :class:`~repro.arch.cpu.CycleCPU` (its ``memory=``
    argument).  All ports funnel into the same L2 set array and the
    same DRAM row-buffer state, so tenants contend for occupancy and
    memory bandwidth exactly as co-located processes do.
    """

    def __init__(self, config: Optional[MachineConfig] = None):
        cfg = config or default_config()
        self.config = cfg
        self.dram = DRAM(cfg.dram)
        self.l2 = Cache(cfg.l2, "l2", self.dram.access)
        self._ports = {}

    def port(self, index: int) -> MemoryPort:
        """The (cached) memory port for tenant ``index``."""
        if index < 0:
            raise ValueError("tenant index must be non-negative")
        port = self._ports.get(index)
        if port is None:
            port = self._ports[index] = MemoryPort(self, index)
        return port

    def reset_stats(self) -> None:
        """Zero the shared-level counters (contents are preserved)."""
        from .dram import DRAMStats

        self.l2.stats.reset()
        self.dram.stats = DRAMStats()
