"""Process contexts and time-shared execution (paper §IV-D).

"At system level, the main impact is to extend application context to
include the de-randomization/randomization tables."  This module models
that impact: several programs time-share one core under a round-robin
scheduler; a context switch swaps the architectural state *and* the RDR
table context, which costs the DRC its contents (the new process's
translations must refill through the L2) on top of the usual TLB
disturbance.

By default each tenant owns a *private* CycleCPU cache hierarchy all
the way down — switches model flush costs, not cache sharing.  Pass a
:class:`~repro.arch.sharedmem.SharedMemorySystem` as ``shared_memory``
to route every tenant through one genuinely shared L2 + DRAM (the
multi-tenant contention model `repro.fleet` builds on); DRC, TLBs and
L1s stay private either way.

The interesting measurement is DRC cold-start sensitivity: how much of
VCFR's near-baseline IPC survives realistic scheduling quanta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .config import MachineConfig
from .cpu import CycleCPU
from .simstats import SimResult


@dataclass
class ProcessResult:
    """Per-process outcome of a time-shared run."""

    name: str
    result: SimResult
    quanta: int


@dataclass
class SwitchStats:
    """Context-switch accounting."""

    switches: int = 0
    #: fixed kernel cost charged per switch (save/restore + table swap).
    switch_cycles_each: int = 200
    total_switch_cycles: int = 0


@dataclass
class TimeSharedResult:
    processes: List[ProcessResult] = field(default_factory=list)
    switch_stats: SwitchStats = field(default_factory=SwitchStats)
    total_cycles: int = 0

    def by_name(self, name: str) -> ProcessResult:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise KeyError(name)


class TimeSharedCPU:
    """Round-robin time sharing of one core between VCFR processes.

    Each process gets its own :class:`CycleCPU` (its own memory image and
    architectural state — address spaces are per-process).  A switch
    models what handing over the core costs the incoming process: the
    DRC is flushed (its entries belong to the outgoing process's RDR
    tables), the TLBs are flushed (new address space), and the
    predictors are left alone (tagless structures alias across
    processes, which is how real cores behave).  By default nothing
    below the core is shared — every tenant's caches are private; pass
    ``shared_memory`` to put all tenants behind one L2 + DRAM.
    """

    def __init__(
        self,
        programs,  # list of (name, image, flow)
        config: Optional[MachineConfig] = None,
        quantum_instructions: int = 5_000,
        switch_cycles: int = 200,
        on_quantum=None,
        self_switch: bool = True,
        shared_memory=None,
    ):
        """``on_quantum(name, cpu, executed, finished)`` is invoked after
        every scheduling quantum, at an instruction boundary — the hook
        the rotation service and adversary race on (rotating the tenant
        or mutating its flow there is legal).  ``self_switch`` keeps the
        historical behaviour of charging a full context switch even when
        a single tenant has the core to itself (the adversarial
        DRC-cold-start study); pass ``False`` to model a lone tenant
        that simply keeps running.  With more than one live tenant every
        quantum still switches regardless.

        ``shared_memory`` (a
        :class:`~repro.arch.sharedmem.SharedMemorySystem`) gives every
        tenant a port into one shared L2 + DRAM so their working sets
        genuinely contend; ``None`` (the default, and the published
        configuration) keeps each tenant's hierarchy fully private.
        """
        self.shared_memory = shared_memory
        self.cpus = [
            (
                name,
                CycleCPU(
                    image,
                    flow,
                    config,
                    memory=(
                        None
                        if shared_memory is None
                        else shared_memory.port(index)
                    ),
                ),
            )
            for index, (name, image, flow) in enumerate(programs)
        ]
        self.quantum = quantum_instructions
        self.switch_stats = SwitchStats(switch_cycles_each=switch_cycles)
        self.on_quantum = on_quantum
        self.self_switch = self_switch

    def run(self, max_instructions_per_process: int = 200_000) -> TimeSharedResult:
        """Run all processes to completion (or budget), round-robin."""
        if self.shared_memory is not None:
            # Prime every tenant before any executes: a CPU's first
            # run_slice resets its stats objects, and with a shared L2 +
            # DRAM a late first slice would wipe counters other tenants
            # already accumulated.  run_slice(0) resets without running.
            for _name, cpu in self.cpus:
                cpu.run_slice(0)
            self.shared_memory.reset_stats()
        live = {name: True for name, _cpu in self.cpus}
        quanta = {name: 0 for name, _cpu in self.cpus}
        budget = {name: max_instructions_per_process for name, _ in self.cpus}

        while any(live.values()):
            for name, cpu in self.cpus:
                if not live[name]:
                    continue
                if self.self_switch or len(self.cpus) > 1:
                    self._on_switch_in(cpu)
                slice_size = min(self.quantum, budget[name])
                before = cpu.state.icount
                finished = cpu.run_slice(slice_size)
                executed = cpu.state.icount - before
                budget[name] -= executed
                quanta[name] += 1
                if self.on_quantum is not None:
                    self.on_quantum(name, cpu, executed, finished)
                if finished or budget[name] <= 0 or executed == 0:
                    live[name] = False

        # Switch cost is already charged to each cpu.cycle by
        # _on_switch_in; the total is the plain sum of tenant cycles
        # (adding switch_stats.total_switch_cycles again would double
        # count — switch_stats stays as a breakdown, not an addend).
        total_cycles = 0
        out = TimeSharedResult(switch_stats=self.switch_stats)
        for name, cpu in self.cpus:
            final = cpu._result(finished=cpu._finished, warmup=0)
            out.processes.append(
                ProcessResult(name=name, result=final, quanta=quanta[name])
            )
            total_cycles += cpu.cycle
        out.total_cycles = total_cycles
        return out

    def _on_switch_in(self, cpu: CycleCPU) -> None:
        """Model what a context switch costs the incoming process."""
        stats = self.switch_stats
        stats.switches += 1
        stats.total_switch_cycles += stats.switch_cycles_each
        cpu.cycle += stats.switch_cycles_each
        # The DRC held the *outgoing* process's translations: its context
        # (the RDR tables) is swapped, so the cache contents are dead.
        cpu.drc.flush()
        # The decoded block cache needs NO invalidation here: each process
        # has its own CycleCPU (and so its own block cache), and a switch
        # changes neither the process's text image nor its RDR tables —
        # the precomputed per-op metadata stays valid.  Only table swaps
        # (ilr.rerandomize.apply_rerandomization) or code rewrites
        # (CycleCPU.rewrite_code) invalidate blocks.
        # New address space: TLBs flush.  Data/instruction caches keep
        # their contents across the switch (physically tagged); whether
        # tenants actually *share* an L2 depends on construction: by
        # default every tenant owns a private hierarchy (nothing is
        # shared, warm lines only help the same tenant on its next
        # quantum), while with ``shared_memory`` the tenants contend in
        # one L2 and warm RDR-table lines genuinely survive switches.
        cpu.itlb.flush()
        cpu.dtlb.flush()
        cpu._last_fetch_line = -1
        cpu._last_fetch_page = -1


def measure_switch_sensitivity(
    program,
    make_flow_fn,
    config: Optional[MachineConfig] = None,
    quanta=(100_000, 20_000, 5_000, 1_000),
    max_instructions: int = 100_000,
    switch_cycles: int = 200,
):
    """DRC cold-start study: VCFR IPC vs scheduling quantum.

    Runs the same program alone but with forced periodic context switches
    (self-switching: the adversarial case where every quantum lands on a
    cold DRC).  ``switch_cycles`` is the fixed kernel cost charged per
    switch; the default matches the published curves.  Returns
    {quantum: SimResult}.
    """
    results = {}
    for quantum in quanta:
        cpu = TimeSharedCPU(
            [("p", program.vcfr_image, make_flow_fn("vcfr", program))],
            config=config,
            quantum_instructions=quantum,
            switch_cycles=switch_cycles,
        )
        shared = cpu.run(max_instructions_per_process=max_instructions)
        results[quantum] = shared.by_name("p").result
    return results
