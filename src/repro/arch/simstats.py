"""Result object of one cycle-level simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.syscalls import OutputStream
from .power import EnergyBreakdown


def ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with a uniform zero-denominator policy.

    Every derived rate in the simulator (IPC, miss rates, speedups,
    normalized IPC) is a ratio whose denominator can legitimately be
    zero on a degenerate run; callers use this instead of hand-rolled
    ``x / y if y else ...`` guards with inconsistent defaults.
    """
    return numerator / denominator if denominator else default


def miss_rate(stats: Dict[str, int],
              misses: str = "misses",
              accesses: str = "accesses") -> float:
    """Miss rate from a counter-snapshot dict, zero-guarded.

    Works on any ``{"accesses": N, "misses": M}``-shaped dict (the
    :class:`~repro.arch.cache.CacheStats` snapshots stored on
    :class:`SimResult`); alternate key names cover TLB/DRC-style dicts.

    An *empty* dict means "this structure never ran" and yields 0.0
    (e.g. a default-constructed :class:`SimResult`).  A non-empty dict
    that lacks either key is a caller bug — a misspelled key used to
    silently read as a perfect 0.0 miss rate, masking miscounted
    TLB/DRC-style dicts — and raises ``KeyError`` instead.
    """
    if not stats:
        return 0.0
    if misses not in stats or accesses not in stats:
        raise KeyError(
            "miss_rate: stats dict has keys %s, expected %r and %r"
            % (sorted(stats), misses, accesses)
        )
    return ratio(stats[misses], stats[accesses])


@dataclass(frozen=True)
class Checkpoint:
    """One periodic progress sample of a running simulation.

    Rates are *instantaneous* — computed over the window since the
    previous checkpoint — so a sequence of checkpoints is an
    IPC/miss-rate-over-time curve, not a running average.
    """

    #: retired instructions at sample time (cumulative, post-warmup).
    instructions: int
    #: simulated cycles at sample time (cumulative, post-warmup).
    cycles: int
    #: instantaneous IPC over the window since the previous checkpoint.
    ipc: float
    #: instantaneous IL1 miss rate over the window.
    il1_miss_rate: float
    #: instantaneous DRC miss rate over the window (0.0 outside VCFR).
    drc_miss_rate: float
    #: host wall-clock seconds since the run started.
    host_seconds: float

    def as_dict(self) -> dict:
        """Lossless JSON form: ``from_dict(as_dict())`` is an identity.

        Rates are serialized at full float precision (Python's JSON
        repr round-trips doubles exactly).  Rounding here used to make
        a cache-hit :meth:`SimResult.from_dict` differ from the fresh
        run it was supposed to be bit-identical to — the sweep engine's
        merged-results contract; display-side rounding belongs to event
        emission and report formatting, not the serialization.
        """
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "il1_miss_rate": self.il1_miss_rate,
            "drc_miss_rate": self.drc_miss_rate,
            "host_seconds": self.host_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        return cls(
            instructions=data["instructions"],
            cycles=data["cycles"],
            ipc=data["ipc"],
            il1_miss_rate=data["il1_miss_rate"],
            drc_miss_rate=data["drc_miss_rate"],
            host_seconds=data.get("host_seconds", 0.0),
        )


@dataclass
class SimResult:
    """Timing + activity + architectural outcome of one run."""

    mode: str
    cycles: int = 0
    instructions: int = 0
    #: instructions executed before measurement started (cache warmup).
    warmup_instructions: int = 0
    exit_code: Optional[int] = None
    finished: bool = False  # program terminated (vs. budget exhausted)
    output: Optional[OutputStream] = None

    # Memory hierarchy.
    il1: Dict[str, int] = field(default_factory=dict)
    dl1: Dict[str, int] = field(default_factory=dict)
    l2: Dict[str, int] = field(default_factory=dict)
    itlb_misses: int = 0
    dtlb_misses: int = 0
    dram_accesses: int = 0
    dram_row_hit_rate: float = 0.0

    # Branch prediction.
    cond_branches: int = 0
    cond_mispredicts: int = 0
    ras_mispredicts: int = 0
    indirect_mispredicts: int = 0

    # DRC.
    drc_lookups: int = 0
    drc_misses: int = 0
    drc_bitmap_probes: int = 0

    # Power.
    energy: Optional[EnergyBreakdown] = None

    #: periodic progress samples (empty unless checkpointing was enabled).
    checkpoints: List[Checkpoint] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return ratio(self.instructions, self.cycles)

    @property
    def il1_miss_rate(self) -> float:
        return miss_rate(self.il1)

    @property
    def dl1_miss_rate(self) -> float:
        return miss_rate(self.dl1)

    @property
    def l2_miss_rate(self) -> float:
        return miss_rate(self.l2)

    @property
    def l2_pressure(self) -> int:
        """Read requests arriving at the L2 from the L1s (paper Fig. 3)."""
        return self.il1.get("demand_reads_to_next", 0) + self.il1.get(
            "prefetches", 0
        ) + self.dl1.get("demand_reads_to_next", 0)

    @property
    def il1_prefetch_waste_rate(self) -> float:
        used = self.il1.get("prefetch_used", 0)
        wasted = self.il1.get("prefetch_wasted", 0)
        return ratio(wasted, used + wasted)

    @property
    def drc_miss_rate(self) -> float:
        return ratio(self.drc_misses, self.drc_lookups)

    @property
    def drc_power_overhead_percent(self) -> float:
        return self.energy.drc_overhead_percent if self.energy else 0.0

    # -- serialization -----------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-serializable form, exact for every field (counters are
        integers, rates round-trip at full float precision).

        Together with :meth:`from_dict` this is the round-trip used by
        the on-disk result cache and the parallel sweep workers, so any
        new field added to :class:`SimResult` must be representable
        here — and ``from_dict(as_dict())`` must stay bit-identical
        (the qa oracle checks this on every fuzzed run).
        """
        output = None
        if self.output is not None:
            output = {
                "chars": bytes(self.output.chars).decode("latin-1"),
                "words": list(self.output.words),
            }
        return {
            "mode": self.mode,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "exit_code": self.exit_code,
            "finished": self.finished,
            "output": output,
            "il1": dict(self.il1),
            "dl1": dict(self.dl1),
            "l2": dict(self.l2),
            "itlb_misses": self.itlb_misses,
            "dtlb_misses": self.dtlb_misses,
            "dram_accesses": self.dram_accesses,
            "dram_row_hit_rate": self.dram_row_hit_rate,
            "cond_branches": self.cond_branches,
            "cond_mispredicts": self.cond_mispredicts,
            "ras_mispredicts": self.ras_mispredicts,
            "indirect_mispredicts": self.indirect_mispredicts,
            "drc_lookups": self.drc_lookups,
            "drc_misses": self.drc_misses,
            "drc_bitmap_probes": self.drc_bitmap_probes,
            "energy": (
                dict(self.energy.by_structure) if self.energy else None
            ),
            "checkpoints": [cp.as_dict() for cp in self.checkpoints],
        }

    #: Alias so callers used to the common ``to_dict`` spelling (and the
    #: fast-path acceptance harness) get the same serialization.
    to_dict = as_dict

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        output = None
        if data.get("output") is not None:
            output = OutputStream(
                chars=bytearray(data["output"]["chars"], "latin-1"),
                words=list(data["output"]["words"]),
            )
        energy = None
        if data.get("energy") is not None:
            energy = EnergyBreakdown(by_structure=dict(data["energy"]))
        return cls(
            mode=data["mode"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            warmup_instructions=data.get("warmup_instructions", 0),
            exit_code=data.get("exit_code"),
            finished=data.get("finished", False),
            output=output,
            il1=dict(data.get("il1", {})),
            dl1=dict(data.get("dl1", {})),
            l2=dict(data.get("l2", {})),
            itlb_misses=data.get("itlb_misses", 0),
            dtlb_misses=data.get("dtlb_misses", 0),
            dram_accesses=data.get("dram_accesses", 0),
            dram_row_hit_rate=data.get("dram_row_hit_rate", 0.0),
            cond_branches=data.get("cond_branches", 0),
            cond_mispredicts=data.get("cond_mispredicts", 0),
            ras_mispredicts=data.get("ras_mispredicts", 0),
            indirect_mispredicts=data.get("indirect_mispredicts", 0),
            drc_lookups=data.get("drc_lookups", 0),
            drc_misses=data.get("drc_misses", 0),
            drc_bitmap_probes=data.get("drc_bitmap_probes", 0),
            energy=energy,
            checkpoints=[
                Checkpoint.from_dict(cp)
                for cp in data.get("checkpoints", [])
            ],
        )

    def summary(self) -> str:
        lines = [
            "mode=%s instructions=%d cycles=%d ipc=%.4f"
            % (self.mode, self.instructions, self.cycles, self.ipc),
            "il1 miss=%.4f dl1 miss=%.4f l2 miss=%.4f l2 pressure=%d"
            % (self.il1_miss_rate, self.dl1_miss_rate, self.l2_miss_rate,
               self.l2_pressure),
            "prefetch waste=%.3f cond mispredict=%d/%d"
            % (self.il1_prefetch_waste_rate, self.cond_mispredicts,
               self.cond_branches),
        ]
        if self.drc_lookups:
            lines.append(
                "drc lookups=%d miss rate=%.4f power overhead=%.4f%%"
                % (self.drc_lookups, self.drc_miss_rate,
                   self.drc_power_overhead_percent)
            )
        if self.checkpoints:
            first, last = self.checkpoints[0], self.checkpoints[-1]
            lines.append(
                "checkpoints=%d ipc %0.4f -> %0.4f"
                % (len(self.checkpoints), first.ipc, last.ipc)
            )
        return "\n".join(lines)
