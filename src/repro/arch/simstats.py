"""Result object of one cycle-level simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.syscalls import OutputStream
from .power import EnergyBreakdown


@dataclass
class SimResult:
    """Timing + activity + architectural outcome of one run."""

    mode: str
    cycles: int = 0
    instructions: int = 0
    #: instructions executed before measurement started (cache warmup).
    warmup_instructions: int = 0
    exit_code: Optional[int] = None
    finished: bool = False  # program terminated (vs. budget exhausted)
    output: Optional[OutputStream] = None

    # Memory hierarchy.
    il1: Dict[str, int] = field(default_factory=dict)
    dl1: Dict[str, int] = field(default_factory=dict)
    l2: Dict[str, int] = field(default_factory=dict)
    itlb_misses: int = 0
    dtlb_misses: int = 0
    dram_accesses: int = 0
    dram_row_hit_rate: float = 0.0

    # Branch prediction.
    cond_branches: int = 0
    cond_mispredicts: int = 0
    ras_mispredicts: int = 0
    indirect_mispredicts: int = 0

    # DRC.
    drc_lookups: int = 0
    drc_misses: int = 0
    drc_bitmap_probes: int = 0

    # Power.
    energy: Optional[EnergyBreakdown] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def il1_miss_rate(self) -> float:
        acc = self.il1.get("accesses", 0)
        return self.il1.get("misses", 0) / acc if acc else 0.0

    @property
    def dl1_miss_rate(self) -> float:
        acc = self.dl1.get("accesses", 0)
        return self.dl1.get("misses", 0) / acc if acc else 0.0

    @property
    def l2_miss_rate(self) -> float:
        acc = self.l2.get("accesses", 0)
        return self.l2.get("misses", 0) / acc if acc else 0.0

    @property
    def l2_pressure(self) -> int:
        """Read requests arriving at the L2 from the L1s (paper Fig. 3)."""
        return self.il1.get("demand_reads_to_next", 0) + self.il1.get(
            "prefetches", 0
        ) + self.dl1.get("demand_reads_to_next", 0)

    @property
    def il1_prefetch_waste_rate(self) -> float:
        used = self.il1.get("prefetch_used", 0)
        wasted = self.il1.get("prefetch_wasted", 0)
        total = used + wasted
        return wasted / total if total else 0.0

    @property
    def drc_miss_rate(self) -> float:
        return self.drc_misses / self.drc_lookups if self.drc_lookups else 0.0

    @property
    def drc_power_overhead_percent(self) -> float:
        return self.energy.drc_overhead_percent if self.energy else 0.0

    def summary(self) -> str:
        lines = [
            "mode=%s instructions=%d cycles=%d ipc=%.4f"
            % (self.mode, self.instructions, self.cycles, self.ipc),
            "il1 miss=%.4f dl1 miss=%.4f l2 miss=%.4f l2 pressure=%d"
            % (self.il1_miss_rate, self.dl1_miss_rate, self.l2_miss_rate,
               self.l2_pressure),
            "prefetch waste=%.3f cond mispredict=%d/%d"
            % (self.il1_prefetch_waste_rate, self.cond_mispredicts,
               self.cond_branches),
        ]
        if self.drc_lookups:
            lines.append(
                "drc lookups=%d miss rate=%.4f power overhead=%.4f%%"
                % (self.drc_lookups, self.drc_miss_rate,
                   self.drc_power_overhead_percent)
            )
        return "\n".join(lines)
