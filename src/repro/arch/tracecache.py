"""Superblock trace tier: hot block sequences compiled to Python.

The block fast path (:mod:`repro.arch.blockcache`) removed per-
instruction decode and translation, but still pays, on every retired
instruction, the op-tuple unpack, the dynamic page/line compares, the
handler indirection, and per-block dict dispatch.  This module removes
those for steady-state code with the standard Python-JIT idiom: it
profiles block-to-block edges in ``_execute_loop_fast``, links hot
blocks across their observed (predicted) branch directions into
*superblocks*, and compiles each one into a specialized Python function
via source generation + ``exec``.

The generated function is straight-line code with the instruction
fields baked in as literals (templates live next to the handlers in
:mod:`repro.arch.executor`): no tuple unpack, no dispatch, flag algebra
and stack traffic inlined, fetch-page/line checks elided wherever the
previous instruction in the trace pins their value, and the flow traits
(baseline vs. randomized, DRC event recording on/off) specialized out
at compile time.  A *guard* at every intra-trace branch whose outcome
is dynamic (conditional direction, indirect/return target) compares the
actual next fetch PC against the recorded one and side-exits to the
block path on mismatch — after charging the instruction's full cycle
cost, so a bailout is correctness-neutral.  Direct transfers need no
guard: between explicit invalidations, ``flow.transfer`` of a constant
target is a pure function of the randomization tables.

Correctness contract
--------------------

* Cycle- and statistics-exact against the reference interpreter, by the
  same differential contract as the block tier
  (tests/test_fastpath_equivalence.py, the ``repro.qa`` oracle, and a
  hypothesis property suite drive all tiers and compare bit-for-bit).
* Every baked-in value is a pure function of the program image and the
  flow's randomization tables.  Both are static between explicit
  invalidations: :meth:`CycleCPU.rewrite_code` and
  :meth:`CycleCPU.invalidate_blocks` flush traces exactly like blocks
  (re-randomization epochs go through ``invalidate_blocks()``), and any
  invalidation also aborts an in-progress recording.
* A trace is only entered when it fits the remaining instruction
  budget whole (looping traces re-check per iteration), so checkpoint
  and slice boundaries clip identically to the block path.
* Block-cache *capacity* flushes do not touch traces: a compiled trace
  holds strong references to its member :class:`Block` objects, whose
  precomputed fields stay valid until an explicit invalidation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .blockcache import block_overlaps
from .executor import inline_exec_src, inline_term_src
from .state import ExitProgram

#: Hotness-counter table bound: profiling state, not simulation state.
_COUNTS_CAP = 65536

#: Mnemonics with an :func:`inline_term_src` control plan.
_CONTROL_MNEMONICS = frozenset(
    ("jmp", "jmp8", "call", "calli", "jmpi", "ret")
)


class TraceCompileError(Exception):
    """A recorded trace cannot be compiled (the anchor is blacklisted
    and execution stays on the block path — never a correctness event)."""


class Trace:
    """One compiled superblock.

    ``fn(cycle, icount, budget, last_page, last_line, tracer, out)``
    returns ``(status, next_fetch_pc)`` — status 1 means the program
    finished.  Counter writeback happens through ``out`` (a 4-slot
    list: cycle, icount, last_page, last_line) in a ``finally``, so
    faults propagate with counters settled, exactly like the block
    loop's own ``finally``.
    """

    __slots__ = ("anchor", "fn", "n", "nblocks", "looping", "entries",
                 "blocks", "lo", "hi")

    def __init__(self, anchor, fn, n, nblocks, looping, blocks, lo, hi):
        self.anchor = anchor
        self.fn = fn
        self.n = n
        self.nblocks = nblocks
        self.looping = looping
        self.entries = 0
        self.blocks = blocks
        self.lo = lo
        self.hi = hi


class _Writer:
    """Tiny indented-source accumulator."""

    __slots__ = ("lines", "indent")

    def __init__(self, indent: int = 0):
        self.lines: List[str] = []
        self.indent = indent

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def extend(self, lines, extra: int = 0) -> None:
        pad = "    " * (self.indent + extra)
        for text in lines:
            self.lines.append(pad + text)


class TraceCache:
    """Bounded cache of compiled superblocks, plus the edge profiler
    and trace recorder that feed it.

    Constructed against a live :class:`~repro.arch.cpu.CycleCPU`; every
    closed-over binding (state, flow, cache access methods, latencies,
    the burst/event traits) is fixed for that CPU's lifetime, which is
    what makes compile-time trait specialization sound.
    """

    __slots__ = (
        "hot_threshold", "max_blocks", "max_insts", "capacity",
        "traces", "builds", "flushes", "invalidations", "aborts",
        "compile_failures", "_bail", "_counts", "_failed",
        "_entries_retired", "_rec", "_rec_insts", "_rec_expect",
        "_flow", "_consts_base", "_il1_latency", "_dl1_latency",
        "_load_use", "_prefetch", "_burst", "_record_events",
        "_randomized", "_il1_mask", "_il1_shift", "_dl1_mask",
        "_dl1_shift",
    )

    def __init__(self, cpu):
        cfg = cpu.config
        self.hot_threshold = max(1, cfg.trace_hot_threshold)
        self.max_blocks = max(1, cfg.trace_max_blocks)
        self.max_insts = max(1, cfg.trace_max_insts)
        self.capacity = max(1, cfg.trace_cache_capacity)
        #: anchor fetch PC -> :class:`Trace` (the fast loop indexes this
        #: dict directly).
        self.traces: Dict[int, Trace] = {}
        self.builds = 0
        self.flushes = 0
        self.invalidations = 0
        #: recordings dropped (tail interruption, unexpected successor).
        self.aborts = 0
        self.compile_failures = 0
        #: shared guard side-exit counter cell (closed over by every
        #: generated function).
        self._bail = [0]
        self._counts: Dict[int, int] = {}
        self._failed = set()
        self._entries_retired = 0
        self._rec: Optional[List[Tuple[object, int]]] = None
        self._rec_insts = 0
        self._rec_expect = 0

        flow = cpu.flow
        state = cpu.state
        self._flow = flow
        self._il1_latency = cfg.il1.latency
        self._dl1_latency = cfg.dl1.latency
        self._load_use = cfg.load_use_stall
        self._prefetch = cfg.prefetch_il1
        self._burst = cpu._burst_track
        self._record_events = bool(getattr(flow, "record_events", False))
        self._randomized = bool(getattr(flow, "randomized", False))
        # MRU-hit inlining folds the set index into generated source;
        # only sound for power-of-two set counts (mask >= 0).  A flush
        # clears the captured ``_sets`` lists in place (see
        # ``Cache.flush``), so the closures never go stale.
        self._il1_mask = cpu.il1._set_mask
        self._il1_shift = cpu.il1.line_shift
        self._dl1_mask = cpu.dl1._set_mask
        self._dl1_shift = cpu.dl1.line_shift
        # Order must match the unpack in _HEADER below.
        self._consts_base = (
            state, state.regs.regs, state.flags, cpu.mem.read_u32,
            cpu.mem.write_u32, state.syscall, flow, flow.events,
            flow.fixup_load, flow.note_store, flow.note_retaddr_push,
            flow.call_retaddr, flow.transfer, flow.sequential,
            cpu.itlb.access, cpu.il1.access, cpu.il1.prefetch,
            cpu.dtlb.access, cpu.dl1.access, cpu._branch_stall,
            cpu._drc_stall, cpu._note_fetch_fill,
            cpu.il1._sets, cpu.il1.stats, cpu.dl1._sets, cpu.dl1.stats,
            cpu.branch.conditional, cpu.branch.direct,
            cpu.branch.indirect, cpu.branch.ret,
            self._bail, ExitProgram,
        )

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def bailouts(self) -> int:
        """Total guard side-exits across all compiled traces."""
        return self._bail[0]

    # -- edge profiling / recording ---------------------------------------

    def on_block(self, block, next_fetch_pc: int) -> None:
        """Fast-loop hook: ``block`` just retired and control continues
        at ``next_fetch_pc``.  Drives hotness counting and, once a
        leader is hot, records the observed block sequence until it
        closes (back-edge to the anchor, revisit of a member, or the
        length caps) and compiles it."""
        rec = self._rec
        if rec is not None:
            if block.leader != self._rec_expect:
                # The path between recorder steps ran through the
                # reference loop (budget tail) or took an unexpected
                # edge; the recording is not a real superblock.
                self.aborts += 1
                self._rec = None
                return
            rec.append((block, next_fetch_pc))
            self._rec_insts += block.n
            self._advance_recording(next_fetch_pc)
            return
        counts = self._counts
        leader = block.leader
        c = counts.get(leader, 0) + 1
        if c < self.hot_threshold:
            counts[leader] = c
            return
        counts[leader] = 0
        if leader in self.traces or leader in self._failed:
            return
        if len(counts) > _COUNTS_CAP:
            counts.clear()
        self._rec = [(block, next_fetch_pc)]
        self._rec_insts = block.n
        self._advance_recording(next_fetch_pc)

    def _advance_recording(self, next_fetch_pc: int) -> None:
        rec = self._rec
        if next_fetch_pc == rec[0][0].leader:
            self._compile(rec, looping=True)
            self._rec = None
            return
        if (len(rec) >= self.max_blocks
                or self._rec_insts >= self.max_insts):
            self._compile(rec, looping=False)
            self._rec = None
            return
        for member, _ in rec:
            if member.leader == next_fetch_pc:
                # Inner cycle that does not pass through the anchor:
                # close here; the revisited leader can anchor its own
                # trace.
                self._compile(rec, looping=False)
                self._rec = None
                return
        self._rec_expect = next_fetch_pc

    # -- compilation -------------------------------------------------------

    def _compile(self, rec, looping: bool) -> None:
        anchor = rec[0][0].leader
        self.builds += 1
        try:
            trace = self._generate(rec, looping)
        except Exception:
            # Never fatal: the anchor is blacklisted and the block path
            # keeps executing it.  Differential suites assert zero
            # compile failures on the supported instruction set.
            self.compile_failures += 1
            self._failed.add(anchor)
            return
        if len(self.traces) >= self.capacity:
            self._entries_retired += sum(
                t.entries for t in self.traces.values()
            )
            self.traces.clear()
            self.flushes += 1
        self.traces[anchor] = trace

    def _generate(self, rec, looping: bool) -> Trace:
        anchor = rec[0][0].leader
        gen = _TraceGen(self, rec, looping)
        src, consts = gen.build()
        namespace: Dict[str, object] = {"__builtins__": {}}
        exec(compile(src, "<trace:0x%x>" % anchor, "exec"), namespace)
        fn = namespace["__make"](consts)
        blocks = tuple(b for b, _ in rec)
        return Trace(
            anchor, fn, sum(b.n for b in blocks), len(blocks), looping,
            blocks, min(b.lo for b in blocks), max(b.hi for b in blocks),
        )

    # -- lookup ------------------------------------------------------------

    def get(self, fetch_pc: int) -> Optional[Trace]:
        return self.traces.get(fetch_pc)

    # -- invalidation ------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop everything: table swap / re-randomization epoch.  The
        blacklist goes too — a new epoch's tables may compile fine."""
        if self.traces:
            self.invalidations += 1
            self._entries_retired += sum(
                t.entries for t in self.traces.values()
            )
        self.traces.clear()
        self._failed.clear()
        self._counts.clear()
        if self._rec is not None:
            self.aborts += 1
            self._rec = None

    def invalidate_range(self, start: int, size: int) -> None:
        """Drop traces with a member block overlapping
        ``[start, start + size)`` in fetch space (code rewrite).  Member
        overlap uses the same exact per-instruction spans as
        :meth:`BlockCache.invalidate_range`, so the two tiers always
        agree on what a write invalidated."""
        if size <= 0:
            return
        end = start + size
        stale = [
            pc for pc, trace in self.traces.items()
            if trace.lo < end and trace.hi > start
            and any(block_overlaps(b, start, end) for b in trace.blocks)
        ]
        for pc in stale:
            self._entries_retired += self.traces[pc].entries
            del self.traces[pc]
        if stale:
            self.invalidations += 1
        # Conservatively retry blacklisted anchors after any rewrite.
        self._failed.clear()
        if self._rec is not None:
            self.aborts += 1
            self._rec = None

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Host-side counters (not part of simulated statistics)."""
        live = sum(t.entries for t in self.traces.values())
        return {
            "traces": len(self.traces),
            "builds": self.builds,
            "flushes": self.flushes,
            "invalidations": self.invalidations,
            "aborts": self.aborts,
            "compile_failures": self.compile_failures,
            "bailouts": self._bail[0],
            "entries": self._entries_retired + live,
            "live_entries": live,
        }


# -- source generation -----------------------------------------------------

_HEADER = """\
def __make(C):
    (st, regs, flags, rd, wr, syscall, flow, events, fixup, note_store,
     note_push, call_ret, transfer, sequential, itlb, il1, il1p, dtlb,
     dl1, bstall, drc, nfill, il1s, il1st, dl1s, dl1st,
     bcond, bdir, bind, bret, bail, X, I, H) = C
"""


class _TraceGen:
    """Generates the ``__make``/``__trace`` source for one recording."""

    def __init__(self, cache: TraceCache, rec, looping: bool):
        self.cache = cache
        self.rec = rec
        self.looping = looping
        self.anchor = rec[0][0].leader
        self.flow = cache._flow
        self.randomized = cache._randomized
        self.record_events = cache._record_events
        self.burst = cache._burst
        self.prefetch = cache._prefetch
        self.il1_latency = cache._il1_latency
        self.dl1_latency = cache._dl1_latency
        self.load_use = cache._load_use
        #: inline the cache MRU-hit path only when the set index is a
        #: foldable mask (power-of-two set count).
        self.il1_mask = cache._il1_mask
        self.il1_shift = cache._il1_shift
        self.il1_inline = cache._il1_mask >= 0
        self.dl1_mask = cache._dl1_mask
        self.dl1_shift = cache._dl1_shift
        self.dl1_inline = cache._dl1_mask >= 0
        #: transfer/call_retaddr of a constant are foldable exactly when
        #: calling them at compile time is side-effect-free.
        self.fold_transfer = not cache._record_events
        self.identity_transfer = not self.randomized
        self.insts: List[object] = []
        self.handlers: Dict[int, object] = {}
        #: statically-tracked fetch page/line ([page, line], None=unknown).
        self.know: List[Optional[int]] = [None, None]

    # -- folding helpers ---------------------------------------------------

    def _fold(self, fn, *args):
        """Call a pure-between-flushes flow method at compile time,
        keeping the event list exactly as it was.  Returns None when the
        call raises (the generated code must then make the call at run
        time so the fault surfaces at the right instruction)."""
        ev = self.flow.events
        mark = len(ev)
        try:
            return fn(*args)
        except Exception:
            return None
        finally:
            del ev[mark:]

    def _fold_events(self, fn, *args):
        """Like :meth:`_fold` but captures the DRC events the call
        appended: ``(value, events_delta)``.  Event emission is a pure
        function of the call's (constant) arguments and the RDR tables,
        both static between flushes, so the delta can be replayed as
        literal appends in the generated code.  ``(None, None)`` when
        the call raises."""
        ev = self.flow.events
        mark = len(ev)
        try:
            value = fn(*args)
        except Exception:
            del ev[mark:]
            return None, None
        delta = tuple(ev[mark:])
        del ev[mark:]
        return value, delta

    def _static_nfp(self, target: int):
        """``(setup_lines, expr, value)`` producing the post-transfer
        fetch PC for a compile-time-constant architectural target.
        ``value`` is the folded result, or None when only run-time
        evaluation is exact (the transfer faults at compile time)."""
        if self.identity_transfer:
            return [], str(target), target
        if self.fold_transfer:
            value = self._fold(self.flow.transfer, target)
            if value is not None:
                return [], str(value), value
        else:
            # Event-recording flow: fold the value and replay the DRC
            # events the transfer queues as literal appends, in place.
            value, delta = self._fold_events(self.flow.transfer, target)
            if value is not None:
                setup = ["events.append(%r)" % (e,) for e in delta]
                return setup, str(value), value
        return ["nfp = transfer(%d)" % target], "nfp", None

    # -- emission ----------------------------------------------------------

    def build(self):
        n_total = sum(b.n for b, _ in self.rec)
        body = _Writer(indent=2)
        body.line("try:")
        inner = _Writer(indent=3)
        if self.looping:
            inner.line("while 1:")
            inner.indent = 4
            inner.line("if icount + %d > budget:" % n_total)
            inner.line("    return (0, %d)" % self.anchor)

        seq_index = 0
        last = len(self.rec) - 1
        for bi, (block, expected) in enumerate(self.rec):
            self.know = ([None, None] if (self.looping and bi == 0)
                         else self.know)
            ops = list(block.interior) + [block.term]
            for op in ops[:-1]:
                self._emit_interior(inner, op, seq_index)
                seq_index += 1
            self._emit_terminal(
                inner, ops[-1], seq_index, expected, final=(bi == last)
            )
            seq_index += 1

        src_lines = [_HEADER]
        for n in range(len(self.insts)):
            src_lines.append("    i%d = I[%d]" % (n, n))
        for n in sorted(self.handlers):
            src_lines.append("    h%d = H[%d]" % (n, n))
        src_lines.append(
            "    def __trace(cycle, icount, budget, last_page, "
            "last_line, tracer, out):"
        )
        src_lines.extend(body.lines)
        src_lines.extend(inner.lines)
        src_lines.append("        finally:")
        src_lines.append("            out[0] = cycle")
        src_lines.append("            out[1] = icount")
        src_lines.append("            out[2] = last_page")
        src_lines.append("            out[3] = last_line")
        src_lines.append("    return __trace")
        src = "\n".join(src_lines) + "\n"
        consts = self.cache._consts_base + (
            tuple(self.insts), dict(self.handlers),
        )
        return src, consts

    def _register(self, op, n: int, with_handler: bool = False) -> None:
        assert len(self.insts) == n
        self.insts.append(op[1])
        if with_handler:
            self.handlers[n] = op[0]

    # per-op fetch-side lines -----------------------------------------

    def _fetch_lines(self, op):
        """Page/line check lines with static elision via ``know``."""
        (_h, _inst, fpc, _arch, _extra, page, line, pf1, cross, addr2,
         line2, pf2, _seq, _touch, _is_int) = op
        lines: List[str] = []
        know = self.know
        if know[0] != page:
            if know[0] is None:
                lines.append("if %d != last_page:" % page)
                lines.append("    last_page = %d" % page)
                lines.append("    stall += itlb(%d)" % fpc)
            else:
                lines.append("last_page = %d" % page)
                lines.append("stall += itlb(%d)" % fpc)
        know[0] = page

        def il1_body(pad, fill_addr, new_line, pf):
            # The MRU-hit case of ``Cache.access`` only bumps stats and
            # returns the base latency (zero marginal stall), so it is
            # inlined here; anything else (non-MRU hit, miss) falls back
            # to the real method, which does its own accounting.
            out = [pad + "last_line = %d" % new_line]
            if self.il1_inline:
                out += [
                    pad + "w_ = il1s[%d]" % (new_line & self.il1_mask),
                    pad + "e_ = w_[-1] if w_ else None",
                    pad + "if e_ is not None and e_[0] == %d:" % new_line,
                    pad + "    il1st.accesses += 1",
                    pad + "    if e_[2] and not e_[3]:",
                    pad + "        il1st.prefetch_used += 1",
                    pad + "    e_[3] = True",
                ]
                if self.burst:
                    out.append(pad + "    nfill(False, %d)" % fpc)
                out += [
                    pad + "else:",
                    pad + "    lat = il1(%d, False)" % fill_addr,
                    pad + "    stall += lat - %d" % self.il1_latency,
                ]
                if self.burst:
                    out.append(pad + "    nfill(lat > %d, %d)"
                               % (self.il1_latency, fpc))
            else:
                out += [
                    pad + "lat = il1(%d, False)" % fill_addr,
                    pad + "stall += lat - %d" % self.il1_latency,
                ]
                if self.burst:
                    out.append(pad + "nfill(lat > %d, %d)"
                               % (self.il1_latency, fpc))
            if self.prefetch:
                if self.il1_inline:
                    # ``Cache.prefetch`` on a hit only bumps
                    # prefetch_hits (no LRU reorder); scan the ways
                    # inline, fall back to the method on a real fill.
                    pline = pf >> self.il1_shift
                    out += [
                        pad + "pw_ = il1s[%d]" % (pline & self.il1_mask),
                        pad + "for pe_ in pw_:",
                        pad + "    if pe_[0] == %d:" % pline,
                        pad + "        il1st.prefetch_hits += 1",
                        pad + "        break",
                        pad + "else:",
                        pad + "    il1p(%d)" % pf,
                    ]
                else:
                    out.append(pad + "il1p(%d)" % pf)
            return out

        if know[1] != line:
            if know[1] is None:
                lines.append("if %d != last_line:" % line)
                lines += il1_body("    ", fpc, line, pf1)
            else:
                lines += il1_body("", fpc, line, pf1)
        know[1] = line
        if cross:
            # line2 != line by construction and line is now pinned, so
            # the second-line probe is statically unconditional.
            lines += il1_body("", addr2, line2, pf2)
            know[1] = line2
        return lines

    def _stall_lines(self, loads, stores):
        lines = []
        load_const = self.load_use - self.dl1_latency
        if not self.dl1_inline:
            for var in loads:
                expr = "stall += dtlb(%s) + dl1(%s, False)" % (var, var)
                if load_const:
                    expr += " + (%d)" % load_const
                lines.append(expr)
            for var in stores:
                expr = "stall += dtlb(%s) + dl1(%s, True)" % (var, var)
                if self.dl1_latency:
                    expr += " - %d" % self.dl1_latency
                lines.append(expr)
            return lines
        # dtlb stays a call (it carries the page-visibility fault check)
        # and must run before the DL1 probe, exactly as in the reference
        # ``_data_stall``; the DL1 MRU-hit case is inlined like IL1's.
        for var, is_write in ([(v, False) for v in loads]
                              + [(v, True) for v in stores]):
            lines.append("stall += dtlb(%s)" % var)
            lines.append("ln_ = %s >> %d" % (var, self.dl1_shift))
            lines.append("dw_ = dl1s[ln_ & %d]" % self.dl1_mask)
            lines.append("de_ = dw_[-1] if dw_ else None")
            lines.append("if de_ is not None and de_[0] == ln_:")
            lines.append("    dl1st.accesses += 1")
            lines.append("    if de_[2] and not de_[3]:")
            lines.append("        dl1st.prefetch_used += 1")
            lines.append("    de_[3] = True")
            if is_write:
                lines.append("    de_[1] = True")
                lines.append("else:")
                expr = "    stall += dl1(%s, True)" % var
                if self.dl1_latency:
                    expr += " - %d" % self.dl1_latency
                lines.append(expr)
            else:
                if self.load_use:
                    lines.append("    stall += %d" % self.load_use)
                lines.append("else:")
                expr = "    stall += dl1(%s, False)" % var
                if load_const:
                    expr += " + (%d)" % load_const
                lines.append(expr)
        return lines

    def _tracer_lines(self, n, arch, fpc, taken="False", target="0"):
        return [
            "if tracer is not None:",
            "    tracer.record(i%d, %d, %d, %s, %s)"
            % (n, arch, fpc, taken, target),
        ]

    def _exec_plan(self, op, n):
        """Inline execute-stage plan for a CTRL_NONE op; falls back to a
        generic specialized-handler call when no template exists."""
        inst = op[1]
        touch = op[13]
        plan = inline_exec_src(
            inst, n, self.randomized,
            getattr(self.flow, "derand_map", None),
        )
        if plan is not None:
            lines = []
            if touch:
                lines.append("st.last_load_addr = None")
                lines.append("st.last_store_addr = None")
            lines += plan["lines"]
            lines += self._stall_lines(plan["loads"], plan["stores"])
            drain = self.record_events and plan["can_event"]
            return lines, drain, bool(plan["loads"] or plan["stores"])
        # Generic fallback: exact mirror of the fast loop's handler call.
        self.handlers[n] = op[0]
        lines = []
        if touch:
            lines.append("st.last_load_addr = None")
            lines.append("st.last_store_addr = None")
        lines.append("h%d(i%d, st, flow)" % (n, n))
        if touch:
            load_const = self.load_use - self.dl1_latency
            load_expr = "stall += dtlb(addr) + dl1(addr, False)"
            if load_const:
                load_expr += " + (%d)" % load_const
            store_expr = "stall += dtlb(addr) + dl1(addr, True)"
            if self.dl1_latency:
                store_expr += " - %d" % self.dl1_latency
            lines += [
                "addr = st.last_load_addr",
                "if addr is not None:",
                "    " + load_expr,
                "addr = st.last_store_addr",
                "if addr is not None:",
                "    " + store_expr,
            ]
        return lines, self.record_events, touch

    def _emit_interior(self, w, op, n, continue_to=None):
        """One CTRL_NONE instruction (interior, or a cap-split terminal
        when ``continue_to`` carries its asserted fall-through)."""
        (_handler, inst, fpc, arch, extra, _page, _line, _pf1, _cross,
         _addr2, _line2, _pf2, _seq, _touch, is_int) = op
        self._register(op, n)

        fetch = self._fetch_lines(op)
        if is_int:
            self._emit_int(w, op, n, fetch)
            return
        exec_lines, drain, exec_stall = self._exec_plan(op, n)
        uses_stall = bool(fetch) or exec_stall or extra > 0

        w.line("st.pc = %d" % arch)
        if uses_stall:
            w.line("stall = %d" % extra)
        w.extend(fetch)
        w.line("icount += 1")
        if self.burst:
            w.line("st.icount = icount")
        w.extend(exec_lines)
        if drain:
            w.line("if events:")
            w.line("    drc(False, 0)")
        w.extend(self._tracer_lines(n, arch, fpc))
        w.line("cycle += 1 + stall" if uses_stall else "cycle += 1")

    def _emit_int(self, w, op, n, fetch):
        """``int``: the only op whose handler can raise ExitProgram.
        On exit the pending fetch stall is discarded (reference loop
        charges a bare ``cycle += 1``), so the except arm returns
        immediately with status 1."""
        (_handler, inst, fpc, arch, extra, *_rest) = op
        uses_stall = bool(fetch) or extra > 0
        w.line("st.pc = %d" % arch)
        if uses_stall:
            w.line("stall = %d" % extra)
        w.extend(fetch)
        w.line("icount += 1")
        w.line("st.icount = icount")
        w.line("try:")
        w.line("    syscall(%d)" % inst.imm)
        w.line("except X:")
        w.line("    cycle += 1")
        w.line("    return (1, %d)" % fpc)
        if self.randomized:
            w.line("if flow.tagmask:")
            w.line("    flow.tagmask &= -2")
        if self.record_events:
            w.line("if events:")
            w.line("    drc(False, 0)")
        w.extend(self._tracer_lines(n, arch, fpc))
        w.line("cycle += 1 + stall" if uses_stall else "cycle += 1")

    # terminals --------------------------------------------------------

    def _branch_call(self, inst, n, ctrl, nfp_expr, target_expr):
        """Predictor query with the ``_branch_stall`` mnemonic dispatch
        resolved at compile time (same arguments, same return)."""
        pc = inst.addr
        m = inst.mnemonic
        if m == "call":
            return ("pen, ok = bdir(%d, %s, True, st.last_retaddr)"
                    % (pc, nfp_expr))
        if m == "jmp" or m == "jmp8":
            return "pen, ok = bdir(%d, %s, False)" % (pc, nfp_expr)
        if m == "calli":
            return ("pen, ok = bind(%d, %s, True, st.last_retaddr)"
                    % (pc, nfp_expr))
        if m == "jmpi":
            return "pen, ok = bind(%d, %s, False)" % (pc, nfp_expr)
        if m == "ret":
            return "pen, ok = bret(%d, %s)" % (pc, target_expr)
        return ("pen, ok = bstall(i%d, %d, %s, %s)"
                % (n, ctrl, nfp_expr, target_expr))

    def _emit_terminal(self, w, op, n, expected, final):
        (handler, inst, fpc, arch, extra, _page, _line, _pf1, _cross,
         _addr2, _line2, _pf2, seq, touch, is_int) = op
        mnemonic = inst.mnemonic
        is_control = inst.cc is not None or mnemonic in _CONTROL_MNEMONICS
        if not is_control:
            # Cap-split / decode-boundary terminal: identical to an
            # interior op except the fall-through continues the trace.
            # The reference path's branch query is statically (0, True)
            # and the DRC drain is covered by the interior drain rule.
            seq_val = seq if seq is not None else \
                self._fold(self.flow.sequential, inst)
            if seq_val is None or seq_val != expected:
                raise TraceCompileError(
                    "non-constant fall-through at 0x%x" % fpc
                )
            self._emit_interior(w, op, n, continue_to=expected)
            if final and not self.looping:
                w.line("return (0, %d)" % expected)
            elif self.looping and final and expected != self.anchor:
                raise TraceCompileError("loop closure mismatch")
            return

        retaddr = None
        ret_events = ()
        if mnemonic in ("call", "calli"):
            if self.record_events:
                retaddr, delta = self._fold_events(
                    self.flow.call_retaddr, inst
                )
                ret_events = delta or ()
            else:
                retaddr = self._fold(self.flow.call_retaddr, inst)
        plan = inline_term_src(inst, n, self.randomized, retaddr)
        if plan is None:
            raise TraceCompileError("no terminal plan for %s" % mnemonic)
        self._register(op, n)

        fetch = self._fetch_lines(op)
        w.line("st.pc = %d" % arch)
        w.line("stall = %d" % extra)
        w.extend(fetch)
        w.line("icount += 1")
        if self.burst:
            w.line("st.icount = icount")
        if touch:
            w.line("st.last_load_addr = None")
            w.line("st.last_store_addr = None")

        drain = self.record_events
        kind = plan["kind"]
        if kind == "jcc":
            self._emit_jcc(w, op, plan, n, expected, final)
            return

        # Replay the folded retaddr's DRC events where ``call_retaddr``
        # would have queued them (before the push; consumed by the
        # end-of-instruction drain in list order).
        for event in ret_events:
            w.line("events.append(%r)" % (event,))
        w.extend(plan["lines"])
        w.extend(self._stall_lines(plan["loads"], plan["stores"]))

        if plan["target"] is not None:
            # Direct transfer: deterministic between flushes, no guard.
            setup, nfp_expr, nfp_val = self._static_nfp(plan["target"])
            w.extend(setup)
            if nfp_val is not None and nfp_val != expected:
                raise TraceCompileError("static edge mismatch")
            guard = False
            target_expr = str(plan["target"])
        else:
            if self.identity_transfer:
                nfp_expr = "tgt"
            else:
                w.line("nfp = transfer(tgt)")
                nfp_expr = "nfp"
            guard = True
            target_expr = plan["target_var"]

        w.line(self._branch_call(inst, n, plan["ctrl"], nfp_expr,
                                 target_expr))
        w.line("stall += pen")
        if drain:
            w.line("if events:")
            w.line("    stall += drc(not ok, pen)")
        w.extend(self._tracer_lines(n, arch, fpc, "True", target_expr))
        w.line("cycle += 1 + stall")
        self._emit_continue(w, expected, final, guard, nfp_expr)

    def _emit_jcc(self, w, op, plan, n, expected, final):
        (_handler, inst, fpc, arch, _extra, _page, _line, _pf1, _cross,
         _addr2, _line2, _pf2, seq, _touch, _is_int) = op
        taken_setup, taken_expr, _ = self._static_nfp(plan["target"])
        seq_val = seq if seq is not None else \
            self._fold(self.flow.sequential, inst)
        if seq_val is not None:
            seq_setup, seq_expr = [], str(seq_val)
        else:
            seq_setup, seq_expr = ["nfp = sequential(i%d)" % n], "nfp"

        w.line("if %s:" % plan["cond"])
        w.extend(taken_setup, extra=1)
        w.line("    kk = 1")
        w.line("    tt = %d" % plan["target"])
        w.line("    nfp = %s" % taken_expr)
        w.line("else:")
        w.extend(seq_setup, extra=1)
        w.line("    kk = 0")
        w.line("    tt = 0")
        w.line("    nfp = %s" % seq_expr)
        w.line("pen, ok = bcond(%d, kk == 1, nfp if kk == 1 else 0)"
               % inst.addr)
        w.line("stall += pen")
        if self.record_events:
            w.line("if events:")
            w.line("    stall += drc(not ok, pen)")
        w.extend(self._tracer_lines(n, arch, fpc, "kk != 0", "tt"))
        w.line("cycle += 1 + stall")
        self._emit_continue(w, expected, final, True, "nfp")

    def _emit_continue(self, w, expected, final, guard, nfp_expr):
        """Trace continuation after an op's cycle retire: guard the
        recorded edge, close the loop, or return to the dispatcher."""
        if final and not self.looping:
            # Linear exit: no guard needed, the dispatcher resumes at
            # whatever the actual target was.
            w.line("return (0, %s)" % nfp_expr)
            return
        target = self.anchor if (final and self.looping) else expected
        if not guard:
            return
        w.line("if %s != %d:" % (nfp_expr, target))
        w.line("    bail[0] += 1")
        w.line("    return (0, %s)" % nfp_expr)
