"""Un-timed functional execution of RX86 programs.

The functional CPU is the semantic reference: it runs a program to
completion under any flow (baseline / naive ILR / VCFR) with no timing
model.  The cycle simulator (:mod:`repro.arch.cpu`) must produce exactly
the same architectural results — only cycle counts differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..binary import BinaryImage, load_image
from ..isa.decoder import decode
from ..isa.instruction import Instruction
from ..isa.syscalls import OutputStream
from .executor import CTRL_HALT, CTRL_NONE, execute
from .memory import SparseMemory
from .state import ExitProgram, MachineState


class InstructionLimitExceeded(Exception):
    """The program did not terminate within the instruction budget."""


@dataclass
class RunResult:
    """Outcome of one functional run."""

    exit_code: Optional[int]
    icount: int
    output: OutputStream
    state: MachineState
    halted: bool  # True when terminated via ``halt`` instead of EXIT

    def snapshot(self) -> tuple:
        """The cross-mode comparable view of this run."""
        return (self.output.snapshot(), self.exit_code, self.icount)


class FunctionalCPU:
    """Executes one loaded program under a given flow."""

    def __init__(
        self,
        image: BinaryImage,
        flow=None,
        max_instructions: int = 50_000_000,
    ):
        from ..ilr.flow import BaselineFlow  # local import; no cycle at module load

        self.image = image
        self.mem = SparseMemory()
        info = load_image(image, self.mem)
        self.state = MachineState(self.mem, stack_top=info.stack_top)
        self.flow = flow if flow is not None else BaselineFlow(image.entry)
        self.max_instructions = max_instructions
        self._decode_cache: Dict[int, Instruction] = {}

    def _fetch(self, fetch_pc: int) -> Instruction:
        inst = self._decode_cache.get(fetch_pc)
        if inst is None:
            raw = self.mem.read_block(fetch_pc, 8)
            inst = decode(raw, 0, fetch_pc)
            self._decode_cache[fetch_pc] = inst
        return inst

    def run(self) -> RunResult:
        """Run to EXIT/halt; raises on faults or instruction-budget overrun."""
        state = self.state
        flow = self.flow
        fetch_pc = flow.initial_fetch_pc()
        limit = self.max_instructions
        halted = False

        while True:
            if state.icount >= limit:
                raise InstructionLimitExceeded(
                    "no termination after %d instructions" % limit
                )
            inst = self._fetch(fetch_pc)
            state.pc = flow.arch_pc_of(fetch_pc)
            try:
                kind, target = execute(inst, state, flow)
            except ExitProgram:
                break
            if kind == CTRL_NONE:
                fetch_pc = flow.sequential(inst)
            elif kind == CTRL_HALT:
                halted = True
                break
            else:
                fetch_pc = flow.transfer(target)

        return RunResult(
            exit_code=state.exit_code,
            icount=state.icount,
            output=state.out,
            state=state,
            halted=halted,
        )


def run_image(image: BinaryImage, flow=None, max_instructions: int = 50_000_000):
    """One-shot helper: load, run, return the :class:`RunResult`."""
    return FunctionalCPU(image, flow, max_instructions).run()
