"""Branch prediction: 2-level gshare, BTB, and return address stack.

Paper §VI-C: "The detailed processor model includes, branch predictor
(2-level gshare), BTB (branch target buffer), RAS ...".  §IV-D: under
VCFR, "both predictions can be based on the de-randomized program
counter", so prediction accuracy is unaffected by randomization — the
cycle simulator feeds these structures UPC-space addresses in VCFR mode
and randomized addresses in naive mode (where no original space exists at
fetch time).
"""

from __future__ import annotations

from .config import BranchConfig


class BranchStats:
    __slots__ = (
        "cond_branches", "cond_mispredicts",
        "btb_lookups", "btb_misses",
        "ras_pushes", "ras_pops", "ras_mispredicts",
        "indirect_branches", "indirect_mispredicts",
    )

    def __init__(self):
        self.cond_branches = 0
        self.cond_mispredicts = 0
        self.btb_lookups = 0
        self.btb_misses = 0
        self.ras_pushes = 0
        self.ras_pops = 0
        self.ras_mispredicts = 0
        self.indirect_branches = 0
        self.indirect_mispredicts = 0

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_branches:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_branches


class GShare:
    """Global-history XOR PC indexed table of 2-bit saturating counters."""

    __slots__ = ("history_bits", "mask", "table", "history")

    def __init__(self, history_bits: int):
        self.history_bits = history_bits
        self.mask = (1 << history_bits) - 1
        self.table = [2] * (1 << history_bits)  # weakly taken
        self.history = 0

    def predict(self, pc: int) -> bool:
        idx = ((pc >> 2) ^ self.history) & self.mask
        return self.table[idx] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = ((pc >> 2) ^ self.history) & self.mask
        counter = self.table[idx]
        if taken:
            if counter < 3:
                self.table[idx] = counter + 1
        else:
            if counter > 0:
                self.table[idx] = counter - 1
        self.history = ((self.history << 1) | int(taken)) & self.mask


class BTB:
    """Set-associative branch target buffer (LRU)."""

    __slots__ = ("num_sets", "assoc", "_sets", "_set_mask")

    def __init__(self, entries: int, assoc: int):
        self.num_sets = max(1, entries // assoc)
        self.assoc = assoc
        # Power-of-two index mask (-1 = fall back to ``%``).
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = -1
        self._sets = [[] for _ in range(self.num_sets)]  # [tag, target] LRU order

    def _set_for(self, pc: int):
        idx = pc >> 2
        mask = self._set_mask
        return self._sets[idx & mask if mask >= 0 else idx % self.num_sets]

    def lookup(self, pc: int):
        ways = self._set_for(pc)
        for idx, entry in enumerate(ways):
            if entry[0] == pc:
                ways.append(ways.pop(idx))
                return entry[1]
        return None

    def update(self, pc: int, target: int) -> None:
        ways = self._set_for(pc)
        for idx, entry in enumerate(ways):
            if entry[0] == pc:
                entry[1] = target
                ways.append(ways.pop(idx))
                return
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append([pc, target])


class RAS:
    """Fixed-depth return address stack (overwrites on overflow)."""

    __slots__ = ("entries", "_stack")

    def __init__(self, entries: int):
        self.entries = entries
        self._stack = []

    def push(self, addr: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(addr)

    def pop(self):
        if self._stack:
            return self._stack.pop()
        return None


class BranchUnit:
    """Front-end prediction state + penalty computation.

    ``penalty_*`` methods return stall cycles to charge and update the
    predictors, given the architectural outcome of the instruction.
    """

    __slots__ = ("config", "gshare", "btb", "ras", "stats")

    def __init__(self, config: BranchConfig):
        self.config = config
        self.gshare = GShare(config.gshare_bits)
        self.btb = BTB(config.btb_entries, config.btb_assoc)
        self.ras = RAS(config.ras_entries)
        self.stats = BranchStats()

    # Every prediction method returns ``(penalty_cycles, predicted_ok)``.
    # ``predicted_ok`` tells the caller whether the front end had the
    # correct next fetch address in hand — when it did, a VCFR DRC lookup
    # for the same transfer is off the critical path (paper §IV-D:
    # prediction runs in the de-randomized space, so fetch never waits
    # for a translation it already has a predicted UPC for).

    # -- conditional branches -------------------------------------------------

    def conditional(self, pc: int, taken: bool, target: int):
        stats = self.stats
        stats.cond_branches += 1
        predicted_taken = self.gshare.predict(pc)
        self.gshare.update(pc, taken)

        if predicted_taken != taken:
            stats.cond_mispredicts += 1
            if taken:
                self.btb.update(pc, target)
            return self.config.mispredict_penalty, False
        if not taken:
            return 0, True
        penalty, target_ok = self._taken_target_penalty(pc, target)
        self.btb.update(pc, target)
        return penalty, target_ok

    # -- unconditional direct (jmp, call) ------------------------------------------

    def direct(self, pc: int, target: int, is_call: bool, retaddr: int = 0):
        penalty, target_ok = self._taken_target_penalty(pc, target)
        self.btb.update(pc, target)
        if is_call:
            self.ras.push(retaddr)
            self.stats.ras_pushes += 1
        return penalty, target_ok

    # -- indirect (jmpi, calli) --------------------------------------------------------

    def indirect(self, pc: int, target: int, is_call: bool, retaddr: int = 0):
        stats = self.stats
        stats.indirect_branches += 1
        stats.btb_lookups += 1
        predicted = self.btb.lookup(pc)
        self.btb.update(pc, target)
        if is_call:
            self.ras.push(retaddr)
            stats.ras_pushes += 1
        if predicted == target:
            return self.config.taken_bubble, True
        stats.indirect_mispredicts += 1
        if predicted is None:
            stats.btb_misses += 1
        return self.config.mispredict_penalty, False

    # -- returns ---------------------------------------------------------------------------

    def ret(self, pc: int, target: int):
        del pc
        stats = self.stats
        stats.ras_pops += 1
        predicted = self.ras.pop()
        if predicted == target:
            return self.config.taken_bubble, True
        stats.ras_mispredicts += 1
        return self.config.mispredict_penalty, False

    # -- helpers ------------------------------------------------------------------------------

    def _taken_target_penalty(self, pc: int, target: int):
        self.stats.btb_lookups += 1
        if self.btb.lookup(pc) == target:
            return self.config.taken_bubble, True
        self.stats.btb_misses += 1
        return self.config.btb_miss_penalty, False
