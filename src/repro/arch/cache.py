"""Set-associative cache timing model with LRU replacement and write-back.

Caches model *timing and occupancy only*; data always comes from the
functional :class:`~repro.arch.memory.SparseMemory`.  This split keeps the
hot simulation loop fast while preserving faithful hit/miss behaviour.

The line state tracks a ``prefetched`` bit so the prefetch-effectiveness
statistics of paper Fig. 3 can be computed (a prefetched line that gets
evicted before any demand hit was a wasted prefetch).
"""

from __future__ import annotations

from typing import Callable

from .config import CacheConfig


class CacheStats:
    """Counters for one cache instance."""

    __slots__ = (
        "accesses", "misses", "evictions", "writebacks",
        "prefetches", "prefetch_hits", "prefetch_used", "prefetch_wasted",
        "demand_reads_to_next",
    )

    def __init__(self):
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetches = 0
        #: prefetch requests that already hit in this cache (no fill needed).
        self.prefetch_hits = 0
        #: prefetched lines that served at least one demand access.
        self.prefetch_used = 0
        #: prefetched lines evicted without a single demand access.
        self.prefetch_wasted = 0
        #: read requests this cache issued to the next level (L2 "pressure"
        #: in paper Fig. 3 terms, when read on an L1).
        self.demand_reads_to_next = 0

    def reset(self) -> None:
        """Zero every counter in place (object identity is preserved so
        compiled trace code may close over this instance)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_waste_rate(self) -> float:
        """Fraction of prefetched lines never used — the "prefetch miss rate"."""
        issued = self.prefetch_used + self.prefetch_wasted
        return self.prefetch_wasted / issued if issued else 0.0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Cache:
    """One level of set-associative cache.

    ``next_level`` is a callable ``(line_addr, is_write) -> latency`` used
    on misses and writebacks — either another :class:`Cache`'s
    :meth:`access` or the DRAM model.

    The class is flattened for the simulator's hot loop: ``__slots__``
    storage, a precomputed set-index mask for power-of-two set counts,
    and an :meth:`access` body that binds its hot references to locals.
    """

    __slots__ = (
        "config", "name", "next_level", "num_sets", "assoc",
        "line_shift", "latency", "stats", "_sets", "_set_mask",
    )

    def __init__(
        self,
        config: CacheConfig,
        name: str,
        next_level: Callable[[int, bool], int],
    ):
        self.config = config
        self.name = name
        self.next_level = next_level
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self.line_shift = config.line_bytes.bit_length() - 1
        self.latency = config.latency
        self.stats = CacheStats()
        # Set-index mask; -1 disables it for non-power-of-two set counts
        # (``line & mask == line % num_sets`` only when num_sets is 2**k).
        if self.num_sets > 0 and self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = -1
        # Per set: list of [tag, dirty, prefetched, touched] in LRU order
        # (index 0 = LRU, -1 = MRU).
        self._sets = [[] for _ in range(self.num_sets)]

    # -- helpers -----------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self.line_shift

    def _set_index(self, line: int) -> int:
        mask = self._set_mask
        return line & mask if mask >= 0 else line % self.num_sets

    def _find(self, ways, tag):
        for idx, entry in enumerate(ways):
            if entry[0] == tag:
                return idx
        return -1

    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        ways = self._sets[self._set_index(line)]
        return self._find(ways, line) >= 0

    # -- main access path ------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> int:
        """Demand access; returns total latency in cycles."""
        line = addr >> self.line_shift
        mask = self._set_mask
        ways = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        stats = self.stats
        stats.accesses += 1

        idx = 0
        for entry in ways:
            if entry[0] == line:
                if entry[2] and not entry[3]:
                    stats.prefetch_used += 1
                entry[3] = True
                if is_write:
                    entry[1] = True
                if entry is not ways[-1]:  # already-MRU: skip the reorder
                    del ways[idx]
                    ways.append(entry)
                return self.latency
            idx += 1

        # Miss: fill from the next level.
        stats.misses += 1
        stats.demand_reads_to_next += 1
        latency = self.latency + self.next_level(line << self.line_shift, False)
        self._install(ways, line, dirty=is_write, prefetched=False, touched=True)
        return latency

    def prefetch(self, addr: int) -> None:
        """Install ``addr``'s line speculatively (no latency charged to the core)."""
        line = addr >> self.line_shift
        mask = self._set_mask
        ways = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        for entry in ways:
            if entry[0] == line:
                self.stats.prefetch_hits += 1
                return
        self.stats.prefetches += 1
        # The fill still loads the next level (bandwidth/pressure there).
        self.next_level(line << self.line_shift, False)
        self._install(ways, line, dirty=False, prefetched=True, touched=False)

    def _install(self, ways, line, dirty, prefetched, touched) -> None:
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            self.stats.evictions += 1
            if victim[2] and not victim[3]:
                self.stats.prefetch_wasted += 1
            if victim[1]:
                self.stats.writebacks += 1
                self.next_level(victim[0] << self.line_shift, True)
        ways.append([line, dirty, prefetched, touched])

    def flush(self) -> None:
        """Drop all lines (writebacks are not modelled on flush).

        Clears each set in place: the ``_sets`` list and its per-set way
        lists keep their identity, so compiled trace code
        (:mod:`repro.arch.tracecache`) may close over them."""
        for ways in self._sets:
            ways.clear()
