"""Abstract syntax tree of MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Index:
    """Array element: ``name[index]``."""

    name: str
    index: "Expr"


@dataclass(frozen=True)
class Unary:
    op: str  # '-' | '!'
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple


Expr = object  # union of the above (duck-typed; Python <3.10 friendly)

# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    """``int name = init;`` (local)."""

    name: str
    init: Optional[Expr]


@dataclass(frozen=True)
class Assign:
    target: object  # Var | Index
    value: Expr


@dataclass(frozen=True)
class If:
    cond: Expr
    then_body: tuple
    else_body: tuple


@dataclass(frozen=True)
class While:
    cond: Expr
    body: tuple


@dataclass(frozen=True)
class Return:
    value: Optional[Expr]


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr


@dataclass(frozen=True)
class Builtin:
    """``emit(e)`` / ``putc(e)`` / ``exit(e)``."""

    name: str
    arg: Expr


# -- top level --------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalVar:
    name: str
    size: int  # 1 for a scalar, N for ``int name[N]``
    init: tuple = ()  # initial word values (scalars: at most one)
    is_array: bool = False


@dataclass(frozen=True)
class Function:
    name: str
    params: tuple
    body: tuple


@dataclass
class Program:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Optional[Function]:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
