"""RX86 code generation for MiniC.

A deliberately simple one-pass stack-machine generator: expressions
evaluate into ``eax`` (intermediates spilled to the stack), locals live at
negative ``ebp`` offsets, arguments are pushed right-to-left and cleaned
by the caller.  Simplicity over cleverness: the generated code is the
*input* of the randomization toolchain, so being obviously correct is the
feature.

Calling convention::

    [ebp + 8 + 4*i]  argument i
    [ebp + 4]        return address
    [ebp]            saved ebp
    [ebp - 4*(i+1)]  local i
"""

from __future__ import annotations

from typing import Dict, List

from . import ast


class CompileError(ValueError):
    """Semantic error in a MiniC program."""


#: jcc mnemonic per comparison operator (signed compares, as in C int).
_CMP_JCC = {
    "==": "jz", "!=": "jnz", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge",
}

_ALU = {"+": "add", "-": "sub", "*": "imul", "&": "and", "|": "or", "^": "xor"}

_SHIFT = {"<<": "shl", ">>": "sar"}


class _FunctionContext:
    def __init__(self, fn: ast.Function):
        self.fn = fn
        self.locals: Dict[str, int] = {}  # name -> ebp offset
        self.params: Dict[str, int] = {
            name: 8 + 4 * idx for idx, name in enumerate(fn.params)
        }
        self.epilogue = ".ret_%s" % fn.name


class CodeGenerator:
    """Generates assembler text for one :class:`~repro.cc.ast.Program`."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.lines: List[str] = []
        self.data_lines: List[str] = []
        self._label_counter = 0
        self._globals = {g.name: g for g in program.globals}
        self._functions = {f.name: f for f in program.functions}
        dupes = set(self._globals) & set(self._functions)
        if dupes:
            raise CompileError("name used as both global and function: %s"
                               % ", ".join(sorted(dupes)))

    # -- helpers ---------------------------------------------------------------

    def _label(self, prefix: str) -> str:
        self._label_counter += 1
        return ".%s_%d" % (prefix, self._label_counter)

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, name: str) -> None:
        self.lines.append(name + ":")

    # -- top level -----------------------------------------------------------------

    def generate(self) -> str:
        """Produce the full assembly source."""
        if "main" not in self._functions:
            raise CompileError("no main() function")
        self.lines.append(".entry _start")
        self.lines.append(".code 0x400000")
        self.emit_label("_start")
        self.emit("call main")
        self.emit("mov ebx, eax")
        self.emit("movi eax, 1")
        self.emit("int 0x80")
        for fn in self.program.functions:
            self._gen_function(fn)

        self.data_lines.append(".data 0x8000000")
        for var in self.program.globals:
            self.data_lines.append("g_%s:" % var.name)
            values = list(var.init) + [0] * (var.size - len(var.init))
            self.data_lines.append(
                "    .word " + ", ".join(str(v) for v in values)
            )
        return "\n".join(self.lines + self.data_lines) + "\n"

    # -- functions ----------------------------------------------------------------------

    def _gen_function(self, fn: ast.Function) -> None:
        ctx = _FunctionContext(fn)
        self._collect_locals(fn.body, ctx)
        self.emit_label(fn.name)
        self.emit("push ebp")
        self.emit("mov ebp, esp")
        if ctx.locals:
            self.emit("sub esp, %d" % (4 * len(ctx.locals)))
        self._gen_block(fn.body, ctx)
        # Fall off the end: return 0.
        self.emit("movi eax, 0")
        self.emit_label(ctx.epilogue)
        self.emit("mov esp, ebp")
        self.emit("pop ebp")
        self.emit("ret")

    def _collect_locals(self, body, ctx: _FunctionContext) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Decl):
                if stmt.name in ctx.locals or stmt.name in ctx.params:
                    raise CompileError("duplicate local %r" % stmt.name)
                ctx.locals[stmt.name] = -4 * (len(ctx.locals) + 1)
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then_body, ctx)
                self._collect_locals(stmt.else_body, ctx)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body, ctx)

    # -- statements ------------------------------------------------------------------------

    def _gen_block(self, body, ctx) -> None:
        for stmt in body:
            self._gen_statement(stmt, ctx)

    def _gen_statement(self, stmt, ctx) -> None:
        if isinstance(stmt, ast.Decl):
            if stmt.init is not None:
                self._gen_expr(stmt.init, ctx)
                self.emit("mov [ebp%+d], eax" % ctx.locals[stmt.name])
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt, ctx)
        elif isinstance(stmt, ast.If):
            else_label = self._label("else")
            end_label = self._label("endif")
            self._gen_expr(stmt.cond, ctx)
            self.emit("test eax, eax")
            self.emit("jz %s" % (else_label if stmt.else_body else end_label))
            self._gen_block(stmt.then_body, ctx)
            if stmt.else_body:
                self.emit("jmp %s" % end_label)
                self.emit_label(else_label)
                self._gen_block(stmt.else_body, ctx)
            self.emit_label(end_label)
        elif isinstance(stmt, ast.While):
            top = self._label("while")
            end = self._label("endwhile")
            self.emit_label(top)
            self._gen_expr(stmt.cond, ctx)
            self.emit("test eax, eax")
            self.emit("jz %s" % end)
            self._gen_block(stmt.body, ctx)
            self.emit("jmp %s" % top)
            self.emit_label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value, ctx)
            else:
                self.emit("movi eax, 0")
            self.emit("jmp %s" % ctx.epilogue)
        elif isinstance(stmt, ast.Builtin):
            self._gen_expr(stmt.arg, ctx)
            self.emit("mov ebx, eax")
            number = {"exit": 1, "putc": 4, "emit": 5}[stmt.name]
            self.emit("movi eax, %d" % number)
            self.emit("int 0x80")
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(stmt.expr, ctx)
        else:
            raise CompileError("unknown statement %r" % (stmt,))

    def _gen_assign(self, stmt: ast.Assign, ctx) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            self._gen_expr(stmt.value, ctx)
            offset = self._var_offset(target.name, ctx)
            if offset is not None:
                self.emit("mov [ebp%+d], eax" % offset)
                return
            self._require_global(target.name, array=False)
            self.emit("movi esi, g_%s" % target.name)
            self.emit("mov [esi+0], eax")
            return
        # array element
        self._require_global(target.name, array=True)
        self._gen_expr(target.index, ctx)
        self.emit("shl eax, 2")
        self.emit("movi esi, g_%s" % target.name)
        self.emit("add esi, eax")
        self.emit("push esi")
        self._gen_expr(stmt.value, ctx)
        self.emit("pop esi")
        self.emit("mov [esi+0], eax")

    # -- expressions ---------------------------------------------------------------------------

    def _gen_expr(self, expr, ctx) -> None:
        """Evaluate ``expr`` into eax (may clobber ecx/edx/esi and stack)."""
        if isinstance(expr, ast.Num):
            self.emit("movi eax, %d" % expr.value)
        elif isinstance(expr, ast.Var):
            offset = self._var_offset(expr.name, ctx)
            if offset is not None:
                self.emit("mov eax, [ebp%+d]" % offset)
            else:
                self._require_global(expr.name, array=False)
                self.emit("movi esi, g_%s" % expr.name)
                self.emit("mov eax, [esi+0]")
        elif isinstance(expr, ast.Index):
            self._require_global(expr.name, array=True)
            self._gen_expr(expr.index, ctx)
            self.emit("shl eax, 2")
            self.emit("movi esi, g_%s" % expr.name)
            self.emit("add esi, eax")
            self.emit("mov eax, [esi+0]")
        elif isinstance(expr, ast.Unary):
            self._gen_expr(expr.operand, ctx)
            if expr.op == "-":
                self.emit("mov ecx, eax")
                self.emit("movi eax, 0")
                self.emit("sub eax, ecx")
            else:  # '!'
                one = self._label("one")
                end = self._label("endnot")
                self.emit("test eax, eax")
                self.emit("jz %s" % one)
                self.emit("movi eax, 0")
                self.emit("jmp %s" % end)
                self.emit_label(one)
                self.emit("movi eax, 1")
                self.emit_label(end)
        elif isinstance(expr, ast.Binary):
            self._gen_binary(expr, ctx)
        elif isinstance(expr, ast.Call):
            self._gen_call(expr, ctx)
        else:
            raise CompileError("unknown expression %r" % (expr,))

    def _gen_binary(self, expr: ast.Binary, ctx) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_shortcircuit(expr, ctx)
            return
        if op in _SHIFT:
            if not isinstance(expr.right, ast.Num):
                raise CompileError(
                    "shift amounts must be constants (RX86 has no "
                    "variable-count shift)"
                )
            self._gen_expr(expr.left, ctx)
            self.emit("%s eax, %d" % (_SHIFT[op], expr.right.value & 31))
            return
        self._gen_expr(expr.left, ctx)
        self.emit("push eax")
        self._gen_expr(expr.right, ctx)
        self.emit("mov ecx, eax")
        self.emit("pop eax")
        if op in _ALU:
            self.emit("%s eax, ecx" % _ALU[op])
            return
        if op in _CMP_JCC:
            true_label = self._label("true")
            end = self._label("endcmp")
            self.emit("cmp eax, ecx")
            self.emit("%s %s" % (_CMP_JCC[op], true_label))
            self.emit("movi eax, 0")
            self.emit("jmp %s" % end)
            self.emit_label(true_label)
            self.emit("movi eax, 1")
            self.emit_label(end)
            return
        raise CompileError("unknown operator %r" % op)

    def _gen_shortcircuit(self, expr: ast.Binary, ctx) -> None:
        end = self._label("endsc")
        out_label = self._label("sc")
        if expr.op == "&&":
            self._gen_expr(expr.left, ctx)
            self.emit("test eax, eax")
            self.emit("jz %s" % out_label)          # left false -> 0
            self._gen_expr(expr.right, ctx)
            self.emit("test eax, eax")
            self.emit("jz %s" % out_label)
            self.emit("movi eax, 1")
            self.emit("jmp %s" % end)
            self.emit_label(out_label)
            self.emit("movi eax, 0")
        else:  # '||'
            self._gen_expr(expr.left, ctx)
            self.emit("test eax, eax")
            self.emit("jnz %s" % out_label)         # left true -> 1
            self._gen_expr(expr.right, ctx)
            self.emit("test eax, eax")
            self.emit("jnz %s" % out_label)
            self.emit("movi eax, 0")
            self.emit("jmp %s" % end)
            self.emit_label(out_label)
            self.emit("movi eax, 1")
        self.emit_label(end)

    def _gen_call(self, expr: ast.Call, ctx) -> None:
        fn = self.program.function(expr.name)
        if fn is None:
            raise CompileError("call to undefined function %r" % expr.name)
        if len(fn.params) != len(expr.args):
            raise CompileError(
                "%s() takes %d argument(s), got %d"
                % (expr.name, len(fn.params), len(expr.args))
            )
        for arg in reversed(expr.args):
            self._gen_expr(arg, ctx)
            self.emit("push eax")
        self.emit("call %s" % expr.name)
        if expr.args:
            self.emit("add esp, %d" % (4 * len(expr.args)))

    # -- symbol resolution -------------------------------------------------------------------------

    def _var_offset(self, name: str, ctx) -> "int | None":
        if name in ctx.locals:
            return ctx.locals[name]
        if name in ctx.params:
            return ctx.params[name]
        return None

    def _require_global(self, name: str, array: bool) -> None:
        var = self._globals.get(name)
        if var is None:
            raise CompileError("undefined variable %r" % name)
        if array and not var.is_array:
            raise CompileError("%r is not an array" % name)
        if not array and var.is_array:
            raise CompileError("%r is an array (index it)" % name)
