"""Recursive-descent parser for MiniC.

Grammar (EBNF-ish)::

    program   := (global | function)*
    global    := 'int' ident ('[' num ']')? ('=' '{' num (',' num)* '}'
                 | '=' num)? ';'
    function  := 'int' ident '(' params? ')' block
    params    := 'int' ident (',' 'int' ident)*
    block     := '{' stmt* '}'
    stmt      := 'int' ident ('=' expr)? ';'
               | 'if' '(' expr ')' block ('else' block)?
               | 'while' '(' expr ')' block
               | 'return' expr? ';'
               | ('emit'|'putc'|'exit') '(' expr ')' ';'
               | lvalue '=' expr ';'
               | expr ';'
    expr      := or  (precedence-climbing: || && | ^ & ==/!= cmp shift
                 add mul unary primary)

Division/modulo are deliberately absent (RX86 has no divide), and shift
amounts must be constant (RX86 shifts take an immediate count).
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


#: binary operators by precedence level, loosest first.
_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*"],
]

_BUILTINS = ("emit", "putc", "exit")


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.cur
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.cur
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            raise ParseError(
                "expected %s, found %r" % (text or kind, self.cur.text),
                self.cur.line,
            )
        return token

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.cur.kind != "eof":
            self.expect("keyword", "int")
            name = self.expect("ident").text
            if self.cur.text == "(":
                program.functions.append(self._function(name))
            else:
                program.globals.append(self._global(name))
        return program

    def _global(self, name: str) -> ast.GlobalVar:
        size = 1
        is_array = False
        init: tuple = ()
        if self.accept("op", "["):
            size = self._const()
            if size <= 0:
                raise ParseError("array size must be positive", self.cur.line)
            is_array = True
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values = [self._const()]
                while self.accept("op", ","):
                    values.append(self._const())
                self.expect("op", "}")
                if not is_array:
                    raise ParseError("brace init needs an array", self.cur.line)
                if len(values) > size:
                    raise ParseError("too many initializers", self.cur.line)
                init = tuple(values)
            else:
                init = (self._const(),)
        self.expect("op", ";")
        return ast.GlobalVar(name, size, init, is_array)

    def _const(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("num")
        value = int(token.text, 0)
        return -value if negative else value

    def _function(self, name: str) -> ast.Function:
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            while True:
                self.expect("keyword", "int")
                params.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self._block()
        return ast.Function(name, tuple(params), body)

    # -- statements ----------------------------------------------------------------

    def _block(self) -> tuple:
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self._statement())
        return tuple(stmts)

    def _statement(self):
        token = self.cur
        if token.kind == "keyword":
            if token.text == "int":
                self.advance()
                name = self.expect("ident").text
                init = self._expr() if self.accept("op", "=") else None
                self.expect("op", ";")
                return ast.Decl(name, init)
            if token.text == "if":
                self.advance()
                self.expect("op", "(")
                cond = self._expr()
                self.expect("op", ")")
                then_body = self._block()
                else_body = self._block() if self.accept("keyword", "else") else ()
                return ast.If(cond, then_body, else_body)
            if token.text == "while":
                self.advance()
                self.expect("op", "(")
                cond = self._expr()
                self.expect("op", ")")
                return ast.While(cond, self._block())
            if token.text == "return":
                self.advance()
                value = None if self.cur.text == ";" else self._expr()
                self.expect("op", ";")
                return ast.Return(value)
            if token.text in _BUILTINS:
                self.advance()
                self.expect("op", "(")
                arg = self._expr()
                self.expect("op", ")")
                self.expect("op", ";")
                return ast.Builtin(token.text, arg)
            raise ParseError("unexpected keyword %r" % token.text, token.line)

        # lvalue '=' expr  |  expr ';'
        expr = self._expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("bad assignment target", token.line)
            value = self._expr()
            self.expect("op", ";")
            return ast.Assign(expr, value)
        self.expect("op", ";")
        return ast.ExprStmt(expr)

    # -- expressions -----------------------------------------------------------------

    def _expr(self, level: int = 0):
        if level >= len(_LEVELS):
            return self._unary()
        left = self._expr(level + 1)
        while self.cur.kind == "op" and self.cur.text in _LEVELS[level]:
            op = self.advance().text
            right = self._expr(level + 1)
            left = ast.Binary(op, left, right)
        return left

    def _unary(self):
        if self.accept("op", "-"):
            return ast.Unary("-", self._unary())
        if self.accept("op", "!"):
            return ast.Unary("!", self._unary())
        return self._primary()

    def _primary(self):
        token = self.cur
        if token.kind == "num":
            self.advance()
            return ast.Num(int(token.text, 0))
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._expr())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return ast.Call(token.text, tuple(args))
            if self.accept("op", "["):
                index = self._expr()
                self.expect("op", "]")
                return ast.Index(token.text, index)
            return ast.Var(token.text)
        if self.accept("op", "("):
            inner = self._expr()
            self.expect("op", ")")
            return inner
        raise ParseError("unexpected token %r" % token.text, token.line)


def parse(source: str) -> ast.Program:
    """Parse MiniC source into a :class:`~repro.cc.ast.Program`."""
    return Parser(tokenize(source)).parse_program()
