"""MiniC: a small C-like language compiled to RX86.

The paper's toolchain consumes "arbitrary code images" produced by a
compiler (Fig. 6); MiniC closes that loop — programs can be written in a
high-level language, compiled, randomized, attacked and simulated without
hand-written assembly anywhere in the pipeline.

Language: 32-bit ints, global scalars/arrays (brace initializers),
functions with int parameters, ``if``/``else``/``while``/``return``,
C operator set minus division (RX86 has no divider) and minus
variable-count shifts (RX86 shifts take an immediate), plus the
``emit(e)`` / ``putc(e)`` / ``exit(e)`` builtins mapping to the syscall
ABI.

    from repro.cc import compile_source
    image = compile_source(open("prog.mc").read())
"""

from .ast import Program
from .codegen import CodeGenerator, CompileError
from .lexer import LexError, tokenize
from .parser import ParseError, parse


def compile_to_assembly(source: str) -> str:
    """MiniC source -> RX86 assembly text."""
    return CodeGenerator(parse(source)).generate()


def compile_source(source: str):
    """MiniC source -> assembled :class:`~repro.binary.BinaryImage`."""
    from ..isa import assemble

    return assemble(compile_to_assembly(source))


__all__ = [
    "compile_source",
    "compile_to_assembly",
    "parse",
    "tokenize",
    "Program",
    "CodeGenerator",
    "CompileError",
    "ParseError",
    "LexError",
]
