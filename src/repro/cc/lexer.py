"""Lexer for MiniC, the small C-like language of :mod:`repro.cc`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset(
    ["int", "if", "else", "while", "return", "emit", "putc", "exit"]
)

#: multi-character operators, longest first.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "&", "|", "^", "<", ">", "=", "!",
    "(", ")", "{", "}", "[", "]", ";", ",",
]


class LexError(ValueError):
    """Bad character or malformed token, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'ident' | 'keyword' | 'op' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(source: str) -> List[Token]:
    """Turn MiniC source into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("num", source[i:j], line))
            else:
                while j < n and source[j].isdigit():
                    j += 1
                tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if ch == "'":
            if i + 2 < n and source[i + 2] == "'":
                tokens.append(Token("num", str(ord(source[i + 1])), line))
                i += 3
                continue
            if i + 3 < n and source[i + 1] == "\\" and source[i + 3] == "'":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                value = escapes.get(source[i + 2])
                if value is None:
                    raise LexError("bad escape %r" % source[i + 2], line)
                tokens.append(Token("num", str(value), line))
                i += 4
                continue
            raise LexError("bad character literal", line)
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError("unexpected character %r" % ch, line)
    tokens.append(Token("eof", "", line))
    return tokens
