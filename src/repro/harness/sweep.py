"""Sweep vocabulary + the legacy batch ``sweep()`` shim.

The harness's experiment suite is sweep-shaped — many independent
(workload, mode, DRC-size) simulations whose results are only combined
at reporting time.  This module holds the execution *vocabulary* shared
by every engine: :func:`execute_spec` (the single definition of "run
this spec"), :func:`build_program`, :func:`_pool_task` (the pool-worker
entry point), :class:`RetryPolicy`, :class:`SweepOutcome`,
:class:`FailedRun`, and the result-integrity/cache-commit helpers.

Since ISSUE 7 the engine itself lives in
:class:`repro.harness.scheduler.AsyncScheduler` — a streaming,
bounded-memory asyncio scheduler fronted by
:class:`repro.harness.session.ExperimentSession`.  :func:`sweep` below
is kept as a thin, exact batch adapter over it:

1. deduplicating normalized specs,
2. serving anything already in the on-disk
   :class:`~repro.harness.resultcache.ResultCache`,
3. fanning the rest over a process pool (``workers >= 2``) or running
   them inline (``workers <= 1``), and
4. merging worker observability back into the parent: buffered event
   records are replayed into the parent's
   :class:`~repro.obs.events.EventLog` (file sinks stay single-writer),
   profiler phase totals fold into the parent's
   :class:`~repro.obs.profile.PhaseProfiler`, and metrics snapshots
   merge into the process-global registry.

Every execution path funnels through :func:`execute_spec`, so a pooled
sweep produces **bit-identical** results to a sequential one: each spec
fully determines its program (seeded randomization) and simulation, and
outcomes are merged in input order regardless of completion order.

Fault tolerance (ISSUE 4)
-------------------------

A sweep at scale must survive its own components failing.  The engine
guarantees, under a :class:`RetryPolicy` (on by default):

* **Retries with backoff** — an attempt that raises, times out, or
  returns a corrupt payload is retried up to ``max_attempts`` times
  with exponential backoff; the winning attempt's result is identical
  to a clean run's (execution is deterministic per spec).
* **Soft timeouts** — with ``timeout`` set, an attempt that produces no
  result in time is abandoned (its late result is still accepted if it
  arrives before a retry wins) and retried; if every worker is wedged,
  the pool is recycled.
* **Crash recovery** — a dying worker process breaks the whole
  ``ProcessPoolExecutor``; the engine rebuilds the pool and re-enqueues
  only the specs that were in flight.  Because the culprit cannot be
  identified from the wreckage, crash-involved specs are retried one at
  a time in a separate single-worker *probe* pool, so a poisoned spec
  can only crash itself: innocent bystanders complete on their probe,
  the poisoned spec exhausts its attempts and is **quarantined** as a
  :class:`FailedRun` (captured traceback and all) instead of sinking
  the sweep or wrongly quarantining its neighbours.
* **Result integrity** — workers ship a SHA-256 digest of each result;
  the parent re-derives it and treats a mismatch as a failed attempt.
* **Resumability** — results are committed to the on-disk cache *as
  they complete* (not at merge time), so a killed sweep's finished work
  is preserved and a re-invoked sweep picks up where it stopped.
* **Idempotent observability** — worker snapshots are tagged with their
  attempt id and merged exactly once per spec (the winning attempt
  only), so a retried spec can never double-count events, metrics, or
  phase totals in the parent.

Failures and retries surface through the process-global metrics
registry (``sweep.retries``, ``sweep.timeouts``, ``sweep.quarantined``,
``sweep.pool_rebuilds``, ``sweep.requeued``, ``sweep.corrupt_results``,
``sweep.cache_write_errors``, ``sweep.duplicates_ignored``) and the
event log (``run_retry``, ``run_failed``, ``pool_rebuild`` records).
Deterministic fault injection for all of the above lives in
:mod:`repro.harness.faults`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import CycleCPU
from ..emu import ILREmulator
from ..ilr import RandomizedProgram, RandomizerConfig, make_flow, randomize
from ..obs.events import EventLog, MemorySink
from ..obs.metrics import get_registry
from ..obs.profile import PhaseProfiler
from ..obs.store import RunStore
from ..obs.trace import NULL_TRACER, Tracer
from ..workloads import build_image
from .faults import FaultPlan, apply_worker_fault
from .resultcache import ResultCache
from .spec import RunSpec, config_fingerprint

__all__ = [
    "sweep",
    "execute_spec",
    "build_program",
    "SweepOutcome",
    "RetryPolicy",
    "FailedRun",
    "FailedRunError",
    "DEFAULT_RETRY",
]

#: Key of one randomized program build: workload identity + everything
#: the randomizer consumes.
ProgramKey = Tuple[str, int, float]

#: What a ``corrupt`` fault leaves where the result should be.
_CORRUPT_SENTINEL = "\x00corrupt-result\x00"


def program_key(spec: RunSpec) -> ProgramKey:
    return (spec.workload, spec.seed, spec.scale)


def _spec_key(spec: RunSpec) -> str:
    """Content key of a normalized spec — the span key of its trace
    node, and identical to :meth:`RunStore.spec_key` so store rows and
    trace spans cross-reference.  Computed the same way in workers and
    the parent, which is what makes worker-captured spans land on the
    exact ids a sequential sweep would have derived."""
    return RunStore.spec_key(spec)


def _sweep_key(specs: Sequence[RunSpec]) -> str:
    """Content key of a whole sweep: the ordered spec-key list."""
    digest = hashlib.sha256(
        "|".join(_spec_key(spec) for spec in specs).encode()
    ).hexdigest()[:16]
    return "sweep:" + digest


def build_program(
    spec: RunSpec,
    profiler: Optional[PhaseProfiler] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    tracer: Optional[Tracer] = None,
) -> RandomizedProgram:
    """Build + randomize the workload a spec names (memoized).

    Deterministic in ``(workload, seed, scale)``, which is what makes
    worker-side rebuilds safe: a program built in a pool worker is
    byte-identical to one built in the parent.

    The ``build``/``randomize`` spans are emitted on *every* call —
    memo hits included (near-zero duration) — because memo residency is
    execution-placement-dependent (the parent memoizes across specs;
    each pool worker has its own memo) and the span *tree* must be
    identical regardless of where a spec ran.  The profiler keeps its
    original miss-only semantics: phase totals measure work done.
    """
    tracer = tracer or NULL_TRACER
    key = program_key(spec)
    if program_cache is not None and key in program_cache:
        with tracer.span("build"):
            pass
        with tracer.span("randomize"):
            pass
        return program_cache[key]
    profiler = profiler or PhaseProfiler()
    with tracer.span("build"), \
            profiler.phase("build", workload=spec.workload):
        image = build_image(spec.workload, scale=spec.scale)
    with tracer.span("randomize"), \
            profiler.phase("randomize", workload=spec.workload):
        program = randomize(image, RandomizerConfig(seed=spec.seed))
    if program_cache is not None:
        program_cache[key] = program
    return program


def execute_spec(
    spec: RunSpec,
    config: Optional[MachineConfig] = None,
    *,
    events: Optional[EventLog] = None,
    checkpoint_interval: int = 0,
    on_checkpoint=None,
    profiler: Optional[PhaseProfiler] = None,
    profile_phases: bool = False,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    tracer: Optional[Tracer] = None,
):
    """Execute one spec from scratch (no caches consulted).

    The single definition of "run this spec" shared by the sequential
    runner and the pool workers.  Returns a
    :class:`~repro.arch.simstats.SimResult` for simulator modes or an
    :class:`~repro.emu.EmulationResult` for ``emulate``.
    """
    spec = spec.normalized()
    config = config or default_config()
    events = events if events is not None else EventLog()
    profiler = profiler or PhaseProfiler(events)
    tracer = tracer or NULL_TRACER
    program = build_program(spec, profiler, program_cache, tracer)

    if spec.mode == "emulate":
        with tracer.span("emulate"), \
                profiler.phase("emulate", workload=spec.workload):
            return ILREmulator(
                program,
                max_instructions=spec.max_instructions,
                events=events,
                checkpoint_interval=checkpoint_interval,
                event_fields=spec.event_fields(),
            ).run()

    image = {
        "baseline": program.original,
        "naive_ilr": program.naive_image,
        "vcfr": program.vcfr_image,
    }[spec.mode]
    if spec.mode == "vcfr":
        config = config.with_drc_entries(spec.drc_entries)
    cpu = CycleCPU(
        image,
        make_flow(spec.mode, program),
        config,
        events=events,
        checkpoint_interval=checkpoint_interval,
        on_checkpoint=on_checkpoint,
        event_fields=spec.event_fields(),
    )
    with tracer.span("simulate"), \
            profiler.phase("simulate", workload=spec.workload,
                           mode=spec.mode):
        if profile_phases:
            return cpu.run_profiled(
                spec.max_instructions,
                spec.warmup_instructions,
                profiler=profiler,
            )
        return cpu.run(spec.max_instructions, spec.warmup_instructions)


# -- fault-tolerance vocabulary ----------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the sweep engine fights for each spec.

    ``max_attempts`` bounds total executions of one spec (first try
    included); ``timeout`` is a *soft* per-attempt deadline in seconds
    (None disables timeout handling); retry *n* is delayed by
    ``backoff * backoff_factor ** (n - 1)`` seconds.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** max(0, attempt - 1)


#: The default policy: three attempts, mild backoff, no timeout (a
#: timeout needs workload knowledge the engine does not have).
DEFAULT_RETRY = RetryPolicy()


@dataclass
class FailedRun:
    """A quarantined spec: every attempt failed; the sweep moved on."""

    spec: RunSpec
    attempts: int
    #: failure class of the final attempt: ``error`` (task raised),
    #: ``crash`` (worker process died), ``timeout``, or ``corrupt``.
    kind: str
    error: str
    traceback: str = ""

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "traceback": self.traceback,
        }


class FailedRunError(RuntimeError):
    """Raised when a caller demands the result of a quarantined spec."""

    def __init__(self, failure: FailedRun):
        super().__init__(
            "%s failed after %d attempt(s) [%s]: %s"
            % (failure.spec.label(), failure.attempts, failure.kind,
               failure.error)
        )
        self.failure = failure


@dataclass
class SweepOutcome:
    """One spec's result plus the observability captured with it."""

    spec: RunSpec
    result: object
    #: True when served from the on-disk cache (no execution happened).
    cached: bool = False
    #: event records buffered by the worker (empty when run inline —
    #: inline runs emit straight into the parent log).
    events: List[dict] = field(default_factory=list)
    #: executions it took to produce (or give up on) this outcome.
    attempts: int = 1
    #: set when the spec was quarantined; ``result`` is then None.
    failure: Optional[FailedRun] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _result_digest(result) -> str:
    """Integrity digest of a result payload.

    Canonical JSON over ``as_dict()`` — :class:`~repro.arch.simstats.
    SimResult`'s full serialization, :class:`~repro.emu.EmulationResult`'s
    observable-field view (raw pickle bytes are not canonical: identity
    sharing inside the state graph does not survive a process-boundary
    round trip, so emulation results digest their architectural outcome
    and host-cost numbers instead).  Computed in the worker before the
    payload crosses the process boundary and re-derived by the parent on
    receipt.
    """
    as_dict = getattr(result, "as_dict", None)
    if callable(as_dict):
        view = as_dict()
    else:
        view = {"type": type(result).__name__, "repr": repr(result)}
    payload = json.dumps(view, sort_keys=True, default=repr).encode()
    return hashlib.sha256(payload).hexdigest()


def _commit_result(cache, spec, config, result, faults, events,
                   registry) -> None:
    """Commit one finished result to the on-disk cache (non-fatal).

    Called as results complete — not at merge time — so a sweep killed
    mid-run keeps everything already finished.  A failing write (disk
    full, permissions, injected ``cachefail``) must never sink the
    sweep: the result is still returned in-memory, the spec simply gets
    recomputed on resume.
    """
    if cache is None:
        return
    try:
        if faults is not None and faults.cache_write_fails(spec.label()):
            raise OSError("injected cache write failure")
        cache.put(spec, config, result)
    except OSError as exc:
        registry.counter("sweep.cache_write_errors").inc()
        events.status("cache write failed", error=str(exc),
                      mode=spec.mode, **spec.event_fields())


# -- pool worker -------------------------------------------------------------

#: Per-worker-process program memo: tasks for the same workload landing
#: on the same worker skip the rebuild, mirroring the parent's memo.
_WORKER_PROGRAMS: Dict[ProgramKey, RandomizedProgram] = {}


def _pool_task(spec_dict: dict, config: MachineConfig,
               checkpoint_interval: int, profile_phases: bool,
               attempt: int = 0, faults: Optional[FaultPlan] = None,
               trace: bool = False):
    """Execute one spec attempt in a pool worker.

    Events are buffered in a :class:`MemorySink` (file sinks are
    single-writer; see :meth:`EventLog.replay`); profiler phases, a
    per-task metrics snapshot, exported trace spans (when the parent is
    tracing), the attempt id, and a result-integrity digest ride back
    with the result for the parent to verify and merge exactly once.
    Module-level so the pool can pickle it.
    """
    spec = RunSpec.from_dict(spec_dict)
    action = apply_worker_fault(faults, spec.label(), attempt)
    registry = get_registry()
    registry.reset()  # isolate this task's delta in a reused worker
    sink = MemorySink()
    log = EventLog(sink)
    profiler = PhaseProfiler(log)
    # The worker roots its capture at the attempt span, keyed exactly as
    # the sequential path keys it, so the parent's adopt() grafts it
    # onto the same ids an inline sweep would have derived.
    tracer = Tracer(enabled=trace)
    with tracer.span("attempt", span_key=_spec_key(spec) + "#%d" % attempt,
                     attempt=attempt):
        result = execute_spec(
            spec,
            config,
            events=log,
            checkpoint_interval=checkpoint_interval,
            profiler=profiler,
            profile_phases=profile_phases,
            program_cache=_WORKER_PROGRAMS,
            tracer=tracer,
        )
    digest = _result_digest(result)
    if action == "corrupt":
        result = _CORRUPT_SENTINEL
    return {
        "attempt": attempt,
        "result": result,
        "records": sink.records,
        "phases": profiler.snapshot(),
        "metrics": registry.snapshot(),
        "spans": tracer.export(),
        "digest": digest,
    }


# -- engine ------------------------------------------------------------------


def _interval_fn(checkpoint_interval) -> Callable[[RunSpec], int]:
    if callable(checkpoint_interval):
        return checkpoint_interval
    return lambda spec: int(checkpoint_interval)


def sweep(
    specs: Sequence[RunSpec],
    config: Optional[MachineConfig] = None,
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    profiler: Optional[PhaseProfiler] = None,
    checkpoint_interval=0,
    profile_phases: bool = False,
    on_checkpoint_for: Optional[Callable[[RunSpec], Optional[Callable]]] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    on_outcome: Optional[Callable[[SweepOutcome], None]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    store: Optional[RunStore] = None,
) -> List[SweepOutcome]:
    """Execute ``specs`` (cache-aware, fault-tolerant, optionally parallel).

    .. deprecated:: ISSUE 7
        ``sweep()`` is the legacy batch entry point, kept as a thin
        adapter over the streaming engine.  New code should construct
        an :class:`~repro.harness.session.ExperimentSession` and use
        :meth:`~repro.harness.session.ExperimentSession.stream` /
        :meth:`~repro.harness.session.ExperimentSession.sweep`, which
        add generator sources, bounded-memory intake, and multi-host
        queue draining.  No runtime warning is emitted (the shim is
        exact), but no new capability will be added here.

    Returns one :class:`SweepOutcome` per input spec, in input order;
    duplicate specs share one execution.  ``checkpoint_interval`` is an
    int or a ``spec -> int`` callable.  ``on_checkpoint_for`` supplies
    per-spec heartbeat callbacks and only applies to inline execution
    (callbacks cannot cross the process boundary); pooled sweeps report
    completion through ``on_outcome`` instead, which fires once per
    unique spec in input order.

    Results are bit-identical between ``workers=0`` and ``workers=N``
    and under any recoverable fault schedule: execution is
    deterministic per spec, retries re-run the identical computation,
    and merging happens in input order.  A spec whose every attempt
    fails is **quarantined** — its outcome carries a
    :class:`FailedRun` (``outcome.failure``) instead of a result, and
    the rest of the sweep completes normally.  Pass
    ``retry=RetryPolicy(max_attempts=1)`` to fail fast; ``retry=None``
    selects :data:`DEFAULT_RETRY`.

    With a ``tracer``, the sweep records a ``sweep → spec → attempt →
    phase`` span tree whose structure (names, ids, parents) is
    identical between sequential and pooled execution — workers capture
    their attempt subtree pickle-safely and the parent adopts it on
    merge.  With a ``store``, every completed run (and quarantined
    spec) is committed to the SQLite run store as it finishes, via the
    same commit-as-you-go discipline as the result cache.
    """
    from .scheduler import AsyncScheduler  # local import: avoids a cycle

    normalized = [spec.normalized() for spec in specs]
    unique = list(dict.fromkeys(normalized))
    scheduler = AsyncScheduler(
        config,
        workers=workers,
        cache=cache,
        events=events,
        profiler=profiler,
        checkpoint_interval=checkpoint_interval,
        profile_phases=profile_phases,
        on_checkpoint_for=on_checkpoint_for,
        program_cache=program_cache,
        retry=retry,
        faults=faults,
        tracer=tracer,
        store=store,
    )
    outcomes: Dict[RunSpec, SweepOutcome] = {
        outcome.spec: outcome
        for outcome in scheduler.stream(unique,
                                        sweep_key=_sweep_key(normalized),
                                        total=len(normalized))
    }
    ordered = [outcomes[spec] for spec in normalized]
    if on_outcome is not None:
        seen = set()
        for outcome in ordered:
            if outcome.spec not in seen:
                seen.add(outcome.spec)
                on_outcome(outcome)
    return ordered
