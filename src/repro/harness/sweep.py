"""Fault-tolerant parallel sweep engine: fan RunSpecs over workers + cache.

The harness's experiment suite is sweep-shaped — many independent
(workload, mode, DRC-size) simulations whose results are only combined
at reporting time.  :func:`sweep` executes a list of
:class:`~repro.harness.spec.RunSpec`\\ s:

1. deduplicating normalized specs,
2. serving anything already in the on-disk
   :class:`~repro.harness.resultcache.ResultCache`,
3. fanning the rest over a ``concurrent.futures.ProcessPoolExecutor``
   (``workers >= 2``) or running them inline (``workers <= 1``), and
4. merging worker observability back into the parent: buffered event
   records are replayed into the parent's
   :class:`~repro.obs.events.EventLog` (file sinks stay single-writer),
   profiler phase totals fold into the parent's
   :class:`~repro.obs.profile.PhaseProfiler`, and metrics snapshots
   merge into the process-global registry.

Every execution path funnels through :func:`execute_spec`, so a pooled
sweep produces **bit-identical** results to a sequential one: each spec
fully determines its program (seeded randomization) and simulation, and
outcomes are merged in input order regardless of completion order.

Fault tolerance (ISSUE 4)
-------------------------

A sweep at scale must survive its own components failing.  The engine
guarantees, under a :class:`RetryPolicy` (on by default):

* **Retries with backoff** — an attempt that raises, times out, or
  returns a corrupt payload is retried up to ``max_attempts`` times
  with exponential backoff; the winning attempt's result is identical
  to a clean run's (execution is deterministic per spec).
* **Soft timeouts** — with ``timeout`` set, an attempt that produces no
  result in time is abandoned (its late result is still accepted if it
  arrives before a retry wins) and retried; if every worker is wedged,
  the pool is recycled.
* **Crash recovery** — a dying worker process breaks the whole
  ``ProcessPoolExecutor``; the engine rebuilds the pool and re-enqueues
  only the specs that were in flight.  Because the culprit cannot be
  identified from the wreckage, crash-involved specs are retried one at
  a time in a separate single-worker *probe* pool, so a poisoned spec
  can only crash itself: innocent bystanders complete on their probe,
  the poisoned spec exhausts its attempts and is **quarantined** as a
  :class:`FailedRun` (captured traceback and all) instead of sinking
  the sweep or wrongly quarantining its neighbours.
* **Result integrity** — workers ship a SHA-256 digest of each result;
  the parent re-derives it and treats a mismatch as a failed attempt.
* **Resumability** — results are committed to the on-disk cache *as
  they complete* (not at merge time), so a killed sweep's finished work
  is preserved and a re-invoked sweep picks up where it stopped.
* **Idempotent observability** — worker snapshots are tagged with their
  attempt id and merged exactly once per spec (the winning attempt
  only), so a retried spec can never double-count events, metrics, or
  phase totals in the parent.

Failures and retries surface through the process-global metrics
registry (``sweep.retries``, ``sweep.timeouts``, ``sweep.quarantined``,
``sweep.pool_rebuilds``, ``sweep.requeued``, ``sweep.corrupt_results``,
``sweep.cache_write_errors``, ``sweep.duplicates_ignored``) and the
event log (``run_retry``, ``run_failed``, ``pool_rebuild`` records).
Deterministic fault injection for all of the above lives in
:mod:`repro.harness.faults`.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from collections import deque
from concurrent.futures import CancelledError, FIRST_COMPLETED
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import CycleCPU
from ..emu import ILREmulator
from ..ilr import RandomizedProgram, RandomizerConfig, make_flow, randomize
from ..obs.events import EventLog, MemorySink
from ..obs.metrics import get_registry
from ..obs.profile import PhaseProfiler
from ..obs.store import RunStore
from ..obs.trace import NULL_TRACER, Tracer, rollup_spans, span_id_for_key
from ..workloads import build_image
from .faults import FaultPlan, apply_inline_fault, apply_worker_fault
from .resultcache import ResultCache
from .spec import RunSpec, config_fingerprint

__all__ = [
    "sweep",
    "execute_spec",
    "build_program",
    "SweepOutcome",
    "RetryPolicy",
    "FailedRun",
    "FailedRunError",
    "DEFAULT_RETRY",
]

#: Key of one randomized program build: workload identity + everything
#: the randomizer consumes.
ProgramKey = Tuple[str, int, float]

#: Poll granularity of the pooled dispatcher (seconds).  Bounds how
#: stale timeout checks and retry promotions can be; completions are
#: still reaped the moment they happen inside a tick.
_TICK = 0.05

#: What a ``corrupt`` fault leaves where the result should be.
_CORRUPT_SENTINEL = "\x00corrupt-result\x00"


def program_key(spec: RunSpec) -> ProgramKey:
    return (spec.workload, spec.seed, spec.scale)


def _spec_key(spec: RunSpec) -> str:
    """Content key of a normalized spec — the span key of its trace
    node, and identical to :meth:`RunStore.spec_key` so store rows and
    trace spans cross-reference.  Computed the same way in workers and
    the parent, which is what makes worker-captured spans land on the
    exact ids a sequential sweep would have derived."""
    return RunStore.spec_key(spec)


def _sweep_key(specs: Sequence[RunSpec]) -> str:
    """Content key of a whole sweep: the ordered spec-key list."""
    digest = hashlib.sha256(
        "|".join(_spec_key(spec) for spec in specs).encode()
    ).hexdigest()[:16]
    return "sweep:" + digest


def build_program(
    spec: RunSpec,
    profiler: Optional[PhaseProfiler] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    tracer: Optional[Tracer] = None,
) -> RandomizedProgram:
    """Build + randomize the workload a spec names (memoized).

    Deterministic in ``(workload, seed, scale)``, which is what makes
    worker-side rebuilds safe: a program built in a pool worker is
    byte-identical to one built in the parent.

    The ``build``/``randomize`` spans are emitted on *every* call —
    memo hits included (near-zero duration) — because memo residency is
    execution-placement-dependent (the parent memoizes across specs;
    each pool worker has its own memo) and the span *tree* must be
    identical regardless of where a spec ran.  The profiler keeps its
    original miss-only semantics: phase totals measure work done.
    """
    tracer = tracer or NULL_TRACER
    key = program_key(spec)
    if program_cache is not None and key in program_cache:
        with tracer.span("build"):
            pass
        with tracer.span("randomize"):
            pass
        return program_cache[key]
    profiler = profiler or PhaseProfiler()
    with tracer.span("build"), \
            profiler.phase("build", workload=spec.workload):
        image = build_image(spec.workload, scale=spec.scale)
    with tracer.span("randomize"), \
            profiler.phase("randomize", workload=spec.workload):
        program = randomize(image, RandomizerConfig(seed=spec.seed))
    if program_cache is not None:
        program_cache[key] = program
    return program


def execute_spec(
    spec: RunSpec,
    config: Optional[MachineConfig] = None,
    *,
    events: Optional[EventLog] = None,
    checkpoint_interval: int = 0,
    on_checkpoint=None,
    profiler: Optional[PhaseProfiler] = None,
    profile_phases: bool = False,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    tracer: Optional[Tracer] = None,
):
    """Execute one spec from scratch (no caches consulted).

    The single definition of "run this spec" shared by the sequential
    runner and the pool workers.  Returns a
    :class:`~repro.arch.simstats.SimResult` for simulator modes or an
    :class:`~repro.emu.EmulationResult` for ``emulate``.
    """
    spec = spec.normalized()
    config = config or default_config()
    events = events if events is not None else EventLog()
    profiler = profiler or PhaseProfiler(events)
    tracer = tracer or NULL_TRACER
    program = build_program(spec, profiler, program_cache, tracer)

    if spec.mode == "emulate":
        with tracer.span("emulate"), \
                profiler.phase("emulate", workload=spec.workload):
            return ILREmulator(
                program,
                max_instructions=spec.max_instructions,
                events=events,
                checkpoint_interval=checkpoint_interval,
                event_fields=spec.event_fields(),
            ).run()

    image = {
        "baseline": program.original,
        "naive_ilr": program.naive_image,
        "vcfr": program.vcfr_image,
    }[spec.mode]
    if spec.mode == "vcfr":
        config = config.with_drc_entries(spec.drc_entries)
    cpu = CycleCPU(
        image,
        make_flow(spec.mode, program),
        config,
        events=events,
        checkpoint_interval=checkpoint_interval,
        on_checkpoint=on_checkpoint,
        event_fields=spec.event_fields(),
    )
    with tracer.span("simulate"), \
            profiler.phase("simulate", workload=spec.workload,
                           mode=spec.mode):
        if profile_phases:
            return cpu.run_profiled(
                spec.max_instructions,
                spec.warmup_instructions,
                profiler=profiler,
            )
        return cpu.run(spec.max_instructions, spec.warmup_instructions)


# -- fault-tolerance vocabulary ----------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the sweep engine fights for each spec.

    ``max_attempts`` bounds total executions of one spec (first try
    included); ``timeout`` is a *soft* per-attempt deadline in seconds
    (None disables timeout handling); retry *n* is delayed by
    ``backoff * backoff_factor ** (n - 1)`` seconds.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff * self.backoff_factor ** max(0, attempt - 1)


#: The default policy: three attempts, mild backoff, no timeout (a
#: timeout needs workload knowledge the engine does not have).
DEFAULT_RETRY = RetryPolicy()


@dataclass
class FailedRun:
    """A quarantined spec: every attempt failed; the sweep moved on."""

    spec: RunSpec
    attempts: int
    #: failure class of the final attempt: ``error`` (task raised),
    #: ``crash`` (worker process died), ``timeout``, or ``corrupt``.
    kind: str
    error: str
    traceback: str = ""

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict(),
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "traceback": self.traceback,
        }


class FailedRunError(RuntimeError):
    """Raised when a caller demands the result of a quarantined spec."""

    def __init__(self, failure: FailedRun):
        super().__init__(
            "%s failed after %d attempt(s) [%s]: %s"
            % (failure.spec.label(), failure.attempts, failure.kind,
               failure.error)
        )
        self.failure = failure


@dataclass
class SweepOutcome:
    """One spec's result plus the observability captured with it."""

    spec: RunSpec
    result: object
    #: True when served from the on-disk cache (no execution happened).
    cached: bool = False
    #: event records buffered by the worker (empty when run inline —
    #: inline runs emit straight into the parent log).
    events: List[dict] = field(default_factory=list)
    #: executions it took to produce (or give up on) this outcome.
    attempts: int = 1
    #: set when the spec was quarantined; ``result`` is then None.
    failure: Optional[FailedRun] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _result_digest(result) -> str:
    """Integrity digest of a result payload.

    Canonical JSON over ``as_dict()`` — :class:`~repro.arch.simstats.
    SimResult`'s full serialization, :class:`~repro.emu.EmulationResult`'s
    observable-field view (raw pickle bytes are not canonical: identity
    sharing inside the state graph does not survive a process-boundary
    round trip, so emulation results digest their architectural outcome
    and host-cost numbers instead).  Computed in the worker before the
    payload crosses the process boundary and re-derived by the parent on
    receipt.
    """
    as_dict = getattr(result, "as_dict", None)
    if callable(as_dict):
        view = as_dict()
    else:
        view = {"type": type(result).__name__, "repr": repr(result)}
    payload = json.dumps(view, sort_keys=True, default=repr).encode()
    return hashlib.sha256(payload).hexdigest()


def _commit_result(cache, spec, config, result, faults, events,
                   registry) -> None:
    """Commit one finished result to the on-disk cache (non-fatal).

    Called as results complete — not at merge time — so a sweep killed
    mid-run keeps everything already finished.  A failing write (disk
    full, permissions, injected ``cachefail``) must never sink the
    sweep: the result is still returned in-memory, the spec simply gets
    recomputed on resume.
    """
    if cache is None:
        return
    try:
        if faults is not None and faults.cache_write_fails(spec.label()):
            raise OSError("injected cache write failure")
        cache.put(spec, config, result)
    except OSError as exc:
        registry.counter("sweep.cache_write_errors").inc()
        events.status("cache write failed", error=str(exc),
                      mode=spec.mode, **spec.event_fields())


# -- pool worker -------------------------------------------------------------

#: Per-worker-process program memo: tasks for the same workload landing
#: on the same worker skip the rebuild, mirroring the parent's memo.
_WORKER_PROGRAMS: Dict[ProgramKey, RandomizedProgram] = {}


def _pool_task(spec_dict: dict, config: MachineConfig,
               checkpoint_interval: int, profile_phases: bool,
               attempt: int = 0, faults: Optional[FaultPlan] = None,
               trace: bool = False):
    """Execute one spec attempt in a pool worker.

    Events are buffered in a :class:`MemorySink` (file sinks are
    single-writer; see :meth:`EventLog.replay`); profiler phases, a
    per-task metrics snapshot, exported trace spans (when the parent is
    tracing), the attempt id, and a result-integrity digest ride back
    with the result for the parent to verify and merge exactly once.
    Module-level so the pool can pickle it.
    """
    spec = RunSpec.from_dict(spec_dict)
    action = apply_worker_fault(faults, spec.label(), attempt)
    registry = get_registry()
    registry.reset()  # isolate this task's delta in a reused worker
    sink = MemorySink()
    log = EventLog(sink)
    profiler = PhaseProfiler(log)
    # The worker roots its capture at the attempt span, keyed exactly as
    # the sequential path keys it, so the parent's adopt() grafts it
    # onto the same ids an inline sweep would have derived.
    tracer = Tracer(enabled=trace)
    with tracer.span("attempt", span_key=_spec_key(spec) + "#%d" % attempt,
                     attempt=attempt):
        result = execute_spec(
            spec,
            config,
            events=log,
            checkpoint_interval=checkpoint_interval,
            profiler=profiler,
            profile_phases=profile_phases,
            program_cache=_WORKER_PROGRAMS,
            tracer=tracer,
        )
    digest = _result_digest(result)
    if action == "corrupt":
        result = _CORRUPT_SENTINEL
    return {
        "attempt": attempt,
        "result": result,
        "records": sink.records,
        "phases": profiler.snapshot(),
        "metrics": registry.snapshot(),
        "spans": tracer.export(),
        "digest": digest,
    }


# -- engine ------------------------------------------------------------------


def _interval_fn(checkpoint_interval) -> Callable[[RunSpec], int]:
    if callable(checkpoint_interval):
        return checkpoint_interval
    return lambda spec: int(checkpoint_interval)


def sweep(
    specs: Sequence[RunSpec],
    config: Optional[MachineConfig] = None,
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    profiler: Optional[PhaseProfiler] = None,
    checkpoint_interval=0,
    profile_phases: bool = False,
    on_checkpoint_for: Optional[Callable[[RunSpec], Optional[Callable]]] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    on_outcome: Optional[Callable[[SweepOutcome], None]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    store: Optional[RunStore] = None,
) -> List[SweepOutcome]:
    """Execute ``specs`` (cache-aware, fault-tolerant, optionally parallel).

    Returns one :class:`SweepOutcome` per input spec, in input order;
    duplicate specs share one execution.  ``checkpoint_interval`` is an
    int or a ``spec -> int`` callable.  ``on_checkpoint_for`` supplies
    per-spec heartbeat callbacks and only applies to inline execution
    (callbacks cannot cross the process boundary); pooled sweeps report
    completion through ``on_outcome`` instead, which fires for every
    outcome in merge order.

    Results are bit-identical between ``workers=0`` and ``workers=N``
    and under any recoverable fault schedule: execution is
    deterministic per spec, retries re-run the identical computation,
    and merging happens in input order.  A spec whose every attempt
    fails is **quarantined** — its outcome carries a
    :class:`FailedRun` (``outcome.failure``) instead of a result, and
    the rest of the sweep completes normally.  Pass
    ``retry=RetryPolicy(max_attempts=1)`` to fail fast; ``retry=None``
    selects :data:`DEFAULT_RETRY`.

    With a ``tracer``, the sweep records a ``sweep → spec → attempt →
    phase`` span tree whose structure (names, ids, parents) is
    identical between sequential and pooled execution — workers capture
    their attempt subtree pickle-safely and the parent adopts it on
    merge.  With a ``store``, every completed run (and quarantined
    spec) is committed to the SQLite run store as it finishes, via the
    same commit-as-you-go discipline as the result cache.
    """
    config = config or default_config()
    events = events if events is not None else EventLog()
    profiler = profiler or PhaseProfiler(events)
    retry = retry or DEFAULT_RETRY
    tracer = tracer or NULL_TRACER
    interval_for = _interval_fn(checkpoint_interval)
    config_digest = config_fingerprint(config) if store is not None else ""

    normalized = [spec.normalized() for spec in specs]
    with tracer.span("sweep", span_key=_sweep_key(normalized),
                     specs=len(normalized)):
        outcomes: Dict[RunSpec, SweepOutcome] = {}
        todo: List[RunSpec] = []
        for spec in normalized:
            if spec in outcomes or spec in todo:
                continue
            cached = cache.get(spec, config) if cache is not None else None
            if cached is not None:
                events.status("run cached", mode=spec.mode,
                              **spec.event_fields())
                with tracer.span("spec", span_key=_spec_key(spec),
                                 label=spec.label()):
                    pass
                events.emit("spec_done", mode=spec.mode, cached=True,
                            attempts=0, **spec.event_fields())
                if store is not None:
                    store.record_run(spec, cached,
                                     config_digest=config_digest,
                                     cached=True, attempts=0)
                outcomes[spec] = SweepOutcome(spec, cached, cached=True)
            else:
                todo.append(spec)

        if todo and workers >= 2:
            _run_pooled(todo, config, workers, cache, events, profiler,
                        interval_for, profile_phases, outcomes, retry,
                        faults, tracer, store, config_digest)
        else:
            _run_inline(todo, config, cache, events, profiler, interval_for,
                        profile_phases, on_checkpoint_for, program_cache,
                        outcomes, retry, faults, tracer, store,
                        config_digest)

    ordered = [outcomes[spec] for spec in normalized]
    if on_outcome is not None:
        seen = set()
        for outcome in ordered:
            if outcome.spec not in seen:
                seen.add(outcome.spec)
                on_outcome(outcome)
    return ordered


def _run_inline(todo, config, cache, events, profiler, interval_for,
                profile_phases, on_checkpoint_for, program_cache,
                outcomes, retry, faults, tracer=None, store=None,
                config_digest="") -> None:
    """Sequential execution with the same retry/quarantine contract.

    Inline attempts emit straight into the parent's observability (that
    is the point of inline mode), so a failed attempt's partial events
    stay in the log — tagged by their run, they are harmless to offline
    grouping.  Results and the quarantine behaviour are identical to
    the pooled path.
    """
    registry = get_registry()
    tracer = tracer or NULL_TRACER
    for spec in todo:
        on_checkpoint = (
            on_checkpoint_for(spec) if on_checkpoint_for else None
        )
        key = _spec_key(spec)
        started = time.perf_counter()
        with tracer.span("spec", span_key=key, label=spec.label()):
            attempt = 0
            result = failure = None
            while True:
                events.emit("spec_dispatch", mode=spec.mode,
                            attempt=attempt, **spec.event_fields())
                try:
                    # Injected at-dispatch faults fail *before* the
                    # attempt span opens, matching the pooled path
                    # (a worker that dies leaves no attempt subtree).
                    if faults is not None:
                        apply_inline_fault(faults, spec.label(), attempt)
                    with tracer.span("attempt",
                                     span_key=key + "#%d" % attempt,
                                     attempt=attempt):
                        result = execute_spec(
                            spec,
                            config,
                            events=events,
                            checkpoint_interval=interval_for(spec),
                            on_checkpoint=on_checkpoint,
                            profiler=profiler,
                            profile_phases=profile_phases,
                            program_cache=program_cache,
                            tracer=tracer,
                        )
                except Exception as exc:
                    kind = getattr(exc, "kind", "error")
                    detail = traceback.format_exc()
                    nxt = attempt + 1
                    if nxt >= retry.max_attempts:
                        failure = FailedRun(spec, nxt, kind, repr(exc),
                                            detail)
                        registry.counter("sweep.quarantined").inc()
                        events.emit("run_failed", mode=spec.mode,
                                    attempts=nxt, reason=kind,
                                    error=repr(exc), **spec.event_fields())
                        outcomes[spec] = SweepOutcome(
                            spec, None, attempts=nxt, failure=failure
                        )
                        break
                    registry.counter("sweep.retries").inc()
                    events.emit("run_retry", mode=spec.mode, attempt=nxt,
                                reason=kind, error=repr(exc),
                                **spec.event_fields())
                    delay = retry.delay(nxt)
                    time.sleep(delay)
                    tracer.add_span("retry-wait", delay,
                                    span_key=key + "#wait%d" % nxt,
                                    attempt=nxt)
                    attempt = nxt
                    continue
                _commit_result(cache, spec, config, result, faults, events,
                               registry)
                outcomes[spec] = SweepOutcome(spec, result,
                                              attempts=attempt + 1)
                break
        host_seconds = time.perf_counter() - started
        if failure is not None:
            if store is not None:
                store.record_failure(spec, failure.error,
                                     config_digest=config_digest,
                                     attempts=failure.attempts)
            continue
        events.emit("spec_done", mode=spec.mode, cached=False,
                    attempts=attempt + 1, **spec.event_fields())
        if store is not None:
            # Roll up the *winning attempt's* subtree (not the whole
            # spec span), matching what a pooled worker ships back.
            rollup = None
            if tracer.enabled:
                rollup = rollup_spans(tracer.subtree(
                    span_id_for_key(key + "#%d" % attempt)))
            store.record_run(spec, result, config_digest=config_digest,
                             attempts=attempt + 1,
                             host_seconds=host_seconds, spans=rollup)


def _run_pooled(todo, config, workers, cache, events, profiler,
                interval_for, profile_phases, outcomes, retry,
                faults, tracer=None, store=None, config_digest="") -> None:
    """Fan ``todo`` over a process pool; merge results in input order."""
    registry = get_registry()
    tracer = tracer or NULL_TRACER
    dispatcher = _PoolDispatcher(todo, config, workers, cache, events,
                                 registry, interval_for, profile_phases,
                                 retry, faults, tracer, store,
                                 config_digest)
    payloads, failures = dispatcher.run()

    # Merge in *input order*, exactly once per spec, from the winning
    # attempt only — completion order, retries, and duplicate late
    # results can never reorder or double-count the merged stream.
    for spec in todo:
        key = _spec_key(spec)
        with tracer.span("spec", span_key=key, label=spec.label()):
            pass
        failure = failures.get(spec)
        if failure is not None:
            outcomes[spec] = SweepOutcome(
                spec, None, attempts=failure.attempts, failure=failure
            )
            continue
        payload = payloads[spec]
        attempt = payload["attempt"]
        if attempt:
            events.replay(payload["records"], attempt=attempt)
        else:
            events.replay(payload["records"])
        profiler.merge_snapshot(payload["phases"])
        registry.merge_snapshot(payload["metrics"])
        # Graft the worker-captured attempt subtree under the spec span
        # it belongs to; the worker derived the same content ids the
        # sequential path would, so the merged tree is identical.
        tracer.adopt(payload.get("spans", ()),
                     parent_id=span_id_for_key(key))
        outcomes[spec] = SweepOutcome(
            spec, payload["result"], events=payload["records"],
            attempts=attempt + 1,
        )


class _PoolDispatcher:
    """The fault-tolerant pooled execution loop.

    Keeps at most ``workers`` attempts in flight in the main pool (so a
    pool break only ever implicates a known, small set of specs) plus at
    most one attempt in the single-worker *probe* pool used to isolate
    crash-involved specs.  Never raises for a failing spec — failures
    land in ``self.failures`` as :class:`FailedRun`.
    """

    def __init__(self, todo, config, workers, cache, events, registry,
                 interval_for, profile_phases, retry, faults,
                 tracer=None, store=None, config_digest=""):
        self.todo = todo
        self.config = config
        self.nworkers = min(workers, len(todo))
        self.cache = cache
        self.events = events
        self.registry = registry
        self.interval_for = interval_for
        self.profile_phases = profile_phases
        self.retry = retry
        self.faults = faults
        self.tracer = tracer or NULL_TRACER
        self.store = store
        self.config_digest = config_digest
        self._spec_keys: Dict[RunSpec, str] = {}

        self.payloads: Dict[RunSpec, dict] = {}
        self.failures: Dict[RunSpec, FailedRun] = {}
        #: attempts whose failure has been recorded (guards the retry
        #: accounting when one attempt fails through two paths, e.g. a
        #: timeout followed by the abandoned future erroring).
        self.failed_attempts = set()
        self.pending = deque((spec, 0) for spec in todo)
        self.probe_pending = deque()
        self.delayed: List[Tuple[float, RunSpec, int, bool]] = []
        #: future -> (spec, attempt, started_at, is_probe)
        self.inflight: Dict[object, Tuple[RunSpec, int, float, bool]] = {}
        #: timed-out futures we no longer count on (late results are
        #: still accepted if the spec is unresolved when they land).
        self.abandoned: Dict[object, Tuple[RunSpec, int, bool]] = {}
        self.pool: Optional[ProcessPoolExecutor] = None
        self.probe: Optional[ProcessPoolExecutor] = None
        #: timeouts charged against the current main pool; when every
        #: worker is wedged the pool is recycled.
        self.main_wedged = 0

    # -- lifecycle ---------------------------------------------------------

    def run(self):
        self.pool = ProcessPoolExecutor(max_workers=self.nworkers)
        try:
            while len(self.payloads) + len(self.failures) < len(self.todo):
                self._promote_delayed()
                self._submit()
                self._check_timeouts()
                self._drain()
        finally:
            for pool in (self.pool, self.probe):
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
        return self.payloads, self.failures

    def _resolved(self, spec: RunSpec) -> bool:
        return spec in self.payloads or spec in self.failures

    # -- scheduling --------------------------------------------------------

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        keep = []
        for ready_at, spec, attempt, probe in self.delayed:
            if self._resolved(spec):
                continue
            if ready_at <= now:
                queue = self.probe_pending if probe else self.pending
                queue.append((spec, attempt))
            else:
                keep.append((ready_at, spec, attempt, probe))
        self.delayed = keep

    def _submit(self) -> None:
        while self.pending and self._inflight_count(probe=False) < self.nworkers:
            spec, attempt = self.pending.popleft()
            if not self._resolved(spec):
                self._launch(spec, attempt, probe=False)
        while self.probe_pending and self._inflight_count(probe=True) == 0:
            spec, attempt = self.probe_pending.popleft()
            if not self._resolved(spec):
                self._launch(spec, attempt, probe=True)
                break

    def _inflight_count(self, probe: bool) -> int:
        return sum(1 for (_s, _a, _t, p) in self.inflight.values()
                   if p == probe)

    def _key(self, spec: RunSpec) -> str:
        key = self._spec_keys.get(spec)
        if key is None:
            key = self._spec_keys[spec] = _spec_key(spec)
        return key

    def _launch(self, spec: RunSpec, attempt: int, probe: bool) -> None:
        pool = self._probe_pool() if probe else self.pool
        try:
            future = pool.submit(
                _pool_task, spec.as_dict(), self.config,
                self.interval_for(spec), self.profile_phases,
                attempt, self.faults, self.tracer.enabled,
            )
        except BrokenProcessPool:
            # The pool died between drains.  The attempt never started,
            # so requeue it without penalty and recycle the pool.
            queue = self.probe_pending if probe else self.pending
            queue.appendleft((spec, attempt))
            self._handle_break(probe, "submit on broken pool")
            return
        self.inflight[future] = (spec, attempt, time.monotonic(), probe)
        self.events.emit("spec_dispatch", mode=spec.mode, attempt=attempt,
                         probe=probe, **spec.event_fields())

    def _probe_pool(self) -> ProcessPoolExecutor:
        if self.probe is None:
            self.probe = ProcessPoolExecutor(max_workers=1)
        return self.probe

    # -- failure accounting ------------------------------------------------

    def _fail(self, spec: RunSpec, attempt: int, kind: str, error: str,
              detail: str = "", probe_next: bool = False) -> None:
        """Record one failed attempt: schedule a retry or quarantine."""
        if self._resolved(spec) or (spec, attempt) in self.failed_attempts:
            return
        self.failed_attempts.add((spec, attempt))
        nxt = attempt + 1
        if nxt >= self.retry.max_attempts:
            self.failures[spec] = FailedRun(spec, nxt, kind, error, detail)
            self.registry.counter("sweep.quarantined").inc()
            self.events.emit("run_failed", mode=spec.mode, attempts=nxt,
                             reason=kind, error=error, **spec.event_fields())
            if self.store is not None:
                self.store.record_failure(spec, error,
                                          config_digest=self.config_digest,
                                          attempts=nxt)
        else:
            delay = self.retry.delay(nxt)
            ready_at = time.monotonic() + delay
            self.delayed.append((ready_at, spec, nxt, probe_next))
            self.registry.counter("sweep.retries").inc()
            self.events.emit("run_retry", mode=spec.mode, attempt=nxt,
                             reason=kind, error=error, **spec.event_fields())
            # The spec span does not exist yet (it is materialized at
            # merge time), but its id is content-derived, so the wait
            # span can name its parent in advance — landing exactly
            # where the sequential path records it.
            self.tracer.add_span("retry-wait", delay,
                                 parent_id=span_id_for_key(self._key(spec)),
                                 span_key=self._key(spec) + "#wait%d" % nxt,
                                 attempt=nxt)

    def _accept(self, spec: RunSpec, attempt: int, payload: dict,
                probe: bool) -> None:
        """Accept a completed attempt's payload (first result wins)."""
        if self._resolved(spec):
            # A late (abandoned or duplicate) attempt finished after the
            # spec was resolved; merging it again would double-count.
            self.registry.counter("sweep.duplicates_ignored").inc()
            return
        if payload["digest"] != _result_digest(payload["result"]):
            self.registry.counter("sweep.corrupt_results").inc()
            self._fail(spec, attempt, "corrupt",
                       "result payload failed integrity check",
                       probe_next=probe)
            return
        self.payloads[spec] = payload
        _commit_result(self.cache, spec, self.config, payload["result"],
                       self.faults, self.events, self.registry)
        self.events.emit("spec_done", mode=spec.mode, cached=False,
                         attempts=attempt + 1, **spec.event_fields())
        if self.store is not None:
            # Committed as results complete — not at merge time — so a
            # killed sweep's store matches its cache.
            spans = payload.get("spans") or None
            rollup = rollup_spans(spans) if spans else None
            host = sum(entry["seconds"]
                       for entry in payload["phases"].values())
            self.store.record_run(
                spec, payload["result"], config_digest=self.config_digest,
                attempts=attempt + 1, host_seconds=host, spans=rollup,
            )

    # -- timeouts ----------------------------------------------------------

    def _check_timeouts(self) -> None:
        timeout = self.retry.timeout
        if not timeout:
            return
        now = time.monotonic()
        for future, (spec, attempt, started, probe) in list(
                self.inflight.items()):
            if now - started <= timeout:
                continue
            del self.inflight[future]
            self.abandoned[future] = (spec, attempt, probe)
            self.registry.counter("sweep.timeouts").inc()
            self._fail(spec, attempt, "timeout",
                       "no result after %.2fs" % timeout, probe_next=probe)
            if not probe:
                self.main_wedged += 1
        if self.main_wedged >= self.nworkers:
            # Every main worker is occupied by a wedged attempt: recycle
            # the pool so retries have somewhere to run.
            self._handle_break(probe=False, reason="all workers wedged")

    # -- completion --------------------------------------------------------

    def _drain(self) -> None:
        waitables = set(self.inflight) | set(self.abandoned)
        if not waitables:
            if self.delayed and not self.pending and not self.probe_pending:
                now = time.monotonic()
                next_ready = min(entry[0] for entry in self.delayed)
                time.sleep(min(_TICK, max(0.0, next_ready - now)))
            elif not (self.pending or self.probe_pending or self.delayed):
                if len(self.payloads) + len(self.failures) < len(self.todo):
                    raise RuntimeError(
                        "sweep dispatcher stalled with unresolved specs "
                        "(this is a bug)"
                    )
            return
        done, _not_done = wait(waitables, timeout=_TICK,
                               return_when=FIRST_COMPLETED)
        broken = set()
        for future in done:
            if future in self.inflight:
                spec, attempt, _started, probe = self.inflight.pop(future)
                was_abandoned = False
            else:
                spec, attempt, probe = self.abandoned.pop(future)
                was_abandoned = True
            try:
                exc = future.exception()
            except CancelledError:
                continue
            if exc is None:
                self._accept(spec, attempt, future.result(), probe)
            elif isinstance(exc, BrokenProcessPool):
                if not was_abandoned:
                    self.registry.counter("sweep.requeued").inc()
                    self._fail(spec, attempt, "crash",
                               "worker process died: %s" % exc,
                               probe_next=True)
                broken.add(probe)
            elif not was_abandoned:
                detail = "".join(traceback.format_exception(
                    type(exc), exc, exc.__traceback__))
                self._fail(spec, attempt, getattr(exc, "kind", "error"),
                           repr(exc), detail, probe_next=probe)
        for probe in broken:
            self._handle_break(probe, "worker crash")

    # -- pool recovery -----------------------------------------------------

    def _handle_break(self, probe: bool, reason: str) -> None:
        """Replace a broken pool; re-enqueue only in-flight specs.

        Specs in flight on a broken *main* pool are collateral of an
        unidentifiable culprit, so each is charged one attempt and
        retried in the single-worker probe pool where the only process
        it can crash is its own.  A probe break implicates exactly one
        spec, so attribution is certain either way.
        """
        victims = [
            (future, spec, attempt)
            for future, (spec, attempt, _t, p) in self.inflight.items()
            if p == probe
        ]
        for future, spec, attempt in victims:
            del self.inflight[future]
            self.registry.counter("sweep.requeued").inc()
            self._fail(spec, attempt, "crash",
                       "worker pool broke while in flight",
                       probe_next=True)
        old = self.probe if probe else self.pool
        if probe:
            self.probe = None  # rebuilt lazily on next probe submit
        else:
            self.pool = ProcessPoolExecutor(max_workers=self.nworkers)
            self.main_wedged = 0
        self.registry.counter("sweep.pool_rebuilds").inc()
        self.events.emit("pool_rebuild", pool="probe" if probe else "main",
                         reason=reason)
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
