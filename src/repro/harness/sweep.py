"""Parallel sweep engine: fan RunSpecs over worker processes + cache.

The harness's experiment suite is sweep-shaped — many independent
(workload, mode, DRC-size) simulations whose results are only combined
at reporting time.  :func:`sweep` executes a list of
:class:`~repro.harness.spec.RunSpec`\\ s:

1. deduplicating normalized specs,
2. serving anything already in the on-disk
   :class:`~repro.harness.resultcache.ResultCache`,
3. fanning the rest over a ``concurrent.futures.ProcessPoolExecutor``
   (``workers >= 2``) or running them inline (``workers <= 1``), and
4. merging worker observability back into the parent: buffered event
   records are replayed into the parent's
   :class:`~repro.obs.events.EventLog` (file sinks stay single-writer),
   profiler phase totals fold into the parent's
   :class:`~repro.obs.profile.PhaseProfiler`, and metrics snapshots
   merge into the process-global registry.

Every execution path funnels through :func:`execute_spec`, so a pooled
sweep produces **bit-identical** results to a sequential one: each spec
fully determines its program (seeded randomization) and simulation, and
outcomes are merged in input order regardless of completion order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import CycleCPU
from ..emu import ILREmulator
from ..ilr import RandomizedProgram, RandomizerConfig, make_flow, randomize
from ..obs.events import EventLog, MemorySink
from ..obs.metrics import get_registry
from ..obs.profile import PhaseProfiler
from ..workloads import build_image
from .resultcache import ResultCache
from .spec import RunSpec

__all__ = ["sweep", "execute_spec", "build_program", "SweepOutcome"]

#: Key of one randomized program build: workload identity + everything
#: the randomizer consumes.
ProgramKey = Tuple[str, int, float]


def program_key(spec: RunSpec) -> ProgramKey:
    return (spec.workload, spec.seed, spec.scale)


def build_program(
    spec: RunSpec,
    profiler: Optional[PhaseProfiler] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
) -> RandomizedProgram:
    """Build + randomize the workload a spec names (memoized).

    Deterministic in ``(workload, seed, scale)``, which is what makes
    worker-side rebuilds safe: a program built in a pool worker is
    byte-identical to one built in the parent.
    """
    key = program_key(spec)
    if program_cache is not None and key in program_cache:
        return program_cache[key]
    profiler = profiler or PhaseProfiler()
    with profiler.phase("build", workload=spec.workload):
        image = build_image(spec.workload, scale=spec.scale)
    with profiler.phase("randomize", workload=spec.workload):
        program = randomize(image, RandomizerConfig(seed=spec.seed))
    if program_cache is not None:
        program_cache[key] = program
    return program


def execute_spec(
    spec: RunSpec,
    config: Optional[MachineConfig] = None,
    *,
    events: Optional[EventLog] = None,
    checkpoint_interval: int = 0,
    on_checkpoint=None,
    profiler: Optional[PhaseProfiler] = None,
    profile_phases: bool = False,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
):
    """Execute one spec from scratch (no caches consulted).

    The single definition of "run this spec" shared by the sequential
    runner and the pool workers.  Returns a
    :class:`~repro.arch.simstats.SimResult` for simulator modes or an
    :class:`~repro.emu.EmulationResult` for ``emulate``.
    """
    spec = spec.normalized()
    config = config or default_config()
    events = events if events is not None else EventLog()
    profiler = profiler or PhaseProfiler(events)
    program = build_program(spec, profiler, program_cache)

    if spec.mode == "emulate":
        with profiler.phase("emulate", workload=spec.workload):
            return ILREmulator(
                program,
                max_instructions=spec.max_instructions,
                events=events,
                checkpoint_interval=checkpoint_interval,
                event_fields=spec.event_fields(),
            ).run()

    image = {
        "baseline": program.original,
        "naive_ilr": program.naive_image,
        "vcfr": program.vcfr_image,
    }[spec.mode]
    if spec.mode == "vcfr":
        config = config.with_drc_entries(spec.drc_entries)
    cpu = CycleCPU(
        image,
        make_flow(spec.mode, program),
        config,
        events=events,
        checkpoint_interval=checkpoint_interval,
        on_checkpoint=on_checkpoint,
        event_fields=spec.event_fields(),
    )
    with profiler.phase("simulate", workload=spec.workload, mode=spec.mode):
        if profile_phases:
            return cpu.run_profiled(
                spec.max_instructions,
                spec.warmup_instructions,
                profiler=profiler,
            )
        return cpu.run(spec.max_instructions, spec.warmup_instructions)


@dataclass
class SweepOutcome:
    """One spec's result plus the observability captured with it."""

    spec: RunSpec
    result: object
    #: True when served from the on-disk cache (no execution happened).
    cached: bool = False
    #: event records buffered by the worker (empty when run inline —
    #: inline runs emit straight into the parent log).
    events: List[dict] = field(default_factory=list)


# -- pool worker -------------------------------------------------------------

#: Per-worker-process program memo: tasks for the same workload landing
#: on the same worker skip the rebuild, mirroring the parent's memo.
_WORKER_PROGRAMS: Dict[ProgramKey, RandomizedProgram] = {}


def _pool_task(spec_dict: dict, config: MachineConfig,
               checkpoint_interval: int, profile_phases: bool):
    """Execute one spec in a pool worker.

    Events are buffered in a :class:`MemorySink` (file sinks are
    single-writer; see :meth:`EventLog.replay`), profiler phases and a
    per-task metrics snapshot ride back with the result for the parent
    to merge.  Module-level so the pool can pickle it.
    """
    spec = RunSpec.from_dict(spec_dict)
    registry = get_registry()
    registry.reset()  # isolate this task's delta in a reused worker
    sink = MemorySink()
    log = EventLog(sink)
    profiler = PhaseProfiler(log)
    result = execute_spec(
        spec,
        config,
        events=log,
        checkpoint_interval=checkpoint_interval,
        profiler=profiler,
        profile_phases=profile_phases,
        program_cache=_WORKER_PROGRAMS,
    )
    return result, sink.records, profiler.snapshot(), registry.snapshot()


# -- engine ------------------------------------------------------------------


def _interval_fn(checkpoint_interval) -> Callable[[RunSpec], int]:
    if callable(checkpoint_interval):
        return checkpoint_interval
    return lambda spec: int(checkpoint_interval)


def sweep(
    specs: Sequence[RunSpec],
    config: Optional[MachineConfig] = None,
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    events: Optional[EventLog] = None,
    profiler: Optional[PhaseProfiler] = None,
    checkpoint_interval=0,
    profile_phases: bool = False,
    on_checkpoint_for: Optional[Callable[[RunSpec], Optional[Callable]]] = None,
    program_cache: Optional[Dict[ProgramKey, RandomizedProgram]] = None,
    on_outcome: Optional[Callable[[SweepOutcome], None]] = None,
) -> List[SweepOutcome]:
    """Execute ``specs`` (cache-aware, optionally in parallel).

    Returns one :class:`SweepOutcome` per input spec, in input order;
    duplicate specs share one execution.  ``checkpoint_interval`` is an
    int or a ``spec -> int`` callable.  ``on_checkpoint_for`` supplies
    per-spec heartbeat callbacks and only applies to inline execution
    (callbacks cannot cross the process boundary); pooled sweeps report
    completion through ``on_outcome`` instead, which fires for every
    outcome in merge order.

    Results are bit-identical between ``workers=0`` and ``workers=N``:
    execution is deterministic per spec and merging happens in input
    order.
    """
    config = config or default_config()
    events = events if events is not None else EventLog()
    profiler = profiler or PhaseProfiler(events)
    interval_for = _interval_fn(checkpoint_interval)

    normalized = [spec.normalized() for spec in specs]
    outcomes: Dict[RunSpec, SweepOutcome] = {}
    todo: List[RunSpec] = []
    for spec in normalized:
        if spec in outcomes or spec in todo:
            continue
        cached = cache.get(spec, config) if cache is not None else None
        if cached is not None:
            events.status("run cached", mode=spec.mode,
                          **spec.event_fields())
            outcomes[spec] = SweepOutcome(spec, cached, cached=True)
        else:
            todo.append(spec)

    if todo and workers >= 2:
        _run_pooled(todo, config, workers, cache, events, profiler,
                    interval_for, profile_phases, outcomes)
    else:
        for spec in todo:
            on_checkpoint = (
                on_checkpoint_for(spec) if on_checkpoint_for else None
            )
            result = execute_spec(
                spec,
                config,
                events=events,
                checkpoint_interval=interval_for(spec),
                on_checkpoint=on_checkpoint,
                profiler=profiler,
                profile_phases=profile_phases,
                program_cache=program_cache,
            )
            if cache is not None:
                cache.put(spec, config, result)
            outcomes[spec] = SweepOutcome(spec, result)

    ordered = [outcomes[spec] for spec in normalized]
    if on_outcome is not None:
        seen = set()
        for outcome in ordered:
            if outcome.spec not in seen:
                seen.add(outcome.spec)
                on_outcome(outcome)
    return ordered


def _run_pooled(todo, config, workers, cache, events, profiler,
                interval_for, profile_phases, outcomes) -> None:
    """Fan ``todo`` over a process pool; merge results in input order."""
    registry = get_registry()
    with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
        futures = [
            pool.submit(_pool_task, spec.as_dict(), config,
                        interval_for(spec), profile_phases)
            for spec in todo
        ]
        for spec, future in zip(todo, futures):
            result, records, phases, metrics = future.result()
            events.replay(records)
            profiler.merge_snapshot(phases)
            registry.merge_snapshot(metrics)
            if cache is not None:
                cache.put(spec, config, result)
            outcomes[spec] = SweepOutcome(spec, result, events=records)
