"""Persistent, content-addressed cache of simulation results.

:class:`ResultCache` maps a (:class:`~repro.harness.spec.RunSpec`,
:class:`~repro.arch.config.MachineConfig`) pair to a stored result on
disk, so a warm rerun of the full experiment suite performs **zero**
cycle simulations.  The key is a SHA-256 digest over:

* every field of the normalized spec (workload, mode, DRC entries,
  seed, scale, instruction budgets),
* the machine-config fingerprint (any parameter change invalidates), and
* a code-version salt (:data:`CACHE_SALT`) bumped whenever simulator
  semantics change, so stale results from an older simulator can never
  be served.

On-disk layout (ISSUE 7)
------------------------

Entries are **sharded by digest prefix into a directory per entry**::

    root/ab/abcd0123.../result.json    (simulation modes)
    root/ab/abcd0123.../result.pkl     (emulate mode)
    root/ab/abcd0123.../claim          (multi-host work-queue claim file)

The per-entry directory is what makes the cache a coordination point
for multiple host processes draining one sweep: the
:class:`~repro.harness.workqueue.WorkQueue` claim file lives next to
the result it gates, and "complete" is simply "the result file exists".
Two legacy layouts are read through transparently — the original flat
``root/<digest>.ext`` and the interim two-level ``root/ab/<digest>.ext``
— and :meth:`migrate` rewrites them in place into the sharded layout.

Cycle-simulation results are stored as JSON
(:meth:`~repro.arch.simstats.SimResult.as_dict` round-trip — human
inspectable, diffable) together with the spec and the machine-config
fingerprint (so :meth:`~repro.obs.store.RunStore.backfill_cache` can
recover the config digest); emulation results are stored as pickle
(their payload includes full machine state).  Entries are written
atomically (temp file + rename) so a crashed or parallel writer can
never leave a half-written entry, and unreadable/corrupt entries
degrade to cache misses rather than errors.

Observability settings (event sinks, checkpoint cadence, progress) are
deliberately **not** part of the key: they must never change a result's
architectural numbers.  The one observable consequence is that a cached
result carries the progress checkpoints of the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Optional

from ..arch.simstats import SimResult
from .spec import RunSpec, config_fingerprint

__all__ = ["ResultCache", "CACHE_SALT"]

#: When this process began (well, when this module was imported — close
#: enough for the stale-temp-file sweep): any ``.tmp-*`` file older than
#: this was left by a *previous* process that died between ``mkstemp``
#: and ``os.replace``, and can never be completed.  Fresh temp files are
#: kept — they may belong to a concurrent writer sharing the cache.
_PROCESS_START = time.time()

#: Bump whenever a change to the simulator alters results for the same
#: spec — old on-disk entries then miss instead of serving stale numbers.
#: (v2: block fast path + flattened stall kernels; cycle counts are
#: unchanged by construction, but the fingerprint schema gained the
#: timing-model version and dropped host-tuning fields.  The ISSUE 7
#: sharded layout does not bump the salt: results are unchanged and
#: legacy entries remain readable in place.)
CACHE_SALT = "repro-results-v2"


class ResultCache:
    """Content-addressed on-disk store of per-spec results."""

    def __init__(self, root: str, salt: str = CACHE_SALT):
        self.root = root
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: orphaned temp files removed on open (died-mid-write debris).
        self.stale_tmp_removed = 0
        os.makedirs(root, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``.tmp-*`` orphans left by writers that died mid-put.

        :meth:`put` is atomic (temp file + rename), so a crash between
        ``mkstemp`` and ``os.replace`` can never corrupt an entry — but
        it does leak the temp file.  Only files older than this process
        are swept: a fresh temp file may be a concurrent writer's
        in-flight put.
        """
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.startswith(".tmp-"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.stat(path).st_mtime < _PROCESS_START:
                        os.unlink(path)
                        self.stale_tmp_removed += 1
                except OSError:
                    continue  # already gone or unreadable: not ours to fix

    # -- keys --------------------------------------------------------------

    def key(self, spec: RunSpec, config) -> str:
        """Hex digest addressing ``spec`` under ``config``."""
        payload = json.dumps(
            {
                "spec": spec.normalized().as_dict(),
                "config": config_fingerprint(config),
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_dir(self, spec: RunSpec, config) -> str:
        """The sharded per-entry directory (``root/ab/abcd.../``).

        Everything belonging to one entry — the result file and any
        work-queue claim file — lives here, so multi-host coordination
        never contends on a shared directory.
        """
        digest = self.key(spec, config)
        return os.path.join(self.root, digest[:2], digest)

    def path(self, spec: RunSpec, config) -> str:
        """Where ``spec``'s result is (or would be) stored."""
        ext = "json" if spec.is_simulation else "pkl"
        return os.path.join(self.entry_dir(spec, config), "result." + ext)

    def _legacy_paths(self, spec: RunSpec, config):
        """Pre-sharding locations, newest layout first: the interim
        two-level ``root/ab/<digest>.ext`` and the original flat
        ``root/<digest>.ext``."""
        digest = self.key(spec, config)
        ext = "json" if spec.is_simulation else "pkl"
        yield os.path.join(self.root, digest[:2], "%s.%s" % (digest, ext))
        yield os.path.join(self.root, "%s.%s" % (digest, ext))

    # -- lookup / store ----------------------------------------------------

    def _load(self, path: str, simulation: bool):
        """Read one entry file; raises on missing/corrupt."""
        if simulation:
            with open(path) as fh:
                entry = json.load(fh)
            return SimResult.from_dict(entry["result"])
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def get(self, spec: RunSpec, config):
        """Stored result for ``spec``, or None (counts a hit/miss).

        Reads the sharded layout first, then falls back to the legacy
        two-level and flat layouts, so a pre-ISSUE-7 cache keeps
        serving without a migration step.
        """
        for path in (self.path(spec, config),
                     *self._legacy_paths(spec, config)):
            try:
                result = self._load(path, spec.is_simulation)
            except FileNotFoundError:
                continue
            except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                    EOFError, AttributeError):
                # Corrupt or incompatible entry: treat as a miss and
                # drop it so the rewrite below repairs the cache.
                self._discard(path)
                continue
            self.hits += 1
            return result
        self.misses += 1
        return None

    def peek(self, spec: RunSpec, config):
        """Like :meth:`get` but side-effect free: no hit/miss counting,
        no corrupt-entry removal.  Used by work-queue pollers waiting on
        a peer host's result, where every poll counting a miss would
        make the stats meaningless."""
        for path in (self.path(spec, config),
                     *self._legacy_paths(spec, config)):
            try:
                return self._load(path, spec.is_simulation)
            except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                    EOFError, AttributeError):
                continue
        return None

    def put(self, spec: RunSpec, config, result) -> str:
        """Store ``result`` for ``spec`` (atomic); returns the path."""
        path = self.path(spec, config)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-"
        )
        try:
            if spec.is_simulation:
                with os.fdopen(fd, "w") as fh:
                    json.dump(
                        {
                            "spec": spec.normalized().as_dict(),
                            "config": config_fingerprint(config),
                            "result": result.as_dict(),
                        },
                        fh,
                        sort_keys=True,
                    )
            else:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        self.writes += 1
        return path

    # -- migration ---------------------------------------------------------

    def migrate(self) -> dict:
        """Move legacy-layout entries into the sharded layout, in place.

        Renames are atomic per entry, so a concurrent reader sees each
        entry at exactly one of its locations at any moment (and
        :meth:`get` checks all of them).  Returns
        ``{"migrated": n, "skipped": n}`` — ``skipped`` counts legacy
        files whose sharded destination already exists (the sharded
        copy, being newer, wins; the legacy file is removed).
        """
        migrated = skipped = 0
        for dirpath, dirnames, filenames in os.walk(self.root):
            rel = os.path.relpath(dirpath, self.root)
            depth = 0 if rel == "." else rel.count(os.sep) + 1
            if depth > 1:
                # Already inside a sharded entry directory.
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                stem, dot, ext = name.rpartition(".")
                if dot != "." or ext not in ("json", "pkl"):
                    continue
                if len(stem) != 64 or not all(
                        c in "0123456789abcdef" for c in stem):
                    continue
                src = os.path.join(dirpath, name)
                dest_dir = os.path.join(self.root, stem[:2], stem)
                dest = os.path.join(dest_dir, "result." + ext)
                if os.path.exists(dest):
                    self._discard(src)
                    skipped += 1
                    continue
                os.makedirs(dest_dir, exist_ok=True)
                try:
                    os.replace(src, dest)
                except OSError:
                    skipped += 1
                    continue
                migrated += 1
        return {"migrated": migrated, "skipped": skipped}

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ResultCache(root=%r, hits=%d, misses=%d, writes=%d)" % (
            self.root, self.hits, self.misses, self.writes,
        )
