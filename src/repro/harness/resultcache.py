"""Persistent, content-addressed cache of simulation results.

:class:`ResultCache` maps a (:class:`~repro.harness.spec.RunSpec`,
:class:`~repro.arch.config.MachineConfig`) pair to a stored result on
disk, so a warm rerun of the full experiment suite performs **zero**
cycle simulations.  The key is a SHA-256 digest over:

* every field of the normalized spec (workload, mode, DRC entries,
  seed, scale, instruction budgets),
* the machine-config fingerprint (any parameter change invalidates), and
* a code-version salt (:data:`CACHE_SALT`) bumped whenever simulator
  semantics change, so stale results from an older simulator can never
  be served.

Cycle-simulation results are stored as JSON
(:meth:`~repro.arch.simstats.SimResult.as_dict` round-trip — human
inspectable, diffable); emulation results are stored as pickle (their
payload includes full machine state).  Entries are written atomically
(temp file + rename) so a crashed or parallel writer can never leave a
half-written entry, and unreadable/corrupt entries degrade to cache
misses rather than errors.

Observability settings (event sinks, checkpoint cadence, progress) are
deliberately **not** part of the key: they must never change a result's
architectural numbers.  The one observable consequence is that a cached
result carries the progress checkpoints of the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Optional

from ..arch.simstats import SimResult
from .spec import RunSpec, config_fingerprint

__all__ = ["ResultCache", "CACHE_SALT"]

#: When this process began (well, when this module was imported — close
#: enough for the stale-temp-file sweep): any ``.tmp-*`` file older than
#: this was left by a *previous* process that died between ``mkstemp``
#: and ``os.replace``, and can never be completed.  Fresh temp files are
#: kept — they may belong to a concurrent writer sharing the cache.
_PROCESS_START = time.time()

#: Bump whenever a change to the simulator alters results for the same
#: spec — old on-disk entries then miss instead of serving stale numbers.
#: (v2: block fast path + flattened stall kernels; cycle counts are
#: unchanged by construction, but the fingerprint schema gained the
#: timing-model version and dropped host-tuning fields.)
CACHE_SALT = "repro-results-v2"


class ResultCache:
    """Content-addressed on-disk store of per-spec results."""

    def __init__(self, root: str, salt: str = CACHE_SALT):
        self.root = root
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: orphaned temp files removed on open (died-mid-write debris).
        self.stale_tmp_removed = 0
        os.makedirs(root, exist_ok=True)
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove ``.tmp-*`` orphans left by writers that died mid-put.

        :meth:`put` is atomic (temp file + rename), so a crash between
        ``mkstemp`` and ``os.replace`` can never corrupt an entry — but
        it does leak the temp file.  Only files older than this process
        are swept: a fresh temp file may be a concurrent writer's
        in-flight put.
        """
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.startswith(".tmp-"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.stat(path).st_mtime < _PROCESS_START:
                        os.unlink(path)
                        self.stale_tmp_removed += 1
                except OSError:
                    continue  # already gone or unreadable: not ours to fix

    # -- keys --------------------------------------------------------------

    def key(self, spec: RunSpec, config) -> str:
        """Hex digest addressing ``spec`` under ``config``."""
        payload = json.dumps(
            {
                "spec": spec.normalized().as_dict(),
                "config": config_fingerprint(config),
                "salt": self.salt,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: RunSpec, config) -> str:
        digest = self.key(spec, config)
        ext = "json" if spec.is_simulation else "pkl"
        # Two-level fanout keeps directory listings sane at scale.
        return os.path.join(self.root, digest[:2], "%s.%s" % (digest, ext))

    # -- lookup / store ----------------------------------------------------

    def get(self, spec: RunSpec, config):
        """Stored result for ``spec``, or None (counts a hit/miss)."""
        path = self.path(spec, config)
        try:
            if spec.is_simulation:
                with open(path) as fh:
                    entry = json.load(fh)
                result = SimResult.from_dict(entry["result"])
            else:
                with open(path, "rb") as fh:
                    result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                EOFError, AttributeError):
            # Corrupt or incompatible entry: treat as a miss and drop it
            # so the rewrite below repairs the cache.
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, config, result) -> str:
        """Store ``result`` for ``spec`` (atomic); returns the path."""
        path = self.path(spec, config)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-"
        )
        try:
            if spec.is_simulation:
                with os.fdopen(fd, "w") as fh:
                    json.dump(
                        {
                            "spec": spec.normalized().as_dict(),
                            "result": result.as_dict(),
                        },
                        fh,
                        sort_keys=True,
                    )
            else:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            self._discard(tmp)
            raise
        self.writes += 1
        return path

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ResultCache(root=%r, hits=%d, misses=%d, writes=%d)" % (
            self.root, self.hits, self.misses, self.writes,
        )
