"""Live TTY sweep dashboard fed by the structured event stream.

``python -m repro.harness --dashboard`` renders a small self-updating
status block on stderr while a sweep runs: per-spec progress (which
specs are in flight, on which attempt), done/cached/failed counts,
retry/quarantine totals, the cache hit rate, and a rolling IPC
sparkline from ``checkpoint`` events.

The dashboard is a pure *consumer* of the event vocabulary in
:mod:`repro.obs.events` — it learns everything from ``spec_dispatch``,
``spec_done``, ``run_retry``, ``run_failed``, ``pool_rebuild``, and
``checkpoint`` records.  It also understands the fuzzing vocabulary
(``fuzz_program`` counts as a completed unit of work, ``fuzz_finding``
as a failure), so ``python -m repro.tools.fuzz --dashboard`` renders
the same status block over a fuzzing session.  :meth:`Dashboard.attach` tees an
:class:`~repro.obs.events.EventLog`'s sink, so the same records that go
to the JSONL file (or nowhere) also drive the display; :meth:`feed`
accepts records from :func:`~repro.obs.events.follow_events`, so the
same dashboard can watch a *different process's* sweep by tailing its
event file.

Everything is injectable (stream, clock, ANSI on/off, render interval)
so tests drive it deterministically against a ``StringIO``.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = ["Dashboard"]

_BARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Iterable[float]) -> str:
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    return "".join(
        _BARS[int((v - lo) / spread * (len(_BARS) - 1))] for v in values
    )


def _label(record: dict) -> str:
    """Spec label from event fields (mirrors ``RunSpec.label``)."""
    workload = record.get("workload", "?")
    mode = record.get("mode", "?")
    if mode == "vcfr":
        return "%s/vcfr@%d" % (workload, record.get("drc_entries", 0))
    return "%s/%s" % (workload, mode)


class _TeeSink:
    """Sink wrapper: every record feeds the dashboard, then the inner
    sink.  ``enabled`` is True even over a :class:`NullSink` inner —
    the dashboard needs the records even when nothing is persisted."""

    enabled = True

    def __init__(self, inner, dashboard: "Dashboard"):
        self.inner = inner
        self.dashboard = dashboard

    def write(self, record: dict) -> None:
        self.dashboard.observe(record)
        self.inner.write(record)

    def close(self) -> None:
        self.inner.close()


class Dashboard:
    """Rolling sweep status renderer.

    On a TTY (``ansi=True``) the block redraws in place via cursor-up;
    otherwise it degrades to an occasional plain status line, so piping
    stderr to a file stays readable.  Rendering is throttled to
    ``interval`` seconds — event bursts cost one string format, not one
    redraw each.
    """

    def __init__(self, stream=None, total: int = 0, *,
                 interval: float = 0.25, ansi: Optional[bool] = None,
                 clock=None, ipc_window: int = 40):
        self.stream = stream if stream is not None else sys.stderr
        self.total = total
        self.interval = interval
        if ansi is None:
            ansi = bool(getattr(self.stream, "isatty", lambda: False)())
        self.ansi = ansi
        self.clock = clock if clock is not None else time.monotonic
        #: label -> attempt currently in flight.
        self.running: Dict[str, int] = {}
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.findings = 0
        self.retries = 0
        self.pool_rebuilds = 0
        #: rotation-service race telemetry.
        self.race_points = 0
        self.rotations = 0
        #: datacenter-fleet telemetry (``tenant_point`` events).
        self.fleet_tenants = 0
        self.fleet_served = 0
        #: execution-tier totals from ``run_end`` tier telemetry.
        self.block_execs = 0
        self.trace_entries = 0
        self.trace_bailouts = 0
        self.ipc = deque(maxlen=ipc_window)
        self._last_render = None
        self._last_lines = 0
        self._log = None

    # -- wiring ------------------------------------------------------------

    def attach(self, log) -> None:
        """Tee ``log``'s sink through this dashboard.

        Forces the log on (a dashboard over a null sink still needs the
        records); the original sink still receives every record, so
        ``--events`` output is unchanged by ``--dashboard``.
        """
        log.sink = _TeeSink(log.sink, self)
        log.enabled = True
        self._log = log

    def feed(self, records: Iterable[dict]) -> None:
        """Drive the dashboard from an external record stream (e.g.
        ``follow_events`` tailing another process's JSONL log)."""
        for record in records:
            self.observe(record)

    # -- state -------------------------------------------------------------

    def observe(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "spec_dispatch":
            self.running[_label(record)] = record.get("attempt", 0)
        elif kind == "spec_done":
            self.running.pop(_label(record), None)
            self.done += 1
            if record.get("cached"):
                self.cached += 1
        elif kind == "run_retry":
            self.retries += 1
        elif kind == "run_failed":
            self.running.pop(_label(record), None)
            self.done += 1
            self.failed += 1
        elif kind == "pool_rebuild":
            self.pool_rebuilds += 1
        elif kind == "checkpoint" and "ipc" in record:
            self.ipc.append(record["ipc"])
        elif kind == "run_end" and record.get("tiers"):
            tiers = record["tiers"]
            blocks = tiers.get("blocks") or {}
            traces = tiers.get("traces") or {}
            self.block_execs += blocks.get("execs", 0)
            self.trace_entries += traces.get("entries", 0)
            self.trace_bailouts += traces.get("bailouts", 0)
        elif kind == "fuzz_program":
            self.done += 1
            if not record.get("ok", True):
                self.failed += 1
        elif kind == "fuzz_finding":
            self.findings += 1
        elif kind == "race_point":
            self.done += 1
            self.race_points += 1
        elif kind == "rotation":
            self.rotations += 1
        elif kind == "tenant_point":
            self.fleet_tenants += 1
            self.fleet_served += record.get("served", 0)
        elif kind == "fleet_end":
            self.done += record.get("points", 0)
        else:
            return
        self.maybe_render()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The current status block (pure; no I/O)."""
        total = " / %d" % self.total if self.total else ""
        head = "sweep %d%s done" % (self.done, total)
        parts = [head]
        if self.cached:
            rate = 100.0 * self.cached / max(1, self.done)
            parts.append("cache %d (%.0f%%)" % (self.cached, rate))
        if self.failed:
            parts.append("failed %d" % self.failed)
        if self.findings:
            parts.append("findings %d" % self.findings)
        if self.retries:
            parts.append("retries %d" % self.retries)
        if self.pool_rebuilds:
            parts.append("pool rebuilds %d" % self.pool_rebuilds)
        if self.race_points or self.rotations:
            race = "races %d" % self.race_points
            if self.rotations:
                race += " rot %d" % self.rotations
            parts.append(race)
        if self.fleet_tenants:
            parts.append("fleet %d tenants %d served"
                         % (self.fleet_tenants, self.fleet_served))
        if self.block_execs or self.trace_entries:
            tier = "tiers blk %d" % self.block_execs
            if self.trace_entries:
                tier += " trc %d" % self.trace_entries
            if self.trace_bailouts:
                tier += " bail %d" % self.trace_bailouts
            parts.append(tier)
        if self.ipc:
            parts.append("ipc %s %.3f" % (_sparkline(self.ipc),
                                          self.ipc[-1]))
        lines: List[str] = ["  ".join(parts)]
        for label in sorted(self.running):
            attempt = self.running[label]
            suffix = "  (attempt %d)" % attempt if attempt else ""
            lines.append("  > %s%s" % (label, suffix))
        return "\n".join(lines)

    def maybe_render(self) -> None:
        now = self.clock()
        if (self._last_render is not None
                and now - self._last_render < self.interval):
            return
        self._last_render = now
        self._draw(self.render())

    def finish(self) -> None:
        """Render the final state unconditionally."""
        self._draw(self.render())
        if self.ansi:
            self.stream.write("\n")
            self.stream.flush()

    def _draw(self, block: str) -> None:
        if self.ansi:
            out = ""
            if self._last_lines:
                # Cursor up over the previous block, erase to bottom.
                out += "\x1b[%dA\x1b[J" % self._last_lines
            out += block + "\n"
            # The trailing newline leaves the cursor one row below the
            # block, so next redraw rewinds over every written line.
            self._last_lines = block.count("\n") + 1
            self.stream.write(out)
        else:
            # Non-TTY: single-line summaries only (no control codes).
            self.stream.write(block.split("\n", 1)[0] + "\n")
        self.stream.flush()
