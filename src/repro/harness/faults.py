"""Deterministic, seed-driven fault injection for the sweep engine.

The fault-tolerance layer in :mod:`repro.harness.sweep` is only
trustworthy if its recovery paths are exercised, and the failures it
guards against (an OOM-killed worker, a wedged simulation, a corrupted
result crossing the process boundary, a full disk under the result
cache) are exactly the ones that never happen on a developer laptop.
:class:`FaultPlan` injects them **on purpose and reproducibly**:

* a *schedule* names exact injection points — ``crash@mcf/baseline#0``
  kills the worker process executing attempt 0 of spec
  ``mcf/baseline``;
* a *rate* draws per ``(kind, label, attempt)`` from a seeded hash —
  ``crash:0.1,seed=7`` crashes a deterministic 10% of attempts, the
  *same* 10% on every run with the same seed (the draw is SHA-256
  based, so it is independent of ``PYTHONHASHSEED`` and identical in
  every worker process).

Fault kinds:

``crash``     the worker process exits hard (``os._exit``), the way an
              OOM kill or a segfault takes a worker down; inline (no
              pool) it raises :class:`InjectedFault` instead.
``raise``     the task raises :class:`InjectedFault` — an in-task
              software failure that leaves the pool healthy.
``hang``      the task sleeps ``hang_seconds`` before executing, long
              enough to trip a configured soft timeout.
``corrupt``   the task's result payload is replaced after its integrity
              digest is taken, so the parent's verification rejects it.
``cachefail`` the parent's commit of this spec's result to the on-disk
              :class:`~repro.harness.resultcache.ResultCache` raises
              ``OSError`` (a full or read-only disk).

Plans are frozen, hashable, and picklable, so one plan object crosses
the pool boundary and every process consults the identical schedule.
Used by ``tests/test_faults.py`` and the ``--inject-faults`` flag on
``python -m repro.harness`` / ``python -m repro.tools.run``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "CRASH_EXIT_CODE",
    "InjectedFault",
    "FaultPlan",
    "apply_worker_fault",
    "apply_inline_fault",
]

#: Every recognized fault kind (``cachefail`` is parent-side only).
FAULT_KINDS: Tuple[str, ...] = (
    "crash", "raise", "hang", "corrupt", "cachefail",
)

#: Exit status of a worker killed by an injected ``crash`` (visible in
#: the BrokenProcessPool diagnostics; arbitrary but distinctive).
CRASH_EXIT_CODE = 87


class InjectedFault(RuntimeError):
    """Raised by ``raise`` faults (and by ``crash``/``corrupt`` when the
    execution is inline and a hard process kill would take the whole
    sweep down with it)."""

    def __init__(self, kind: str, label: str, attempt: int):
        super().__init__(
            "injected %s fault (%s, attempt %d)" % (kind, label, attempt)
        )
        self.kind = kind
        self.label = label
        self.attempt = attempt

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__`` and would fail on the worker ->
        # parent hop, which the pool machinery escalates into a
        # BrokenProcessPool — turning every injected software fault
        # into a spurious pool crash.
        return (InjectedFault, (self.kind, self.label, self.attempt))


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of which faults to inject where.

    ``schedule`` entries are ``(kind, label, attempt)`` exact injection
    points (label ``*`` matches every spec); ``rates`` entries are
    ``(kind, probability)`` seeded draws.  A schedule match wins over a
    rate draw, and at most one fault fires per ``(label, attempt)``.
    """

    schedule: Tuple[Tuple[str, str, int], ...] = ()
    rates: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0
    #: how long a ``hang`` fault sleeps (kept finite so tests terminate
    #: even when no timeout is configured).
    hang_seconds: float = 1.0

    # -- queries -----------------------------------------------------------

    def action(self, label: str, attempt: int) -> Optional[str]:
        """The in-task fault to inject for this attempt, or None.

        ``cachefail`` never fires here — it is consulted separately by
        the parent at commit time (:meth:`cache_write_fails`).
        """
        return self._decide(label, attempt, exclude=("cachefail",))

    def cache_write_fails(self, label: str, attempt: int = 0) -> bool:
        """True when committing this spec's result should fail."""
        return self._decide(
            label, attempt,
            exclude=tuple(k for k in FAULT_KINDS if k != "cachefail"),
        ) == "cachefail"

    def _decide(self, label: str, attempt: int,
                exclude: Tuple[str, ...]) -> Optional[str]:
        for kind, flabel, fattempt in self.schedule:
            if kind in exclude:
                continue
            if fattempt == attempt and flabel in ("*", label):
                return kind
        for kind, rate in self.rates:
            if kind in exclude:
                continue
            if self._draw(kind, label, attempt) < rate:
                return kind
        return None

    def _draw(self, kind: str, label: str, attempt: int) -> float:
        """Uniform [0, 1) draw, stable across processes and runs."""
        payload = "%d:%s:%s:%d" % (self.seed, kind, label, attempt)
        digest = hashlib.sha256(payload.encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    # -- parsing -----------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse a CLI plan.

        Comma-separated entries::

            crash@mcf/baseline#0      kill attempt 0 of one spec
            corrupt@*#1               corrupt every spec's attempt 1
            hang@gcc/vcfr@128#0       labels may contain '@'
            crash:0.05                seeded 5% crash rate
            seed=7                    seed for rate draws
            hang=0.5                  hang duration in seconds

        ``#ATTEMPT`` defaults to 0 when omitted.
        """
        schedule = []
        rates = []
        seed = 0
        hang_seconds = 1.0
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed="):])
                continue
            if entry.startswith("hang="):
                hang_seconds = float(entry[len("hang="):])
                continue
            if "@" in entry:
                kind, _, rest = entry.partition("@")
                label, attempt = rest, 0
                if "#" in rest:
                    label, _, attempt_text = rest.rpartition("#")
                    attempt = int(attempt_text)
                schedule.append((cls._check_kind(kind), label, attempt))
            elif ":" in entry:
                kind, _, rate_text = entry.partition(":")
                rates.append((cls._check_kind(kind), float(rate_text)))
            else:
                raise ValueError(
                    "unparseable fault entry %r (expected KIND@LABEL#N, "
                    "KIND:RATE, seed=N, or hang=SECONDS)" % entry
                )
        return cls(schedule=tuple(schedule), rates=tuple(rates),
                   seed=seed, hang_seconds=hang_seconds)

    @staticmethod
    def _check_kind(kind: str) -> str:
        if kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r (expected one of %s)"
                % (kind, ", ".join(FAULT_KINDS))
            )
        return kind

    @property
    def empty(self) -> bool:
        return not self.schedule and not self.rates


# -- injection points --------------------------------------------------------


def apply_worker_fault(plan: Optional[FaultPlan], label: str,
                       attempt: int) -> Optional[str]:
    """Inject this attempt's fault inside a pool worker.

    Returns the action that fired (callers handle ``corrupt`` *after*
    executing, since it must poison the result payload, not the run).
    """
    if plan is None:
        return None
    action = plan.action(label, attempt)
    if action == "crash":
        # A hard exit, not an exception: the parent must experience the
        # real BrokenProcessPool an OOM-killed worker produces.
        os._exit(CRASH_EXIT_CODE)
    if action == "hang":
        time.sleep(plan.hang_seconds)
    elif action == "raise":
        raise InjectedFault("raise", label, attempt)
    return action


def apply_inline_fault(plan: Optional[FaultPlan], label: str,
                       attempt: int) -> Optional[str]:
    """Inject this attempt's fault for inline (no pool) execution.

    ``crash`` and ``corrupt`` degrade to :class:`InjectedFault` — a
    hard exit would kill the sweep itself, and an inline result never
    crosses a process boundary where corruption could occur.
    """
    if plan is None:
        return None
    action = plan.action(label, attempt)
    if action in ("crash", "raise", "corrupt"):
        raise InjectedFault(action, label, attempt)
    if action == "hang":
        time.sleep(plan.hang_seconds)
    return action
