"""CLI entry point: ``python -m repro.harness [experiment ...]``.

Options:
  --scale S               workload scale factor (default 1.0)
  --max-instructions N    per-run instruction budget (default 300000)
  --seed N                randomizer seed (default 42)
  --ablations             also run the ablation studies
  --json PATH             write all results as JSON ("-" for stdout)
  --events PATH           write a JSONL structured event log
  --progress              heartbeat line per simulation checkpoint
  --profile-phases        attribute host time to CPU pipeline phases
  --checkpoint-interval N instructions between checkpoints (0 = auto)
  --workers N             parallel sweep worker processes
  --backlog N             streaming-scheduler intake window beyond workers
  --cache-dir DIR         persistent on-disk result cache
  --queue                 multi-process claim protocol over --cache-dir
  --store PATH            SQLite run store (query with repro.tools.stats)
  --trace-out PATH        Chrome trace_event JSON of the sweep's spans
  --dashboard             live sweep status block on stderr
  --retry-attempts N      max executions per spec before quarantine
  --spec-timeout S        soft per-attempt timeout (seconds)
  --inject-faults PLAN    deterministic fault injection (testing)

With ``--workers`` the suite's simulations fan out over a process pool;
with ``--cache-dir`` results persist across invocations so a warm rerun
performs zero cycle simulations.  Both produce row-for-row identical
tables to a sequential, uncached run.  The sweep is fault-tolerant:
crashing or hanging workers are retried and the pool rebuilt; results
commit to the cache as they finish, so a killed invocation resumes from
its completed work when re-run with the same ``--cache-dir``.

Only the experiment report (or, with ``--json -``, the JSON document)
goes to stdout; all diagnostics — timings, heartbeats, file notices —
go to stderr, so piped output is always machine-clean.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs import open_log, status
from ..obs.metrics import get_registry
from ..obs.trace import Tracer
from .ablations import ALL_ABLATIONS
from .dashboard import Dashboard
from .cli import (
    add_fault_options,
    add_observability_options,
    add_sweep_options,
    fault_config_from_args,
)
from .experiments import ALL_EXPERIMENTS, suite_specs
from .report import format_result, results_to_dict, write_json
from .session import ExperimentSession
from .sweep import FailedRunError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all figures/tables): %s"
                        % ", ".join(list(ALL_EXPERIMENTS) + list(ALL_ABLATIONS)))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--max-instructions", type=int, default=300_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--ablations", action="store_true",
                        help="include the ablation studies")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help='write results as JSON to PATH ("-" = stdout)')
    parser.add_argument("--profile-phases", action="store_true",
                        help="attribute host time to CPU pipeline phases")
    add_observability_options(parser)
    add_sweep_options(parser)
    add_fault_options(parser)
    args = parser.parse_args(argv)
    retry, faults = fault_config_from_args(args)
    if args.queue and not args.cache_dir:
        parser.error("--queue needs --cache-dir (the queue's claim files "
                     "live in the shared cache directory)")

    registry = dict(ALL_EXPERIMENTS)
    registry.update(ALL_ABLATIONS)
    if args.experiments:
        wanted = args.experiments
    else:
        wanted = list(ALL_EXPERIMENTS)
        if args.ablations:
            wanted += list(ALL_ABLATIONS)
    unknown = [e for e in wanted if e not in registry]
    if unknown:
        parser.error("unknown experiment(s): %s" % ", ".join(unknown))

    # With --json - the report moves to stderr so stdout carries only
    # the JSON document.
    json_to_stdout = args.json == "-"
    emit_report = status if json_to_stdout else print

    tracer = Tracer() if args.trace_out else None
    dashboard = None

    with open_log(args.events) as events:
        if args.dashboard:
            dashboard = Dashboard()
            dashboard.attach(events)
        runner = ExperimentSession(
            scale=args.scale,
            seed=args.seed,
            max_instructions=args.max_instructions,
            events=events,
            progress=args.progress,
            checkpoint_interval=args.checkpoint_interval,
            profile_phases=args.profile_phases,
            workers=args.workers,
            backlog=args.backlog,
            cache_dir=args.cache_dir,
            retry=retry,
            faults=faults,
            tracer=tracer,
            store_path=args.store,
            queue=True if args.queue else None,
        )
        events.status("harness start", experiments=list(wanted),
                      scale=args.scale,
                      max_instructions=args.max_instructions,
                      seed=args.seed,
                      workers=args.workers)

        # Fan the suite's full spec list out before any experiment runs:
        # the pool (and the disk cache) see every independent simulation
        # at once instead of discovering them serially.
        if args.workers >= 2 or args.cache_dir:
            specs = suite_specs(
                runner, [e for e in wanted if e in ALL_EXPERIMENTS]
            )
            start = time.time()
            runner.prefetch(specs)
            status("(sweep: %d specs, %d workers, %.1fs)"
                   % (len(specs), args.workers, time.time() - start))
            for failure in runner.failures.values():
                status("QUARANTINED %s after %d attempt(s) [%s]: %s"
                       % (failure.spec.label(), failure.attempts,
                          failure.kind, failure.error))

        results = {}
        all_ok = True
        for exp_id in wanted:
            start = time.time()
            try:
                with runner.profiler.phase("experiment", experiment=exp_id):
                    result = registry[exp_id](runner)
            except FailedRunError as err:
                # A quarantined spec poisons only the experiments that
                # need it; the rest of the report still renders.
                status("(%s: skipped — %s)" % (exp_id, err))
                all_ok = False
                continue
            results[exp_id] = result
            emit_report(format_result(result))
            status("(%s: %.1fs)" % (exp_id, time.time() - start))
            if not json_to_stdout:
                print()
            all_ok &= result.passed
        events.status("harness end", passed=bool(all_ok))
        if dashboard is not None:
            dashboard.finish()

        if runner.cache is not None:
            stats = runner.cache.stats()
            status("(cache %s: %d hits, %d misses, %d writes)"
                   % (runner.cache.root, stats["hits"], stats["misses"],
                      stats["writes"]))
        if runner.queue is not None:
            qstats = runner.queue.stats()
            status("(queue %s: %d claimed, %d yielded, %d takeovers)"
                   % (runner.queue.owner, qstats["claimed"],
                      qstats["yielded"], qstats["takeovers"]))
        fault_counters = {
            name: value
            for name, value in get_registry().counters("sweep.").items()
            if value
        }
        if fault_counters:
            status("(sweep fault handling: %s)" % ", ".join(
                "%s=%d" % (name.split(".", 1)[1], value)
                for name, value in sorted(fault_counters.items())
            ))
        if args.events or args.progress or args.profile_phases:
            status("")
            status(runner.profiler.format_table("host-time by phase"))
        if args.json:
            if json_to_stdout:
                import json as _json

                _json.dump(results_to_dict(results), sys.stdout,
                           indent=2, sort_keys=True)
                sys.stdout.write("\n")
            else:
                write_json(results, args.json)
                status("wrote %s" % args.json)
        if args.trace_out:
            count = tracer.to_chrome(args.trace_out)
            status("wrote %s (%d spans)" % (args.trace_out, count))
        if runner.store is not None:
            counts = runner.store.counts()
            runner.store.close()
            status("(store %s: %d runs, %d findings)"
                   % (args.store, counts["runs"], counts["findings"]))
        if args.events:
            status("wrote %s" % args.events)
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
