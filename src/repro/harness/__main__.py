"""CLI entry point: ``python -m repro.harness [experiment ...]``.

Options:
  --scale S               workload scale factor (default 1.0)
  --max-instructions N    per-run instruction budget (default 300000)
  --seed N                randomizer seed (default 42)
  --ablations             also run the ablation studies
  --json PATH             write all results as JSON
"""

from __future__ import annotations

import argparse
import sys
import time

from .ablations import ALL_ABLATIONS
from .experiments import ALL_EXPERIMENTS
from .report import format_result, write_json
from .runner import Runner


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all figures/tables): %s"
                        % ", ".join(list(ALL_EXPERIMENTS) + list(ALL_ABLATIONS)))
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--max-instructions", type=int, default=300_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--ablations", action="store_true",
                        help="include the ablation studies")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON to PATH")
    args = parser.parse_args(argv)

    registry = dict(ALL_EXPERIMENTS)
    registry.update(ALL_ABLATIONS)
    if args.experiments:
        wanted = args.experiments
    else:
        wanted = list(ALL_EXPERIMENTS)
        if args.ablations:
            wanted += list(ALL_ABLATIONS)
    unknown = [e for e in wanted if e not in registry]
    if unknown:
        parser.error("unknown experiment(s): %s" % ", ".join(unknown))

    runner = Runner(scale=args.scale, seed=args.seed,
                    max_instructions=args.max_instructions)
    results = {}
    all_ok = True
    for exp_id in wanted:
        start = time.time()
        result = registry[exp_id](runner)
        results[exp_id] = result
        print(format_result(result))
        print("(%.1fs)" % (time.time() - start))
        print()
        all_ok &= result.passed
    if args.json:
        write_json(results, args.json)
        print("wrote %s" % args.json)
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
