"""Shared CLI option builders for the harness and tool entry points.

``python -m repro.harness``, ``python -m repro.tools.run``, and
``python -m repro.tools.fuzz`` expose the same observability knobs —
``--events`` / ``--progress`` / ``--checkpoint-interval`` / ``--store``
/ ``--trace-out`` / ``--dashboard`` — and the harness and run tool
share the sweep and fault flags too.  Defining the flags here (once)
keeps names, defaults, and help text from drifting between parsers.
"""

from __future__ import annotations

import argparse

__all__ = [
    "add_observability_options",
    "add_sweep_options",
    "add_fault_options",
    "fault_config_from_args",
]


def add_observability_options(
    parser: argparse.ArgumentParser,
    *,
    default_checkpoint_interval: int = 0,
) -> None:
    """The full observability flag set, identical across every CLI:
    ``--events`` / ``--progress`` / ``--checkpoint-interval`` /
    ``--store`` / ``--trace-out`` / ``--dashboard``."""
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write a JSONL structured event log to PATH")
    parser.add_argument("--progress", action="store_true",
                        help="print a heartbeat line per simulation "
                             "checkpoint (stderr)")
    if default_checkpoint_interval:
        interval_help = ("instructions between progress checkpoints "
                         "(default %d)" % default_checkpoint_interval)
    else:
        interval_help = ("instructions between progress checkpoints "
                         "(0 = automatic when --events/--progress)")
    parser.add_argument("--checkpoint-interval", type=int,
                        default=default_checkpoint_interval,
                        help=interval_help)
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="SQLite run store: every completed run (and "
                             "fuzz finding) is indexed for 'python -m "
                             "repro.tools.stats best/compare/history/sql'")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the span tree as Chrome trace_event "
                             "JSON (open in chrome://tracing or Perfetto)")
    parser.add_argument("--dashboard", action="store_true",
                        help="live status block on stderr fed by the "
                             "event stream: work in flight, retries, "
                             "cache hit rate, findings, rolling IPC")


def add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--backlog`` / ``--cache-dir`` / ``--queue``."""
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the simulation sweep "
                             "(0/1 = sequential)")
    parser.add_argument("--backlog", type=int, default=None, metavar="N",
                        help="extra specs the streaming scheduler keeps "
                             "materialized beyond the worker count "
                             "(default 32); bounds sweep memory")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent result cache: simulations hit "
                             "here are loaded instead of re-run; results "
                             "commit as they finish, so a killed sweep "
                             "resumes from its completed work")
    parser.add_argument("--queue", action="store_true",
                        help="coordinate with other processes draining "
                             "the same sweep: claim specs through the "
                             "shared cache directory (requires "
                             "--cache-dir); results merge by digest")


def add_fault_options(parser: argparse.ArgumentParser) -> None:
    """``--inject-faults`` / ``--retry-attempts`` / ``--spec-timeout``."""
    parser.add_argument("--inject-faults", metavar="PLAN", default=None,
                        help="deterministic fault injection plan, e.g. "
                             "'crash@mcf/baseline#0,corrupt@*#1' or "
                             "'crash:0.05,seed=7' (kinds: crash, raise, "
                             "hang, corrupt, cachefail)")
    parser.add_argument("--retry-attempts", type=int, default=0,
                        metavar="N",
                        help="max executions per spec before it is "
                             "quarantined (0 = engine default of 3)")
    parser.add_argument("--spec-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="soft per-attempt timeout; a spec producing "
                             "no result in time is retried (default: no "
                             "timeout)")


def fault_config_from_args(args):
    """``(RetryPolicy or None, FaultPlan or None)`` from parsed args.

    None means "use the engine default" for the policy and "no injected
    faults" for the plan, so CLIs that never pass the flags behave
    exactly as before.
    """
    from .faults import FaultPlan
    from .sweep import DEFAULT_RETRY, RetryPolicy

    faults = (FaultPlan.from_string(args.inject_faults)
              if args.inject_faults else None)
    retry = None
    if args.retry_attempts or args.spec_timeout is not None:
        retry = RetryPolicy(
            max_attempts=args.retry_attempts or DEFAULT_RETRY.max_attempts,
            timeout=args.spec_timeout,
            backoff=DEFAULT_RETRY.backoff,
            backoff_factor=DEFAULT_RETRY.backoff_factor,
        )
    return retry, faults
