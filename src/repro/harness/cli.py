"""Shared CLI option builders for the harness and tool entry points.

``python -m repro.harness`` and ``python -m repro.tools.run`` expose the
same observability and sweep knobs; defining the flags here (once) keeps
names, defaults, and help text from drifting between the two parsers.
"""

from __future__ import annotations

import argparse

__all__ = ["add_observability_options", "add_sweep_options"]


def add_observability_options(
    parser: argparse.ArgumentParser,
    *,
    default_checkpoint_interval: int = 0,
) -> None:
    """``--events`` / ``--progress`` / ``--checkpoint-interval``."""
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write a JSONL structured event log to PATH")
    parser.add_argument("--progress", action="store_true",
                        help="print a heartbeat line per simulation "
                             "checkpoint (stderr)")
    if default_checkpoint_interval:
        interval_help = ("instructions between progress checkpoints "
                         "(default %d)" % default_checkpoint_interval)
    else:
        interval_help = ("instructions between progress checkpoints "
                         "(0 = automatic when --events/--progress)")
    parser.add_argument("--checkpoint-interval", type=int,
                        default=default_checkpoint_interval,
                        help=interval_help)


def add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--cache-dir``."""
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the simulation sweep "
                             "(0/1 = sequential)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent result cache: simulations hit "
                             "here are loaded instead of re-run")
