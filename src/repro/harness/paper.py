"""Reference values from the paper, used for paper-vs-measured reporting.

Values are transcribed from the text and figures of Kim et al., DSN 2015.
Figure-read values (no table given in the paper) are approximate and
marked as such in the comments.
"""

from __future__ import annotations

#: §VI-B: the eleven evaluated SPEC CPU2006 applications.
SPEC_APPS = [
    "bzip2", "gcc", "h264ref", "hmmer", "lbm", "libquantum",
    "mcf", "namd", "sjeng", "soplex", "xalan",
]

#: Table II — static analysis of control flow (exact values from the paper).
TABLE2 = {
    # app: (direct transfers, indirect transfers, function calls, indirect calls)
    "bzip2": (27277, 654, 4474, 654),
    "gcc": (149512, 1464, 51933, 1605),
    "h264ref": (38650, 884, 6986, 1409),
    "hmmer": (35438, 556, 7783, 751),
    "lbm": (26074, 620, 4300, 622),
    "libquantum": (27129, 546, 4686, 636),
    "mcf": (25607, 512, 4214, 582),
    "namd": (33497, 618, 5958, 906),
    "sjeng": (30021, 585, 5280, 709),
    "soplex": (49577, 1271, 15673, 2587),
    "xalan": (126790, 2915, 63965, 15465),
}

#: Fig. 2 — emulator slowdown (figure-read; "execution time increases by
#: over hundred of times", y-axis reaches 1500).
FIG2 = {
    "apps": ["bzip2", "h264ref", "hmmer", "memcpy", "python", "xalan"],
    "slowdown_range": (100.0, 1500.0),
    "claim": "software ILR emulation is 100s-1000s of times slower than native",
}

#: Fig. 3 — naive hardware ILR cache impact.
FIG3 = {
    "il1_miss_ratio_avg": 9.4,     # §III: "on average by 9.4 times"
    "il1_miss_ratio_outlier": 558,  # the labelled outlier bar
    "prefetch_miss_increase_pct": 28.0,
    "l2_pressure_increase_pct": 36.0,
}

#: Fig. 4 — naive ILR normalized IPC ("reduces to 61%"; Fig.4 caption: 66%).
FIG4 = {"normalized_ipc_avg_range": (0.61, 0.66)}

#: Fig. 9 — functions with/without ret (figure-read magnitudes).
FIG9 = {"claim": "most functions contain ret; a visible minority do not"}

#: Fig. 11 — gadget removal.
FIG11 = {"avg_removal_pct": 98.0,
         "claim": "no ROP payload can be assembled after randomization"}

#: Fig. 12 — VCFR speedup over naive hardware ILR, 128-entry DRC.
FIG12 = {
    "avg_speedup": 1.63,
    "gt2x_apps": ["namd", "h264ref", "mcf", "xalan"],
}

#: Fig. 13 — VCFR normalized IPC by DRC size.
FIG13 = {
    512: 0.989,  # "almost 98.9% of the baseline"
    128: 0.985,  # figure-read
    64: 0.979,   # "2.1% overhead"
}

#: Fig. 14 — DRC miss rates.
FIG14 = {
    512: 0.045,
    64: 0.206,
    "worst_apps": ["lbm", "xalan"],
}

#: Fig. 15 — DRC dynamic power overhead (% of CPU dynamic power).
FIG15 = {"avg_power_overhead_pct": 0.18}

#: Table I — qualitative comparison (verbatim structure).
TABLE1 = [
    ("Execution", "no control flow randomization", "randomized control flow",
     "randomized control flow"),
    ("Instruction locality", "preserved", "destroyed", "preserved"),
    ("Instruction prefetch", "effective", "not effective", "effective"),
    ("Control flow diversity", "no diversity", "diversified", "diversified"),
]
TABLE1_COLUMNS = ("No Randomization", "Naive Hardware ILR", "VCFR")
