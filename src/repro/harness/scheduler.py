"""Streaming asyncio sweep scheduler: the experiment-service core.

ISSUE 7 replaces the one-shot ``sweep(list_of_specs)`` fan-out with a
**streaming** engine: :class:`AsyncScheduler` consumes ``RunSpec``\\ s
from any iterable — including generators that enumerate a million-spec
design grid lazily — and yields :class:`~repro.harness.sweep.
SweepOutcome`\\ s in input order as they resolve.  At most
``workers + backlog`` specs are ever materialized but unemitted
(:attr:`AsyncScheduler.high_water` records the observed maximum), so
memory is bounded by the window, not the grid.

The scheduler preserves, exactly, the contracts of the engines it
replaces:

* **Bit-identical results** — every execution still funnels through
  :func:`~repro.harness.sweep.execute_spec`; outcomes are emitted in
  input order regardless of completion order.
* **The ISSUE 4 fault-tolerance contract** — :class:`RetryPolicy`
  retries with backoff, soft per-attempt timeouts with late-result
  acceptance, ``BrokenProcessPool`` recovery that charges only in-flight
  specs, single-worker probe-pool crash isolation, SHA-256 result
  integrity digests, commit-as-you-go cache writes, quarantine as
  :class:`~repro.harness.sweep.FailedRun`, and idempotent attempt-tagged
  observability merge (winning attempt only, input order).  The
  ``sweep.*`` counters and ``run_retry``/``run_failed``/``pool_rebuild``
  events are unchanged.
* **ISSUE 6 span/store parity** — the ``sweep → spec → attempt →
  phase`` span tree is byte-identical between inline and pooled
  execution, and store rows are committed as results complete.

Concurrency model
-----------------

With ``workers >= 2`` the scheduler runs a private asyncio event loop
per stream: one lightweight task per in-window spec drives that spec's
retry loop, awaiting pool attempts via ``loop.run_in_executor`` over
the same :func:`~repro.harness.sweep._pool_task` worker entry point as
before.  Pool capacity is a semaphore, so a pool break can only ever
implicate the small, known in-flight set.  The synchronous
:meth:`AsyncScheduler.stream` generator bridges the async generator so
callers stay plain ``for``-loops.  With ``workers <= 1`` execution is
inline (no event loop, no processes) with identical semantics.

Multi-host draining
-------------------

Given a :class:`~repro.harness.workqueue.WorkQueue` (a claim-file
protocol inside the sharded :class:`~repro.harness.resultcache.
ResultCache`), several scheduler processes can consume the *same* spec
stream: each spec is executed by whichever host claims it first, other
hosts poll the shared cache for the completed result, and outcomes
merge by content digest — idempotent by construction.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..arch.config import MachineConfig, default_config
from ..obs.events import EventLog
from ..obs.metrics import get_registry
from ..obs.profile import PhaseProfiler
from ..obs.store import RunStore
from ..obs.trace import NULL_TRACER, Tracer, rollup_spans, span_id_for_key
from .faults import FaultPlan, apply_inline_fault
from .resultcache import ResultCache
from .spec import RunSpec, config_fingerprint
from .sweep import (
    DEFAULT_RETRY,
    FailedRun,
    RetryPolicy,
    SweepOutcome,
    _commit_result,
    _interval_fn,
    _pool_task,
    _result_digest,
    _spec_key,
    execute_spec,
)

__all__ = ["AsyncScheduler", "DEFAULT_BACKLOG"]

#: Default intake window beyond the worker count: how many specs may be
#: materialized-but-unemitted in addition to one per worker.  Small
#: enough that a million-spec generator is consumed lazily, large
#: enough that workers never starve while earlier specs block emission.
DEFAULT_BACKLOG = 32

#: Poll granularity (seconds) for states with no completion to await:
#: foreign-claim completion polling and stale-semaphore re-checks.
_TICK = 0.05


class _Resolution:
    """A resolved spec, parked until its input-order emission slot."""

    __slots__ = ("spec", "payload", "failure", "result", "cached")

    def __init__(self, spec, payload=None, failure=None, result=None,
                 cached=False):
        self.spec = spec
        self.payload = payload
        self.failure = failure
        self.result = result
        self.cached = cached


class _Attempt:
    """What one pooled attempt produced: a payload or a failure."""

    __slots__ = ("payload", "kind", "error", "detail", "probe_next")

    def __init__(self, payload=None, kind="", error="", detail="",
                 probe_next=False):
        self.payload = payload
        self.kind = kind
        self.error = error
        self.detail = detail
        self.probe_next = probe_next


class _PoolState:
    """Main + probe executors with semaphore capacity and generations.

    Pool rebuilds bump a generation counter; the coroutine that detected
    the break performs the rebuild, and every other coroutine's stale
    handle is recognized (and ignored) by its generation.  The probe
    pool is the ISSUE 4 crash-isolation device: capacity one, created
    lazily, so a poisoned spec can only crash itself.
    """

    def __init__(self, workers: int):
        self.nworkers = workers
        self.main = ProcessPoolExecutor(max_workers=workers)
        self.main_gen = 0
        self.main_sem = asyncio.Semaphore(workers)
        self.main_wedged = 0
        self.probe: Optional[ProcessPoolExecutor] = None
        self.probe_gen = 0
        self.probe_sem = asyncio.Semaphore(1)
        self._rebuild_lock = asyncio.Lock()

    def _current_sem(self, probe: bool) -> asyncio.Semaphore:
        return self.probe_sem if probe else self.main_sem

    async def acquire(self, probe: bool) -> asyncio.Semaphore:
        """Acquire one slot; robust against the semaphore being swapped
        out by a pool rebuild while we were waiting on it."""
        while True:
            sem = self._current_sem(probe)
            try:
                await asyncio.wait_for(sem.acquire(), timeout=_TICK)
            except asyncio.TimeoutError:
                continue
            if sem is self._current_sem(probe):
                return sem
            sem.release()

    def pool_for(self, probe: bool):
        if probe:
            if self.probe is None:
                self.probe = ProcessPoolExecutor(max_workers=1)
            return self.probe, self.probe_gen
        return self.main, self.main_gen

    def note_wedged(self, sem: asyncio.Semaphore, future) -> None:
        """A main-pool attempt timed out: its slot stays occupied by the
        wedged worker until the (abandoned) future completes."""
        self.main_wedged += 1
        gen = self.main_gen

        def _release(_future):
            if gen == self.main_gen:
                self.main_wedged = max(0, self.main_wedged - 1)
            sem.release()

        future.add_done_callback(_release)

    async def handle_break(self, probe: bool, gen: int, reason: str,
                           events, registry) -> None:
        """Replace a broken (or fully wedged) pool, once per generation."""
        async with self._rebuild_lock:
            current = self.probe_gen if probe else self.main_gen
            if gen != current:
                return  # another coroutine already rebuilt this pool
            if probe:
                old, self.probe = self.probe, None
                self.probe_gen += 1
            else:
                old = self.main
                self.main = ProcessPoolExecutor(max_workers=self.nworkers)
                self.main_gen += 1
                self.main_sem = asyncio.Semaphore(self.nworkers)
                self.main_wedged = 0
            registry.counter("sweep.pool_rebuilds").inc()
            events.emit("pool_rebuild", pool="probe" if probe else "main",
                        reason=reason)
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        for pool in (self.main, self.probe):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


class AsyncScheduler:
    """Streaming, cache-aware, fault-tolerant RunSpec scheduler.

    One scheduler executes one stream (pools live for the duration of a
    :meth:`stream` call); construct it with the sweep-wide policy —
    config, workers, cache/store/tracer/events, retry, faults — and
    iterate :meth:`stream` over any spec iterable.  The
    :class:`~repro.harness.session.ExperimentSession` facade constructs
    schedulers for callers; the deprecated
    :func:`~repro.harness.sweep.sweep` shim adapts list-in/list-out
    callers onto it.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        workers: int = 0,
        backlog: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        events: Optional[EventLog] = None,
        profiler: Optional[PhaseProfiler] = None,
        checkpoint_interval=0,
        profile_phases: bool = False,
        on_checkpoint_for: Optional[Callable] = None,
        program_cache: Optional[dict] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        store: Optional[RunStore] = None,
        queue=None,
    ):
        self.config = config or default_config()
        self.workers = workers
        self.backlog = DEFAULT_BACKLOG if backlog is None else max(1, backlog)
        self.cache = cache
        self.events = events if events is not None else EventLog()
        self.profiler = profiler or PhaseProfiler(self.events)
        self.interval_for = _interval_fn(checkpoint_interval)
        self.profile_phases = profile_phases
        self.on_checkpoint_for = on_checkpoint_for
        self.program_cache = program_cache
        self.retry = retry or DEFAULT_RETRY
        self.faults = faults
        self.tracer = tracer or NULL_TRACER
        self.store = store
        self.queue = queue
        self.config_digest = (
            config_fingerprint(self.config) if store is not None else ""
        )
        #: Observed maximum of specs materialized but not yet emitted —
        #: the bounded-memory guarantee, measurable:
        #: ``high_water <= max(1, workers) + backlog`` always holds.
        self.high_water = 0

    @property
    def window(self) -> int:
        """Intake bound: specs materialized-but-unemitted at once."""
        return max(1, self.workers) + self.backlog

    # -- public entry point --------------------------------------------------

    def stream(self, specs: Iterable[RunSpec], *,
               sweep_key: Optional[str] = None,
               total: Optional[int] = None) -> Iterator[SweepOutcome]:
        """Yield one :class:`SweepOutcome` per spec, in input order.

        ``specs`` may be any iterable — it is consumed lazily, at most
        :attr:`window` ahead of emission.  ``sweep_key``/``total`` pin
        the root sweep span's identity and ``specs`` field for batch
        callers (the :func:`~repro.harness.sweep.sweep` shim); streaming
        callers leave them unset and the count is filled in at close.
        Closing the generator mid-stream is safe: committed results stay
        in the cache/store, so a re-run resumes past them.
        """
        if self.workers >= 2:
            return self._stream_pooled(specs, sweep_key, total)
        return self._stream_inline(specs, sweep_key, total)

    # -- shared helpers ------------------------------------------------------

    def _note_pending(self, pending: int) -> None:
        if pending > self.high_water:
            self.high_water = pending

    def _cache_lookup(self, spec: RunSpec):
        if self.cache is None:
            return None
        return self.cache.get(spec, self.config)

    def _emit_cached_events(self, spec: RunSpec, result) -> None:
        """The cached-spec bookkeeping shared by both paths (the old
        engine's cache pre-pass): status + spec_done + store row."""
        self.events.status("run cached", mode=spec.mode,
                           **spec.event_fields())
        self.events.emit("spec_done", mode=spec.mode, cached=True,
                         attempts=0, **spec.event_fields())
        if self.store is not None:
            self.store.record_run(spec, result,
                                  config_digest=self.config_digest,
                                  cached=True, attempts=0)

    def _quarantine(self, spec: RunSpec, attempts: int, kind: str,
                    error: str, detail: str, registry) -> FailedRun:
        failure = FailedRun(spec, attempts, kind, error, detail)
        registry.counter("sweep.quarantined").inc()
        self.events.emit("run_failed", mode=spec.mode, attempts=attempts,
                         reason=kind, error=error, **spec.event_fields())
        if self.store is not None:
            self.store.record_failure(spec, error,
                                      config_digest=self.config_digest,
                                      attempts=attempts)
        if self.queue is not None:
            # Surrender the claim: a peer may have better luck (and if
            # not, it quarantines independently — both hosts converge).
            self.queue.release(spec, self.config)
        return failure

    def _note_retry(self, spec: RunSpec, nxt: int, kind: str, error: str,
                    registry) -> float:
        registry.counter("sweep.retries").inc()
        self.events.emit("run_retry", mode=spec.mode, attempt=nxt,
                         reason=kind, error=error, **spec.event_fields())
        return self.retry.delay(nxt)

    # -- inline execution ----------------------------------------------------

    def _stream_inline(self, specs, sweep_key, total):
        registry = get_registry()
        count = 0
        with self.tracer.span("sweep", span_key=sweep_key,
                              specs=(total or 0)) as sweep_span:
            try:
                for raw in specs:
                    spec = raw.normalized()
                    count += 1
                    self._note_pending(1)
                    cached = self._cache_lookup(spec)
                    if cached is not None:
                        self._emit_cached_events(spec, cached)
                        with self.tracer.span("spec", span_key=_spec_key(spec),
                                              label=spec.label()):
                            pass
                        yield SweepOutcome(spec, cached, cached=True)
                        continue
                    if self.queue is not None and \
                            not self.queue.claim(spec, self.config):
                        yield self._await_foreign_inline(spec)
                        continue
                    yield self._resolve_inline(spec, registry)
            finally:
                if sweep_span is not None and total is None:
                    sweep_span.fields["specs"] = count

    def _await_foreign_inline(self, spec: RunSpec) -> SweepOutcome:
        """Another host claimed ``spec``: poll the shared cache for its
        result, taking the claim over (and executing locally) if it
        goes stale."""
        registry = get_registry()
        while True:
            if self.cache.peek(spec, self.config) is not None:
                result = self._cache_lookup(spec)
                if result is not None:
                    self._emit_cached_events(spec, result)
                    with self.tracer.span("spec", span_key=_spec_key(spec),
                                          label=spec.label()):
                        pass
                    return SweepOutcome(spec, result, cached=True)
            if self.queue.claim(spec, self.config):
                return self._resolve_inline(spec, registry)
            time.sleep(_TICK)

    def _resolve_inline(self, spec: RunSpec, registry) -> SweepOutcome:
        """One spec's retry loop, inline — identical to the engine it
        replaces: attempts emit straight into the parent observability,
        injected at-dispatch faults fail before the attempt span opens,
        and the store rolls up the winning attempt's subtree only."""
        on_checkpoint = (
            self.on_checkpoint_for(spec) if self.on_checkpoint_for else None
        )
        key = _spec_key(spec)
        tracer, events = self.tracer, self.events
        started = time.perf_counter()
        outcome = None
        with tracer.span("spec", span_key=key, label=spec.label()):
            attempt = 0
            result = failure = None
            while True:
                events.emit("spec_dispatch", mode=spec.mode,
                            attempt=attempt, **spec.event_fields())
                try:
                    if self.faults is not None:
                        apply_inline_fault(self.faults, spec.label(), attempt)
                    with tracer.span("attempt",
                                     span_key=key + "#%d" % attempt,
                                     attempt=attempt):
                        result = execute_spec(
                            spec,
                            self.config,
                            events=events,
                            checkpoint_interval=self.interval_for(spec),
                            on_checkpoint=on_checkpoint,
                            profiler=self.profiler,
                            profile_phases=self.profile_phases,
                            program_cache=self.program_cache,
                            tracer=tracer,
                        )
                except Exception as exc:
                    kind = getattr(exc, "kind", "error")
                    detail = traceback.format_exc()
                    nxt = attempt + 1
                    if nxt >= self.retry.max_attempts:
                        failure = self._quarantine(spec, nxt, kind,
                                                   repr(exc), detail,
                                                   registry)
                        outcome = SweepOutcome(spec, None, attempts=nxt,
                                               failure=failure)
                        break
                    delay = self._note_retry(spec, nxt, kind, repr(exc),
                                             registry)
                    time.sleep(delay)
                    tracer.add_span("retry-wait", delay,
                                    span_key=key + "#wait%d" % nxt,
                                    attempt=nxt)
                    attempt = nxt
                    continue
                _commit_result(self.cache, spec, self.config, result,
                               self.faults, events, registry)
                if self.queue is not None:
                    self.queue.complete(spec, self.config)
                outcome = SweepOutcome(spec, result, attempts=attempt + 1)
                break
        host_seconds = time.perf_counter() - started
        if failure is not None:
            return outcome
        events.emit("spec_done", mode=spec.mode, cached=False,
                    attempts=attempt + 1, **spec.event_fields())
        if self.store is not None:
            rollup = None
            if tracer.enabled:
                rollup = rollup_spans(tracer.subtree(
                    span_id_for_key(key + "#%d" % attempt)))
            self.store.record_run(spec, result,
                                  config_digest=self.config_digest,
                                  attempts=attempt + 1,
                                  host_seconds=host_seconds, spans=rollup)
        return outcome

    # -- pooled execution ----------------------------------------------------

    def _stream_pooled(self, specs, sweep_key, total):
        """Bridge the async engine into a plain synchronous generator."""
        loop = asyncio.new_event_loop()
        agen = self._astream(specs, sweep_key, total)
        try:
            while True:
                try:
                    outcome = loop.run_until_complete(agen.__anext__())
                except StopAsyncIteration:
                    break
                yield outcome
        finally:
            try:
                loop.run_until_complete(agen.aclose())
            finally:
                loop.close()

    async def _astream(self, specs, sweep_key, total):
        registry = get_registry()
        state = _PoolState(self.workers)
        it = iter(specs)
        exhausted = False
        next_index = 0   # intake position
        next_emit = 0    # emission position
        tasks: Dict[int, asyncio.Task] = {}
        ready: Dict[int, _Resolution] = {}
        count = 0
        with self.tracer.span("sweep", span_key=sweep_key,
                              specs=(total or 0)) as sweep_span:
            try:
                while True:
                    # Emit every resolution contiguous from next_emit —
                    # input order, regardless of completion order.
                    while next_emit in ready:
                        resolution = ready.pop(next_emit)
                        next_emit += 1
                        yield self._emit_pooled(resolution, registry)
                    # Intake up to the window bound.
                    while not exhausted and \
                            len(tasks) + len(ready) < self.window:
                        try:
                            raw = next(it)
                        except StopIteration:
                            exhausted = True
                            break
                        spec = raw.normalized()
                        count += 1
                        self._note_pending(len(tasks) + len(ready) + 1)
                        cached = self._cache_lookup(spec)
                        if cached is not None:
                            self._emit_cached_events(spec, cached)
                            ready[next_index] = _Resolution(
                                spec, result=cached, cached=True)
                        elif self.queue is not None and \
                                not self.queue.claim(spec, self.config):
                            tasks[next_index] = asyncio.ensure_future(
                                self._await_foreign(spec, state, registry))
                        else:
                            tasks[next_index] = asyncio.ensure_future(
                                self._resolve_pooled(spec, state, registry))
                        next_index += 1
                    if next_emit in ready:
                        continue
                    if not tasks:
                        if ready:
                            continue  # unreachable gap guard
                        break  # exhausted and fully emitted
                    done, _pending = await asyncio.wait(
                        set(tasks.values()),
                        return_when=asyncio.FIRST_COMPLETED)
                    for index in [i for i, t in tasks.items() if t.done()]:
                        ready[index] = tasks.pop(index).result()
            finally:
                if sweep_span is not None and total is None:
                    sweep_span.fields["specs"] = count
                for task in tasks.values():
                    task.cancel()
                if tasks:
                    await asyncio.gather(*tasks.values(),
                                         return_exceptions=True)
                state.shutdown()

    def _emit_pooled(self, resolution: _Resolution, registry) -> SweepOutcome:
        """Materialize one resolution at its input-order slot: the spec
        span plus the winning attempt's observability merge — exactly
        once per spec, never double-counted."""
        spec = resolution.spec
        key = _spec_key(spec)
        with self.tracer.span("spec", span_key=key, label=spec.label()):
            pass
        if resolution.failure is not None:
            return SweepOutcome(spec, None,
                                attempts=resolution.failure.attempts,
                                failure=resolution.failure)
        if resolution.cached:
            return SweepOutcome(spec, resolution.result, cached=True)
        payload = resolution.payload
        attempt = payload["attempt"]
        if attempt:
            self.events.replay(payload["records"], attempt=attempt)
        else:
            self.events.replay(payload["records"])
        self.profiler.merge_snapshot(payload["phases"])
        registry.merge_snapshot(payload["metrics"])
        self.tracer.adopt(payload.get("spans", ()),
                          parent_id=span_id_for_key(key))
        return SweepOutcome(spec, payload["result"],
                            events=payload["records"],
                            attempts=attempt + 1)

    async def _await_foreign(self, spec: RunSpec, state: _PoolState,
                             registry) -> _Resolution:
        """Async twin of :meth:`_await_foreign_inline`."""
        while True:
            if self.cache.peek(spec, self.config) is not None:
                result = self._cache_lookup(spec)
                if result is not None:
                    self._emit_cached_events(spec, result)
                    return _Resolution(spec, result=result, cached=True)
            if self.queue.claim(spec, self.config):
                return await self._resolve_pooled(spec, state, registry)
            await asyncio.sleep(_TICK)

    async def _resolve_pooled(self, spec: RunSpec, state: _PoolState,
                              registry) -> _Resolution:
        """One spec's pooled retry loop: dispatch attempts, verify
        integrity, commit as results complete, quarantine at the
        attempt bound.  Never raises for a failing spec."""
        key = _spec_key(spec)
        attempt = 0
        probe = False
        abandoned: List[asyncio.Future] = []
        try:
            while True:
                outcome = await self._attempt_pooled(spec, key, attempt,
                                                     probe, abandoned,
                                                     state, registry)
                if outcome.payload is not None:
                    payload = outcome.payload
                    won = payload["attempt"]
                    if payload["digest"] != _result_digest(payload["result"]):
                        registry.counter("sweep.corrupt_results").inc()
                        outcome = _Attempt(
                            kind="corrupt",
                            error="result payload failed integrity check",
                            probe_next=probe)
                        attempt = won
                    else:
                        _commit_result(self.cache, spec, self.config,
                                       payload["result"], self.faults,
                                       self.events, registry)
                        if self.queue is not None:
                            self.queue.complete(spec, self.config)
                        self.events.emit("spec_done", mode=spec.mode,
                                         cached=False, attempts=won + 1,
                                         **spec.event_fields())
                        if self.store is not None:
                            spans = payload.get("spans") or None
                            rollup = rollup_spans(spans) if spans else None
                            host = sum(entry["seconds"] for entry in
                                       payload["phases"].values())
                            self.store.record_run(
                                spec, payload["result"],
                                config_digest=self.config_digest,
                                attempts=won + 1, host_seconds=host,
                                spans=rollup)
                        return _Resolution(spec, payload=payload)
                nxt = attempt + 1
                if nxt >= self.retry.max_attempts:
                    failure = self._quarantine(spec, nxt, outcome.kind,
                                               outcome.error, outcome.detail,
                                               registry)
                    return _Resolution(spec, failure=failure)
                delay = self._note_retry(spec, nxt, outcome.kind,
                                         outcome.error, registry)
                await asyncio.sleep(delay)
                self.tracer.add_span("retry-wait", delay,
                                     parent_id=span_id_for_key(key),
                                     span_key=key + "#wait%d" % nxt,
                                     attempt=nxt)
                attempt = nxt
                probe = outcome.probe_next
        finally:
            # Whatever late attempts are still racing, their results are
            # no longer interesting — count them as ignored duplicates
            # when they land (the ISSUE 4 accounting).
            for future in abandoned:
                future.add_done_callback(_count_duplicate(registry))

    async def _attempt_pooled(self, spec: RunSpec, key: str, attempt: int,
                              probe: bool, abandoned, state: _PoolState,
                              registry) -> _Attempt:
        """Dispatch and await one pooled attempt.

        Returns the attempt's payload, or its failure classification
        (``crash``/``timeout``/``error``), handling pool breaks (the
        detecting coroutine rebuilds; the attempt is charged only if it
        was actually in flight) and late results from previously
        abandoned attempts of the same spec (first valid payload wins).
        """
        loop = asyncio.get_running_loop()
        while True:
            sem = await state.acquire(probe)
            pool, gen = state.pool_for(probe)
            try:
                future = loop.run_in_executor(
                    pool, _pool_task, spec.as_dict(), self.config,
                    self.interval_for(spec), self.profile_phases,
                    attempt, self.faults, self.tracer.enabled)
            except BrokenProcessPool:
                # Died between attempts: this attempt never started, so
                # recycle the pool and resubmit without penalty.
                sem.release()
                await state.handle_break(probe, gen, "submit on broken pool",
                                        self.events, registry)
                continue
            self.events.emit("spec_dispatch", mode=spec.mode,
                             attempt=attempt, probe=probe,
                             **spec.event_fields())
            deadline = (loop.time() + self.retry.timeout
                        if self.retry.timeout else None)
            while True:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - loop.time())
                done, _pending = await asyncio.wait(
                    {future} | set(abandoned), timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
                if future in done:
                    try:
                        exc = future.exception()
                    except asyncio.CancelledError:
                        # cancel_futures during a rebuild hit a queued
                        # task that never ran: resubmit, no charge.
                        sem.release()
                        break
                    sem.release()
                    if exc is None:
                        return _Attempt(payload=future.result())
                    if isinstance(exc, BrokenProcessPool):
                        registry.counter("sweep.requeued").inc()
                        await state.handle_break(probe, gen, "worker crash",
                                                self.events, registry)
                        return _Attempt(kind="crash",
                                        error="worker process died: %s" % exc,
                                        probe_next=True)
                    detail = "".join(traceback.format_exception(
                        type(exc), exc, exc.__traceback__))
                    return _Attempt(kind=getattr(exc, "kind", "error"),
                                    error=repr(exc), detail=detail,
                                    probe_next=probe)
                late = self._reap_abandoned(abandoned)
                if late is not None:
                    # A previously timed-out attempt delivered first:
                    # accept it ("late results are still accepted") and
                    # let the in-flight attempt resolve as a duplicate.
                    future.add_done_callback(_count_duplicate(registry))
                    return _Attempt(payload=late)
                if done:
                    continue  # only abandoned failures completed; re-wait
                # Soft timeout: abandon the attempt (its late result
                # stays acceptable), keep the worker's slot charged
                # until it actually finishes, and recycle the pool if
                # every main worker is wedged.
                abandoned.append(future)
                registry.counter("sweep.timeouts").inc()
                if probe:
                    sem.release()
                else:
                    state.note_wedged(sem, future)
                    if state.main_wedged >= state.nworkers:
                        await state.handle_break(
                            False, gen, "all workers wedged",
                            self.events, registry)
                return _Attempt(kind="timeout",
                                error="no result after %.2fs"
                                      % self.retry.timeout,
                                probe_next=probe)

    @staticmethod
    def _reap_abandoned(abandoned) -> Optional[dict]:
        """First completed abandoned attempt with a valid payload, if
        any; completed failures are dropped silently (their attempt was
        already charged when it timed out)."""
        for future in [f for f in abandoned if f.done()]:
            abandoned.remove(future)
            try:
                if future.exception() is None:
                    return future.result()
            except asyncio.CancelledError:
                pass
        return None


def _count_duplicate(registry):
    def _done(future):
        try:
            if not future.cancelled() and future.exception() is None:
                registry.counter("sweep.duplicates_ignored").inc()
        except asyncio.CancelledError:
            pass
    return _done
