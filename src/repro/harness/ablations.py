"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's published figures and probe its *claims*:

* ``drc_associativity`` — §IV-B: "The design doesn't require a
  fully-associative DRC since the miss penalty is marginal."  Measured:
  how much miss rate and IPC a 4-way or fully-associative DRC would buy.
* ``retaddr_policy`` — §IV-C: the architectural policy randomizes more
  return addresses than the conservative software-only policy.  Measured:
  residual attack surface (failover entries) and IPC cost of each.
* ``spread_factor`` — §V-C entropy: more spread = more entropy; the VCFR
  claim is that this is *performance-free* (layout lives only in the
  table), unlike naive ILR where spread worsens locality.
* ``prefetcher`` — Table I: the next-line prefetcher helps the baseline
  and VCFR but cannot help naive ILR.
"""

from __future__ import annotations

import statistics
from typing import List

from ..arch.cpu import simulate
from ..ilr import RandomizerConfig, make_flow, randomize
from ..workloads import build_image
from .experiments import ExperimentResult
from .runner import Runner

#: Apps with enough translation pressure to make ablations informative.
ABLATION_APPS: List[str] = ["gcc", "xalan", "h264ref", "namd"]


def drc_associativity(runner: Runner) -> ExperimentResult:
    """Direct-mapped vs 4-way vs fully-associative DRC at 128 entries."""
    result = ExperimentResult(
        "abl_drc_assoc", "DRC associativity ablation (128 entries)",
        ("app", "direct miss", "4-way miss", "full miss",
         "direct IPC", "full IPC"),
    )
    gains = []
    for app in ABLATION_APPS:
        program = runner.program_for(runner.spec(app))
        by_assoc = {}
        for assoc in (1, 4, 0):
            config = runner.base_config().with_drc(entries=128, assoc=assoc)
            by_assoc[assoc] = simulate(
                program.vcfr_image, make_flow("vcfr", program), config,
                max_instructions=runner.max_instructions,
            )
        gains.append(by_assoc[0].ipc / by_assoc[1].ipc)
        result.rows.append((
            app,
            round(by_assoc[1].drc_miss_rate, 4),
            round(by_assoc[4].drc_miss_rate, 4),
            round(by_assoc[0].drc_miss_rate, 4),
            round(by_assoc[1].ipc, 3),
            round(by_assoc[0].ipc, 3),
        ))
    avg_gain = statistics.mean(gains)
    result.summary = (
        "full associativity buys %.1f%% IPC on average over direct-mapped"
        % (100 * (avg_gain - 1))
    )
    result.paper_summary = (
        "§IV-B claim: a fully-associative DRC is unnecessary "
        "(miss penalty is marginal)"
    )
    # NB: LRU-associative DRCs can genuinely *lose* to hashed direct
    # mapping under cyclic translation reuse (the classic LRU streaming
    # pathology) — another reason the paper's direct-mapped choice holds.
    result.check("associativity helps at least one high-pressure app",
                 any(row[3] < row[1] for row in result.rows))
    result.check("full-assoc IPC gain stays modest (<15% avg) — the paper's "
                 "direct-mapped choice is reasonable", avg_gain < 1.15)
    return result


def retaddr_policy(runner: Runner) -> ExperimentResult:
    """Conservative (software) vs architectural (§IV-C) return-address policy."""
    result = ExperimentResult(
        "abl_retaddr", "Return-address randomization policy ablation",
        ("app", "randomized rets (arch)", "randomized rets (cons)",
         "redirects (arch)", "redirects (cons)", "IPC ratio cons/arch"),
    )
    surface_shrinks = True
    for app in ABLATION_APPS:
        image = build_image(app, scale=runner.scale)
        arch = randomize(image, RandomizerConfig(seed=runner.seed))
        cons = randomize(
            image,
            RandomizerConfig(seed=runner.seed, conservative_retaddr=True),
        )
        sim_arch = simulate(
            arch.vcfr_image, make_flow("vcfr", arch),
            runner.base_config(), max_instructions=runner.max_instructions,
        )
        sim_cons = simulate(
            cons.vcfr_image, make_flow("vcfr", cons),
            runner.base_config(), max_instructions=runner.max_instructions,
        )
        surface_shrinks &= len(arch.rdr.redirect) <= len(cons.rdr.redirect)
        result.rows.append((
            app,
            arch.stats.num_ret_randomized,
            cons.stats.num_ret_randomized,
            len(arch.rdr.redirect),
            len(cons.rdr.redirect),
            round(sim_cons.ipc / sim_arch.ipc, 3),
        ))
    result.summary = "architectural policy randomizes more, exposing fewer entries"
    result.paper_summary = (
        "§IV-C: hardware support maximizes return-address randomization"
    )
    result.check("architectural policy never randomizes fewer rets",
                 all(row[1] >= row[2] for row in result.rows))
    result.check("architectural policy never leaves more redirects",
                 surface_shrinks)
    result.check("both policies perform within 10% of each other",
                 all(0.9 <= row[5] <= 1.1 for row in result.rows))
    return result


def spread_factor(runner: Runner) -> ExperimentResult:
    """Entropy vs performance across layout spread factors."""
    result = ExperimentResult(
        "abl_spread", "Layout spread-factor ablation (VCFR vs naive)",
        ("spread", "entropy bits", "VCFR IPC", "naive IPC"),
    )
    app = "h264ref"
    image = build_image(app, scale=runner.scale)
    vcfr_ipcs, naive_ipcs, entropies = [], [], []
    for spread in (4, 16, 64):
        program = randomize(
            image, RandomizerConfig(seed=runner.seed, spread_factor=spread)
        )
        vcfr = simulate(
            program.vcfr_image, make_flow("vcfr", program),
            runner.base_config(), max_instructions=runner.max_instructions,
        )
        naive = simulate(
            program.naive_image, make_flow("naive_ilr", program),
            runner.base_config(), max_instructions=runner.max_instructions,
        )
        entropies.append(program.stats.entropy_bits)
        vcfr_ipcs.append(vcfr.ipc)
        naive_ipcs.append(naive.ipc)
        result.rows.append((
            spread, round(program.stats.entropy_bits, 1),
            round(vcfr.ipc, 3), round(naive.ipc, 3),
        ))
    result.summary = (
        "spread 4->64: entropy +%.1f bits, VCFR IPC moves %.1f%%, "
        "naive IPC moves %.1f%%"
        % (entropies[-1] - entropies[0],
           100 * (vcfr_ipcs[-1] / vcfr_ipcs[0] - 1),
           100 * (naive_ipcs[-1] / naive_ipcs[0] - 1))
    )
    result.paper_summary = (
        "VCFR decouples entropy from locality: spread is free under VCFR"
    )
    result.check("entropy grows with spread",
                 entropies == sorted(entropies))
    result.check("VCFR IPC is spread-insensitive (<3% swing)",
                 max(vcfr_ipcs) / min(vcfr_ipcs) < 1.03)
    return result


def prefetcher(runner: Runner) -> ExperimentResult:
    """Next-line IL1 prefetcher on/off, per mode (Table I's third row)."""
    result = ExperimentResult(
        "abl_prefetch", "IL1 next-line prefetcher ablation",
        ("app", "baseline gain %", "naive gain %", "vcfr gain %"),
    )
    base_gains, naive_gains = [], []
    for app in ("gcc", "h264ref"):
        program = runner.program_for(runner.spec(app))
        gains = {}
        for mode, image in (
            ("baseline", program.original),
            ("naive_ilr", program.naive_image),
            ("vcfr", program.vcfr_image),
        ):
            on_cfg = runner.base_config()
            off_cfg = runner.base_config()
            off_cfg.prefetch_il1 = False
            on = simulate(image, make_flow(mode, program), on_cfg,
                          max_instructions=runner.max_instructions)
            off = simulate(image, make_flow(mode, program), off_cfg,
                           max_instructions=runner.max_instructions)
            gains[mode] = 100 * (on.ipc / off.ipc - 1)
        base_gains.append(gains["baseline"])
        naive_gains.append(gains["naive_ilr"])
        result.rows.append((
            app, round(gains["baseline"], 2), round(gains["naive_ilr"], 2),
            round(gains["vcfr"], 2),
        ))
    result.summary = (
        "prefetching helps baseline/VCFR; it cannot rescue naive ILR"
    )
    result.paper_summary = (
        "Table I: prefetch 'effective' except under naive ILR"
    )
    result.check("prefetcher never helps naive more than baseline",
                 all(n <= b + 0.5 for n, b in zip(naive_gains, base_gains)))
    return result


def context_switching(runner: Runner) -> ExperimentResult:
    """DRC cold-start sensitivity to scheduling quantum (§IV-D system impact).

    The paper extends the process context with the RDR tables; a context
    switch therefore invalidates the DRC.  This ablation self-switches a
    translation-heavy workload at shrinking quanta and measures how much
    of VCFR's IPC survives — the cost of the system-level design.
    """
    from ..arch.context import measure_switch_sensitivity
    from ..ilr import make_flow

    result = ExperimentResult(
        "abl_ctxswitch", "Context-switch (DRC cold-start) sensitivity",
        ("quantum (insts)", "IPC", "DRC miss rate"),
    )
    program = runner.program_for(runner.spec("xalan"))
    quanta = (100_000, 20_000, 5_000, 1_000)
    sweep = measure_switch_sensitivity(
        program, make_flow, config=runner.base_config(), quanta=quanta,
        max_instructions=min(runner.max_instructions, 80_000),
    )
    ipcs = []
    for quantum in quanta:
        res = sweep[quantum]
        ipcs.append(res.ipc)
        result.rows.append(
            (quantum, round(res.ipc, 4), round(res.drc_miss_rate, 4))
        )
    result.summary = (
        "IPC %.3f at 100k-instruction quanta -> %.3f at 1k (DRC refills "
        "dominate only at unrealistically small quanta)" % (ipcs[0], ipcs[-1])
    )
    result.paper_summary = (
        "§IV-D: the main system-level impact is the per-process RDR tables"
    )
    result.check("IPC degrades monotonically as quanta shrink",
                 all(a >= b - 1e-9 for a, b in zip(ipcs, ipcs[1:])))
    result.check("realistic quanta (>=20k insts) cost <5% IPC",
                 ipcs[1] >= 0.95 * ipcs[0])
    return result


def page_confined_layout(runner: Runner) -> ExperimentResult:
    """§IV-D iTLB mitigation: page-confined vs whole-region randomization."""
    from ..ilr import RandomizerConfig, make_flow, randomize

    result = ExperimentResult(
        "abl_pageconf", "Page-confined randomization (naive-ILR iTLB relief)",
        ("layout", "entropy bits", "naive iTLB misses", "naive IPC"),
    )
    image = build_image("gcc", scale=runner.scale)
    rows = {}
    for confined in (False, True):
        program = randomize(
            image,
            RandomizerConfig(seed=runner.seed, page_confined=confined),
        )
        naive = simulate(
            program.naive_image, make_flow("naive_ilr", program),
            runner.base_config(), max_instructions=runner.max_instructions,
        )
        rows[confined] = (program.stats.entropy_bits, naive)
        result.rows.append((
            "page-confined" if confined else "whole-region",
            round(program.stats.entropy_bits, 1),
            naive.itlb_misses,
            round(naive.ipc, 3),
        ))
    result.summary = (
        "confinement cuts naive iTLB misses %dx at a cost of %.1f entropy bits"
        % (max(1, rows[False][1].itlb_misses // max(1, rows[True][1].itlb_misses)),
           rows[False][0] - rows[True][0])
    )
    result.paper_summary = (
        "§IV-D: 'control flow randomization can be confined within the "
        "same page, which will further reduce its impact to iTLB'"
    )
    result.check("confinement reduces naive iTLB misses",
                 rows[True][1].itlb_misses < rows[False][1].itlb_misses)
    result.check("confinement costs entropy",
                 rows[True][0] < rows[False][0])
    result.check("confinement does not hurt naive IPC",
                 rows[True][1].ipc >= rows[False][1].ipc - 0.01)
    return result


ALL_ABLATIONS = {
    "drc_associativity": drc_associativity,
    "retaddr_policy": retaddr_policy,
    "spread_factor": spread_factor,
    "prefetcher": prefetcher,
    "context_switching": context_switching,
    "page_confined_layout": page_confined_layout,
}


def run_all_ablations(runner: Runner):
    """Run every ablation, sharing the runner's caches."""
    return {name: fn(runner) for name, fn in ALL_ABLATIONS.items()}
