"""One experiment per paper table/figure.

Each function takes a shared :class:`~repro.harness.runner.Runner` and
returns an :class:`ExperimentResult` with per-application rows, a summary,
and the paper's reference numbers for side-by-side reporting.  The
``checks`` list holds (description, bool) shape assertions — the criteria
DESIGN.md §4 commits to.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..analysis import analyze_functions, collect_stats
from ..arch.simstats import ratio
from ..security import can_build_payload, scan_gadgets, survey_image
from ..workloads import build_image
from . import paper
from .runner import Runner
from .spec import RunSpec


@dataclass
class ExperimentResult:
    """Result of reproducing one table/figure."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple] = field(default_factory=list)
    summary: str = ""
    paper_summary: str = ""
    checks: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(ok for _desc, ok in self.checks)

    def check(self, description: str, ok: bool) -> None:
        self.checks.append((description, bool(ok)))


# ---------------------------------------------------------------------------
# Table I — qualitative mode comparison
# ---------------------------------------------------------------------------


def table1(runner: Runner) -> ExperimentResult:
    """Differences between straightforward ILR and VCFR (Table I).

    The qualitative rows are *measured*, not asserted: locality is judged
    by the IL1 miss-rate ratio, prefetch effectiveness by the prefetcher
    waste rate, diversity by whether a randomized layout exists.
    """
    result = ExperimentResult(
        "table1", "Differences between straightforward ILR and VCFR",
        ("property",) + paper.TABLE1_COLUMNS,
    )
    probe = "h264ref"  # any app with a non-trivial footprint
    base = runner.run(runner.spec(probe, "baseline"))
    naive = runner.run(runner.spec(probe, "naive_ilr"))
    vcfr = runner.run(runner.spec(probe, "vcfr"))

    locality_naive = naive.il1_miss_rate < 2 * base.il1_miss_rate
    locality_vcfr = vcfr.il1_miss_rate < 2 * base.il1_miss_rate
    prefetch_naive = naive.il1_prefetch_waste_rate < 0.5
    prefetch_vcfr = vcfr.il1_prefetch_waste_rate < 0.5

    result.rows = [
        ("Execution", "no control flow randomization", "randomized control flow",
         "randomized control flow"),
        ("Instruction locality", "preserved",
         "preserved" if locality_naive else "destroyed",
         "preserved" if locality_vcfr else "destroyed"),
        ("Instruction prefetch", "effective",
         "effective" if prefetch_naive else "not effective",
         "effective" if prefetch_vcfr else "not effective"),
        ("Control flow diversity", "no diversity", "diversified", "diversified"),
    ]
    result.check("naive ILR destroys locality", not locality_naive)
    result.check("VCFR preserves locality", locality_vcfr)
    result.check("naive ILR defeats the prefetcher", not prefetch_naive)
    result.check("VCFR keeps the prefetcher effective", prefetch_vcfr)
    result.summary = "measured qualitative properties match Table I"
    result.paper_summary = "Table I: naive ILR destroys locality/prefetch; VCFR preserves both"
    return result


# ---------------------------------------------------------------------------
# Fig. 2 — software-ILR emulator slowdown
# ---------------------------------------------------------------------------


def fig2(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig2", "Software ILR emulation slowdown vs native execution",
        ("app", "native cycles", "emulator host instructions", "slowdown"),
    )
    slowdowns = []
    for app in paper.FIG2["apps"]:
        native = runner.run(runner.spec(app, "baseline"))
        emulated = runner.emulate(app)
        slowdown = emulated.slowdown_vs(native.cycles)
        slowdowns.append(slowdown)
        result.rows.append(
            (app, native.cycles, emulated.host_instructions, round(slowdown, 1))
        )
    avg = statistics.mean(slowdowns)
    result.summary = "average slowdown %.0fx (min %.0fx, max %.0fx)" % (
        avg, min(slowdowns), max(slowdowns),
    )
    result.paper_summary = paper.FIG2["claim"]
    result.check("every app slows down by >100x", min(slowdowns) > 100)
    result.check("slowdowns in the hundreds-to-~1500x band",
                 max(slowdowns) < 4000)
    return result


# ---------------------------------------------------------------------------
# Fig. 3 — naive ILR cache impact
# ---------------------------------------------------------------------------


def fig3(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig3", "Impact of naive hardware ILR on IL1/L2 (vs baseline)",
        ("app", "IL1 miss ratio (x)", "prefetch waste +pp", "L2 pressure +%"),
    )
    ratios, waste_deltas, pressure_deltas = [], [], []
    for app in paper.SPEC_APPS:
        base = runner.run(runner.spec(app, "baseline"))
        naive = runner.run(runner.spec(app, "naive_ilr"))
        miss_ratio = ratio(naive.il1_miss_rate,
                           max(base.il1_miss_rate, 1e-9))
        waste = 100 * (naive.il1_prefetch_waste_rate - base.il1_prefetch_waste_rate)
        pressure = 100 * ratio(naive.l2_pressure - base.l2_pressure,
                               max(base.l2_pressure, 1))
        ratios.append(miss_ratio)
        waste_deltas.append(waste)
        pressure_deltas.append(pressure)
        result.rows.append(
            (app, round(miss_ratio, 1), round(waste, 1), round(pressure, 1))
        )
    result.summary = (
        "IL1 miss ratio: median %.1fx, max %.0fx; prefetch waste +%.0fpp avg; "
        "L2 pressure +%.0f%% median"
        % (statistics.median(ratios), max(ratios),
           statistics.mean(waste_deltas), statistics.median(pressure_deltas))
    )
    result.paper_summary = (
        "IL1 miss rate x%.1f avg (outlier %dx); prefetch misses +%.0f%%; "
        "L2 pressure +%.0f%%"
        % (paper.FIG3["il1_miss_ratio_avg"], paper.FIG3["il1_miss_ratio_outlier"],
           paper.FIG3["prefetch_miss_increase_pct"],
           paper.FIG3["l2_pressure_increase_pct"])
    )
    result.check("IL1 miss ratio rises by >2x for most apps",
                 statistics.median(ratios) > 2.0)
    result.check("at least one catastrophic outlier (>100x)", max(ratios) > 100)
    result.check("prefetching becomes wasteful somewhere",
                 max(waste_deltas) > 25)
    result.check("L2 pressure increases overall",
                 statistics.mean(pressure_deltas) > 0)
    return result


# ---------------------------------------------------------------------------
# Fig. 4 — naive ILR normalized IPC
# ---------------------------------------------------------------------------


def fig4(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig4", "Normalized IPC of naive hardware ILR",
        ("app", "baseline IPC", "naive IPC", "normalized"),
    )
    normalized = []
    for app in paper.SPEC_APPS:
        base = runner.run(runner.spec(app, "baseline"))
        naive = runner.run(runner.spec(app, "naive_ilr"))
        norm = ratio(naive.ipc, base.ipc)
        normalized.append(norm)
        result.rows.append(
            (app, round(base.ipc, 3), round(naive.ipc, 3), round(norm, 3))
        )
    avg = statistics.mean(normalized)
    result.summary = "average normalized IPC %.3f" % avg
    lo, hi = paper.FIG4["normalized_ipc_avg_range"]
    result.paper_summary = "average normalized IPC %.2f-%.2f" % (lo, hi)
    result.check("average normalized IPC in the 0.5-0.8 band", 0.5 <= avg <= 0.8)
    result.check("naive ILR never beats baseline", max(normalized) <= 1.02)
    return result


# ---------------------------------------------------------------------------
# Table II — static control-flow statistics
# ---------------------------------------------------------------------------


def table2(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "table2", "Static analysis of control flow",
        ("app", "direct", "indirect", "calls", "indirect calls"),
    )
    measured: Dict[str, Tuple[int, int, int, int]] = {}
    for app in paper.SPEC_APPS:
        image = build_image(app, scale=runner.scale)
        stats = collect_stats(image)
        measured[app] = stats.as_table2_row()
        result.rows.append((app,) + stats.as_table2_row())
    result.summary = "see rows (scaled-down binaries; shapes compared below)"
    result.paper_summary = "Table II (e.g. gcc: 149512 direct; xalan: 15465 indirect calls)"

    def rank(d, idx):
        return max(d, key=lambda a: d[a][idx])

    result.check("gcc has the most direct transfers", rank(measured, 0) == "gcc")
    result.check("xalan has the most indirect function calls",
                 rank(measured, 3) == "xalan")
    result.check("direct transfers dominate indirect in every app",
                 all(m[0] > 3 * m[1] for m in measured.values()))
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — functions with/without ret
# ---------------------------------------------------------------------------


def fig9(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig9", "Functions with and without ret instructions",
        ("app", "with ret", "without ret"),
    )
    with_counts, without_counts = [], []
    for app in paper.SPEC_APPS:
        image = build_image(app, scale=runner.scale)
        analysis = analyze_functions(image)
        w, wo = len(analysis.with_ret), len(analysis.without_ret)
        with_counts.append(w)
        without_counts.append(wo)
        result.rows.append((app, w, wo))
    result.summary = "ret-returning functions dominate (%d vs %d total)" % (
        sum(with_counts), sum(without_counts),
    )
    result.paper_summary = paper.FIG9["claim"]
    result.check("functions with ret dominate in every app",
                 all(w >= wo for w, wo in zip(with_counts, without_counts)))
    return result


# ---------------------------------------------------------------------------
# Fig. 11 — gadget removal
# ---------------------------------------------------------------------------


def fig11(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig11", "Gadgets removed by control flow randomization",
        ("app", "gadgets before", "usable after", "removed %", "payload before",
         "payload after"),
    )
    removals = []
    payload_blocked_everywhere = True
    for app in paper.SPEC_APPS:
        program = runner.program_for(runner.spec(app))
        survey = survey_image(program.original, program.rdr)
        gadgets = scan_gadgets(program.original)
        before = can_build_payload(gadgets)
        survivors = [g for g in gadgets
                     if g.addr in program.rdr.unrandomized_entries()]
        after = can_build_payload(survivors)
        payload_blocked_everywhere &= not after
        removals.append(survey.removal_percent)
        result.rows.append(
            (app, survey.total_before, survey.usable_after,
             round(survey.removal_percent, 1),
             "yes" if before else "no", "yes" if after else "no")
        )
    avg = statistics.mean(removals)
    result.summary = "average removal %.1f%%; payloads after randomization: none" % avg
    result.paper_summary = "average removal %.0f%%; %s" % (
        paper.FIG11["avg_removal_pct"], paper.FIG11["claim"],
    )
    result.check("average gadget removal >= 95%", avg >= 95.0)
    result.check("no attack payload can be assembled after randomization",
                 payload_blocked_everywhere)
    return result


# ---------------------------------------------------------------------------
# Fig. 12 — VCFR speedup over naive ILR
# ---------------------------------------------------------------------------


def fig12(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig12", "VCFR speedup over straightforward hardware ILR (DRC 128)",
        ("app", "naive IPC", "VCFR IPC", "speedup"),
    )
    speedups = {}
    for app in paper.SPEC_APPS:
        naive = runner.run(runner.spec(app, "naive_ilr"))
        vcfr = runner.run(runner.spec(app, "vcfr", drc_entries=128))
        speedup = ratio(vcfr.ipc, naive.ipc)
        speedups[app] = speedup
        result.rows.append(
            (app, round(naive.ipc, 3), round(vcfr.ipc, 3), round(speedup, 2))
        )
    avg = statistics.mean(speedups.values())
    gt2 = sorted(a for a, s in speedups.items() if s > 2.0)
    result.summary = "average speedup %.2fx; >2x: %s" % (avg, ", ".join(gt2))
    result.paper_summary = "average speedup %.2fx; >2x: %s" % (
        paper.FIG12["avg_speedup"], ", ".join(paper.FIG12["gt2x_apps"]),
    )
    result.check("VCFR is faster than naive ILR for every app",
                 min(speedups.values()) >= 0.99)
    result.check("average speedup exceeds 1.5x", avg > 1.5)
    result.check("multiple apps exceed 2x (incl. namd/h264ref/xalan)",
                 all(speedups[a] > 2.0 for a in ("namd", "h264ref", "xalan")))
    return result


# ---------------------------------------------------------------------------
# Fig. 13 — VCFR normalized IPC vs DRC size
# ---------------------------------------------------------------------------


def fig13(runner: Runner) -> ExperimentResult:
    sizes = (512, 128, 64)
    result = ExperimentResult(
        "fig13", "VCFR normalized IPC under different DRC sizes",
        ("app",) + tuple("DRC %d" % s for s in sizes),
    )
    by_size = {s: [] for s in sizes}
    for app in paper.SPEC_APPS:
        base = runner.run(runner.spec(app, "baseline"))
        row = [app]
        for size in sizes:
            vcfr = runner.run(runner.spec(app, "vcfr", drc_entries=size))
            norm = ratio(vcfr.ipc, base.ipc)
            by_size[size].append(norm)
            row.append(round(norm, 3))
        result.rows.append(tuple(row))
    means = {s: statistics.mean(v) for s, v in by_size.items()}
    result.summary = "mean normalized IPC: " + ", ".join(
        "%d->%.3f" % (s, means[s]) for s in sizes
    )
    result.paper_summary = "512->%.3f, 64->%.3f (2.1%% overhead)" % (
        paper.FIG13[512], paper.FIG13[64],
    )
    result.check("bigger DRC never hurts (512 >= 128 >= 64 on average)",
                 means[512] >= means[128] - 1e-9 >= means[64] - 2e-9)
    result.check("average overhead at 64 entries is small (<10%)",
                 means[64] > 0.90)
    result.check("average overhead at 512 entries is smaller (<6%)",
                 means[512] > 0.94)
    return result


# ---------------------------------------------------------------------------
# Fig. 14 — DRC miss rates
# ---------------------------------------------------------------------------


def fig14(runner: Runner) -> ExperimentResult:
    sizes = (512, 128, 64)
    result = ExperimentResult(
        "fig14", "DRC miss rates under different DRC sizes",
        ("app",) + tuple("DRC %d" % s for s in sizes),
    )
    by_size = {s: [] for s in sizes}
    worst = {}
    for app in paper.SPEC_APPS:
        row = [app]
        for size in sizes:
            vcfr = runner.run(runner.spec(app, "vcfr", drc_entries=size))
            miss = vcfr.drc_miss_rate
            by_size[size].append(miss)
            row.append(round(miss, 4))
        worst[app] = row[1 + sizes.index(64)]
        result.rows.append(tuple(row))
    means = {s: statistics.mean(v) for s, v in by_size.items()}
    result.summary = "mean miss rates: " + ", ".join(
        "%d->%.3f" % (s, means[s]) for s in sizes
    )
    result.paper_summary = "512->%.3f, 64->%.3f; worst: %s" % (
        paper.FIG14[512], paper.FIG14[64], ", ".join(paper.FIG14["worst_apps"]),
    )
    result.check("miss rate shrinks with DRC size",
                 means[512] <= means[128] <= means[64])
    result.check("64-entry average miss rate is substantial (>3%)",
                 means[64] > 0.03)
    result.check("512-entry average miss rate is small (<10%)",
                 means[512] < 0.10)
    return result


# ---------------------------------------------------------------------------
# Fig. 15 — DRC dynamic power overhead
# ---------------------------------------------------------------------------


def fig15(runner: Runner) -> ExperimentResult:
    result = ExperimentResult(
        "fig15", "DRC dynamic power overhead (DRC 128)",
        ("app", "DRC lookups", "overhead %"),
    )
    overheads = []
    for app in paper.SPEC_APPS:
        vcfr = runner.run(runner.spec(app, "vcfr", drc_entries=128))
        pct = vcfr.drc_power_overhead_percent
        overheads.append(pct)
        result.rows.append((app, vcfr.drc_lookups, round(pct, 3)))
    avg = statistics.mean(overheads)
    result.summary = "average DRC dynamic power overhead %.3f%%" % avg
    result.paper_summary = "average %.2f%% of CPU dynamic power" % (
        paper.FIG15["avg_power_overhead_pct"],
    )
    result.check("overhead is a small fraction of CPU power (<2%)", avg < 2.0)
    result.check("overhead is non-zero (the DRC is exercised)", avg > 0.0)
    return result


# ---------------------------------------------------------------------------
# Gadget-availability window — the rotation-service vs JIT-ROP race
# (beyond the paper: §V-C argues re-randomization bounds leaked-table
# usefulness but never runs the race; this family measures it)
# ---------------------------------------------------------------------------


def gadget_window(runner: Runner) -> ExperimentResult:
    """Gadget-availability window vs rotation cost, by policy x rate.

    Sweeps rotation policy against memory-disclosure rate for a
    payload-capable service tenant and reports the attacker's exposure
    (fraction of execution with a complete harvested payload, and the
    longest contiguous such window) against the defense's cost
    (rotation cycles charged plus block/trace invalidations).  Race
    points are seed-deterministic and bit-identical between sequential
    and pooled execution.
    """
    from ..security import (
        AdversarySpec,
        RaceSpec,
        RotationPolicy,
        sweep_race,
    )

    result = ExperimentResult(
        "gadget_window",
        "Gadget-availability window vs rotation cost (JIT-ROP race)",
        ("policy", "disclosure rate", "exposure %", "max window (instr)",
         "first goal @", "rotations", "rotation cycles", "blk+trc inval",
         "IPC"),
    )
    budget = 80_000
    rates = (0.25, 0.5)
    policies = [
        RotationPolicy("none"),
        RotationPolicy("periodic", period_instructions=20_000),
        RotationPolicy("periodic", period_instructions=5_000),
        RotationPolicy("on_probe", probe_threshold=2),
        RotationPolicy("on_syscall", syscall_period=400),
    ]

    def adversary_for(policy, rate, enabled=True):
        return AdversarySpec(
            enabled=enabled,
            disclosure_rate=rate,
            mappings_per_disclosure=12,
            probe_rate=0.3 if policy.kind == "on_probe" else 0.0,
        )

    specs = [
        RaceSpec(policy=policy, adversary=adversary_for(policy, rate),
                 max_instructions=budget)
        for rate in rates
        for policy in policies
    ]
    # Control point: same service, adversary switched off entirely.
    control_spec = RaceSpec(
        policy=RotationPolicy("periodic", period_instructions=20_000),
        adversary=adversary_for(policies[1], rates[0], enabled=False),
        max_instructions=budget,
    )
    specs.append(control_spec)

    races = sweep_race(
        specs,
        workers=getattr(runner, "workers", 0),
        events=getattr(runner, "events", None),
        store=getattr(runner, "store", None),
    )
    control = races[-1]
    by_point = {
        (race.policy, race.disclosure_rate): race for race in races[:-1]
    }
    for race in races:
        label = race.policy if race.adversary_enabled else (
            race.policy + " (adv off)"
        )
        result.rows.append((
            label,
            race.disclosure_rate,
            round(100.0 * race.exposure_fraction, 2),
            race.max_exposure_streak,
            race.first_goal_icount if race.first_goal_icount is not None
            else "-",
            race.rotations,
            race.rotation_cycles,
            race.block_invalidations + race.trace_invalidations,
            round(race.ipc, 4),
        ))

    result.check(
        "adversary-disabled control leaks nothing and is never exposed",
        control.mappings_leaked == 0 and control.exposure_fraction == 0.0,
    )
    result.check(
        "every race point executed its full budget",
        all(race.instructions == race.tenants * budget for race in races),
    )
    result.check(
        "the service catalogue can express a payload (the race is about "
        "assembly, not counting)",
        all(race.payload_possible for race in races),
    )
    result.check(
        "a static layout leaves the attacker exposed at every rate",
        all(by_point[("none", rate)].exposure_fraction > 0.0
            for rate in rates),
    )
    for rate in rates:
        none_pt = by_point[("none", rate)]
        slow = by_point[("periodic@20000", rate)]
        fast = by_point[("periodic@5000", rate)]
        result.check(
            "faster rotation narrows the window (rate %.2f)" % rate,
            fast.max_exposure_streak <= slow.max_exposure_streak
            <= none_pt.max_exposure_streak
            and fast.exposure_fraction < none_pt.exposure_fraction,
        )
        result.check(
            "faster rotation costs more cycles (rate %.2f)" % rate,
            fast.rotation_cycles > slow.rotation_cycles > 0,
        )
        result.check(
            "periodic windows are bounded by period + quantum "
            "(rate %.2f)" % rate,
            slow.max_exposure_streak <= 20_000 + slow.window_instructions
            and fast.max_exposure_streak <= 5_000 + fast.window_instructions,
        )
    result.check(
        "on-probe rotation fires on crash telemetry",
        all(by_point[("on_probe@2", rate)].rotations > 0 and
            by_point[("on_probe@2", rate)].probe_crashes > 0
            for rate in rates),
    )
    result.check(
        "rotations flush the compiled tiers (DRC + blocks + traces)",
        all(race.block_invalidations >= race.rotations and
            race.drc_flushes == race.rotations
            for race in races if race.rotations),
    )

    high = by_point[("none", rates[-1])]
    guarded = by_point[("periodic@5000", rates[-1])]
    result.summary = (
        "at disclosure rate %.2f: static exposure %.0f%% (window %d instr) "
        "vs %.0f%% under periodic@5000 for %d rotation cycles"
        % (rates[-1], 100 * high.exposure_fraction, high.max_exposure_streak,
           100 * guarded.exposure_fraction, guarded.rotation_cycles)
    )
    result.paper_summary = (
        "beyond the paper: §V-C bounds leaked-table staleness statically; "
        "this family races the rotation service against a JIT-ROP harvester"
    )
    return result


# ---------------------------------------------------------------------------
# Datacenter fleet — multi-tenant serving over shared L2 + DRAM
# (beyond the paper: §IV-D measures per-switch DRC cost; this family
# runs protected tenants under traffic and reports the tails)
# ---------------------------------------------------------------------------


def fleet(runner: Runner) -> ExperimentResult:
    """Per-tenant tail latency and IPC fairness for a protected fleet.

    Four VCFR tenants serve open-loop traffic over two cores behind a
    genuinely shared L2 + DRAM; the grid varies arrival shape (Poisson
    vs bursty at the same long-run rate) and core count, with a
    lone-tenant control to expose cross-tenant L2 contention.  Fleet
    points are seed-deterministic and bit-identical between sequential
    and pooled execution.
    """
    from ..fleet import ArrivalSpec, FleetSpec, sweep_fleet

    result = ExperimentResult(
        "fleet",
        "Datacenter fleet: tail latency under multi-tenant contention",
        ("point", "tenant", "core", "served", "p50", "p95", "p99",
         "IPC", "fairness", "switches"),
    )
    requests = 30
    gap = 2_500
    poisson = ArrivalSpec(kind="poisson", requests=requests, mean_gap=gap)
    bursty = ArrivalSpec(kind="bursty", requests=requests, mean_gap=gap)
    specs = [
        FleetSpec(tenants=4, cores=2, arrival=poisson),
        FleetSpec(tenants=4, cores=2, arrival=bursty),
        FleetSpec(tenants=4, cores=1, arrival=poisson),
        FleetSpec(tenants=1, cores=1, arrival=poisson),
    ]
    points = sweep_fleet(
        specs,
        workers=getattr(runner, "workers", 0),
        events=getattr(runner, "events", None),
        store=getattr(runner, "store", None),
    )
    wide, wide_bursty, narrow, lone = points

    for spec, point in zip(specs, points):
        for tenant in point.tenant_results:
            result.rows.append((
                "%s %dt/%dc" % (spec.arrival.kind, spec.tenants,
                                spec.cores),
                tenant.tenant,
                tenant.core,
                "%d/%d" % (tenant.served, tenant.requests),
                tenant.p50_latency,
                tenant.p95_latency,
                tenant.p99_latency,
                round(tenant.ipc, 4),
                round(point.ipc_fairness, 4),
                tenant.switches,
            ))

    result.check(
        "every tenant served its whole trace (no dropped requests)",
        all(point.unserved == 0 for point in points),
    )
    result.check(
        "instruction conservation: work done == requests x demand",
        all(
            point.instructions
            == point.requests * point.request_instructions
            for point in points
        ),
    )
    result.check(
        "latency percentiles are ordered per tenant (p50<=p95<=p99<=max)",
        all(
            tenant.p50_latency <= tenant.p95_latency
            <= tenant.p99_latency <= tenant.max_latency
            for point in points for tenant in point.tenant_results
        ),
    )
    result.check(
        "homogeneous tenants share fairly (Jain index near 1)",
        0.95 <= wide.ipc_fairness <= 1.0,
    )
    result.check(
        "halving cores under the same load fattens the tail",
        narrow.p99_latency > wide.p99_latency,
    )
    result.check(
        "bursty arrivals at the same long-run rate fatten the tail "
        "and deepen queues",
        wide_bursty.p99_latency > wide.p99_latency
        and max(t.max_queue_depth for t in wide_bursty.tenant_results)
        > max(t.max_queue_depth for t in wide.tenant_results),
    )
    result.check(
        "the L2 is genuinely shared: co-located tenants miss more than "
        "the same tenant count run alone would",
        narrow.l2_misses > narrow.tenants * lone.l2_misses,
    )
    result.check(
        "switch accounting: charged cycles == switches x per-switch cost",
        all(
            point.switch_cycles_total
            == point.switches * point.switch_cycles
            for point in points
        ),
    )

    result.summary = (
        "4 tenants / 2 cores: p99 %d cycles (fairness %.3f); bursty p99 "
        "%d; on 1 core p99 %d; shared-L2 misses %d vs %d lone x4"
        % (wide.p99_latency, wide.ipc_fairness, wide_bursty.p99_latency,
           narrow.p99_latency, narrow.l2_misses, lone.l2_misses * 4)
    )
    result.paper_summary = (
        "beyond the paper: §IV-D prices one context switch; this family "
        "serves traffic across tenants sharing the L2 the DRC refills "
        "through"
    )
    return result


#: Ordered registry of every experiment.
ALL_EXPERIMENTS: Dict[str, Callable[[Runner], ExperimentResult]] = {
    "table1": table1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "table2": table2,
    "fig9": fig9,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "gadget_window": gadget_window,
    "fleet": fleet,
}


# ---------------------------------------------------------------------------
# Suite spec enumeration — the sweep engine's work list
# ---------------------------------------------------------------------------

#: Declarative run requirements per experiment: (apps, mode, drc_entries)
#: groups, expanded against the runner's defaults by :func:`suite_specs`.
#: Static experiments (table2, fig9, fig11) need programs, not runs.
_EXPERIMENT_RUNS: Dict[str, List[Tuple[Sequence[str], str, int]]] = {
    "table1": [(("h264ref",), "baseline", 0),
               (("h264ref",), "naive_ilr", 0),
               (("h264ref",), "vcfr", 0)],
    "fig2": [(tuple(paper.FIG2["apps"]), "baseline", 0),
             (tuple(paper.FIG2["apps"]), "emulate", 0)],
    "fig3": [(tuple(paper.SPEC_APPS), "baseline", 0),
             (tuple(paper.SPEC_APPS), "naive_ilr", 0)],
    "fig4": [(tuple(paper.SPEC_APPS), "baseline", 0),
             (tuple(paper.SPEC_APPS), "naive_ilr", 0)],
    "fig12": [(tuple(paper.SPEC_APPS), "naive_ilr", 0),
              (tuple(paper.SPEC_APPS), "vcfr", 128)],
    "fig13": [(tuple(paper.SPEC_APPS), "baseline", 0)] + [
        (tuple(paper.SPEC_APPS), "vcfr", size) for size in (512, 128, 64)
    ],
    "fig14": [(tuple(paper.SPEC_APPS), "vcfr", size)
              for size in (512, 128, 64)],
    "fig15": [(tuple(paper.SPEC_APPS), "vcfr", 128)],
}


def suite_specs(runner: Runner,
                experiments: Sequence[str] = ()) -> List[RunSpec]:
    """Every :class:`RunSpec` the named experiments will ask for.

    This is what makes ``run_all`` sweepable: the full work list is
    known up front, so it can be fanned out over workers and checked
    against the result cache *before* any experiment starts.  Specs are
    deduplicated and ordered app-major within each experiment, matching
    the order a sequential run would first need them.
    """
    wanted = list(experiments) or list(ALL_EXPERIMENTS)
    specs: List[RunSpec] = []
    for exp_id in wanted:
        for apps, mode, drc_entries in _EXPERIMENT_RUNS.get(exp_id, ()):
            for app in apps:
                specs.append(runner.spec(app, mode, drc_entries))
    return list(dict.fromkeys(specs))


def run_all(runner: Runner,
            experiments: Sequence[str] = ()) -> Dict[str, ExperimentResult]:
    """Run every experiment (or the named subset), sharing the runner's
    caches.

    When the runner has a worker pool or a persistent result cache, the
    suite's full spec list is prefetched first — simulations fan out in
    parallel and/or load from disk, and the experiment functions then
    assemble their tables from memoized results.  Row values are
    bit-identical to a plain sequential run either way.
    """
    wanted = list(experiments) or list(ALL_EXPERIMENTS)
    if runner.workers >= 2 or runner.cache is not None:
        runner.prefetch(suite_specs(runner, wanted))
    return {name: ALL_EXPERIMENTS[name](runner) for name in wanted}
