"""Experiment harness: one reproduction per paper table/figure.

Usage::

    from repro.harness import Runner, run_all, format_report
    runner = Runner()                  # paper machine parameters
    results = run_all(runner)          # every table and figure
    print(format_report(results))

or from the command line::

    python -m repro.harness            # full report
    python -m repro.harness fig12      # a single experiment
"""

from . import paper
from .experiments import ALL_EXPERIMENTS, ExperimentResult, run_all
from .report import format_report, format_result, format_table
from .runner import Runner

__all__ = [
    "Runner",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_all",
    "format_report",
    "format_result",
    "format_table",
    "paper",
]
