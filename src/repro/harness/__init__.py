"""Experiment harness: one reproduction per paper table/figure.

Usage::

    from repro.harness import ExperimentSession, run_all, format_report
    session = ExperimentSession()      # paper machine parameters
    results = run_all(session)         # every table and figure
    print(format_report(results))

Scale it out with a worker pool and a persistent (sharded) result
cache, or stream an arbitrarily large spec generator in bounded
memory::

    session = ExperimentSession(workers=4, cache_dir=".repro-cache")
    results = run_all(session)         # parallel sweep; warm reruns
                                       # perform zero simulations
    for outcome in session.stream(grid()):   # generator-fed streaming
        ...

(The legacy ``Runner`` dataclass remains as an exact deprecated shim
over ``ExperimentSession``.)

or from the command line::

    python -m repro.harness                       # full report
    python -m repro.harness fig12                 # a single experiment
    python -m repro.harness --workers 4 --cache-dir .repro-cache
"""

from . import paper
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_all,
    suite_specs,
)
from .faults import FaultPlan, InjectedFault
from .report import format_report, format_result, format_table
from .resultcache import ResultCache
from .runner import Runner
from .scheduler import AsyncScheduler
from .session import ExperimentSession
from .spec import RunSpec, config_fingerprint
from .workqueue import WorkQueue
from .sweep import (
    FailedRun,
    FailedRunError,
    RetryPolicy,
    SweepOutcome,
    execute_spec,
    sweep,
)

__all__ = [
    "ExperimentSession",
    "AsyncScheduler",
    "WorkQueue",
    "Runner",
    "RunSpec",
    "ResultCache",
    "SweepOutcome",
    "RetryPolicy",
    "FailedRun",
    "FailedRunError",
    "FaultPlan",
    "InjectedFault",
    "sweep",
    "execute_spec",
    "suite_specs",
    "config_fingerprint",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_all",
    "format_report",
    "format_result",
    "format_table",
    "paper",
]
