"""Experiment harness: one reproduction per paper table/figure.

Usage::

    from repro.harness import Runner, run_all, format_report
    runner = Runner()                  # paper machine parameters
    results = run_all(runner)          # every table and figure
    print(format_report(results))

Scale it out with a worker pool and a persistent result cache::

    runner = Runner(workers=4, cache_dir=".repro-cache")
    results = run_all(runner)          # parallel sweep; warm reruns
                                       # perform zero simulations

or from the command line::

    python -m repro.harness                       # full report
    python -m repro.harness fig12                 # a single experiment
    python -m repro.harness --workers 4 --cache-dir .repro-cache
"""

from . import paper
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_all,
    suite_specs,
)
from .faults import FaultPlan, InjectedFault
from .report import format_report, format_result, format_table
from .resultcache import ResultCache
from .runner import Runner
from .spec import RunSpec, config_fingerprint
from .sweep import (
    FailedRun,
    FailedRunError,
    RetryPolicy,
    SweepOutcome,
    execute_spec,
    sweep,
)

__all__ = [
    "Runner",
    "RunSpec",
    "ResultCache",
    "SweepOutcome",
    "RetryPolicy",
    "FailedRun",
    "FailedRunError",
    "FaultPlan",
    "InjectedFault",
    "sweep",
    "execute_spec",
    "suite_specs",
    "config_fingerprint",
    "ExperimentResult",
    "ALL_EXPERIMENTS",
    "run_all",
    "format_report",
    "format_result",
    "format_table",
    "paper",
]
