"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from typing import Dict

from ..arch.simstats import ratio
from .experiments import ExperimentResult


def format_table(headers, rows) -> str:
    """Align ``rows`` under ``headers`` with simple column padding."""
    table = [tuple(str(c) for c in headers)]
    table += [tuple(str(c) for c in row) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment: table + paper-vs-measured + shape checks."""
    parts = [
        "=" * 72,
        "%s — %s" % (result.exp_id.upper(), result.title),
        "=" * 72,
        format_table(result.headers, result.rows),
        "",
        "measured: %s" % result.summary,
        "paper:    %s" % result.paper_summary,
    ]
    for desc, ok in result.checks:
        parts.append("  [%s] %s" % ("PASS" if ok else "FAIL", desc))
    return "\n".join(parts)


def format_report(results: Dict[str, ExperimentResult]) -> str:
    """Full report over all experiments plus a pass/fail roll-up."""
    sections = [format_result(res) for res in results.values()]
    total = sum(len(res.checks) for res in results.values())
    passed = sum(
        1 for res in results.values() for _d, ok in res.checks if ok
    )
    failed_ids = [rid for rid, res in results.items() if not res.passed]
    sections.append("=" * 72)
    # ratio(): an empty result set (every experiment skipped, e.g. all
    # of its specs quarantined) must report 0%, not divide by zero.
    sections.append(
        "SHAPE CHECKS: %d/%d passed (%.0f%%)%s"
        % (passed, total, 100.0 * ratio(passed, total),
           "" if not failed_ids else "; failing: " + ", ".join(failed_ids))
    )
    return "\n\n".join(sections)


def print_report(results: Dict[str, ExperimentResult]) -> None:  # pragma: no cover
    print(format_report(results))


def results_to_dict(results: Dict[str, ExperimentResult]) -> dict:
    """JSON-serializable form of a result set (for plotting pipelines)."""
    return {
        rid: {
            "title": res.title,
            "headers": list(res.headers),
            "rows": [list(row) for row in res.rows],
            "summary": res.summary,
            "paper_summary": res.paper_summary,
            "checks": [
                {"description": desc, "passed": ok}
                for desc, ok in res.checks
            ],
            "passed": res.passed,
        }
        for rid, res in results.items()
    }


def write_json(results: Dict[str, ExperimentResult], path: str) -> None:
    """Dump the result set as JSON."""
    import json

    with open(path, "w") as fh:
        json.dump(results_to_dict(results), fh, indent=2, sort_keys=True)
