"""RunSpec: the single currency describing one simulation run.

Every layer of the harness — :class:`~repro.harness.runner.Runner`, the
parallel sweep engine (:mod:`repro.harness.sweep`), the on-disk result
cache (:mod:`repro.harness.resultcache`), CLI flags, and event-log
fields — identifies a run by one frozen, hashable, serializable
:class:`RunSpec` instead of ad-hoc ``(name, mode, drc_entries)`` tuples.

A spec captures everything that determines a run's *result*: workload,
mode, DRC size, randomizer seed, workload scale, and the instruction
budgets.  What it deliberately does **not** capture is the machine
model — that is the :class:`~repro.arch.config.MachineConfig`, which is
fingerprinted separately (:func:`config_fingerprint`) so one spec set
can be swept across machine variants without re-encoding the machine in
every spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "RunSpec",
    "SIM_MODES",
    "ALL_MODES",
    "DEFAULT_DRC_ENTRIES",
    "config_fingerprint",
]

#: Modes executed by the cycle simulator.
SIM_MODES: Tuple[str, ...] = ("baseline", "naive_ilr", "vcfr")

#: All valid spec modes (``emulate`` runs the software-ILR VM instead).
ALL_MODES: Tuple[str, ...] = SIM_MODES + ("emulate",)

#: The paper's default DRC size; used when a VCFR spec leaves it unset.
DEFAULT_DRC_ENTRIES = 128


@dataclass(frozen=True)
class RunSpec:
    """Frozen identity of one simulation or emulation run.

    Instances are hashable (dict keys, set members), comparable, and
    round-trip through :meth:`as_dict`/:meth:`from_dict` for process
    boundaries and the on-disk cache.  Construct via
    :meth:`Runner.spec() <repro.harness.runner.Runner.spec>` to inherit
    the runner's seed/scale/budget defaults, or directly when all fields
    are known.
    """

    workload: str
    mode: str = "baseline"
    #: DRC entry count; meaningful only under ``vcfr`` (0 elsewhere).
    drc_entries: int = 0
    seed: int = 42
    scale: float = 1.0
    max_instructions: int = 300_000
    warmup_instructions: int = 0

    def __post_init__(self):
        if self.mode not in ALL_MODES:
            raise ValueError(
                "unknown mode %r (expected one of %s)"
                % (self.mode, ", ".join(ALL_MODES))
            )

    # -- canonical form ----------------------------------------------------

    def normalized(self) -> "RunSpec":
        """The canonical equivalent spec.

        Non-VCFR modes ignore the DRC, so their ``drc_entries`` is
        forced to 0 (making ``baseline@64`` and ``baseline@512`` the
        *same* run, as they are in the simulator); a VCFR spec with no
        DRC size gets the paper default.  Cache keys and runner memo
        keys are always computed on the normalized spec.
        """
        entries = self.drc_entries
        if self.mode != "vcfr":
            entries = 0
        elif not entries:
            entries = DEFAULT_DRC_ENTRIES
        if entries == self.drc_entries:
            return self
        return dataclasses.replace(self, drc_entries=entries)

    @property
    def is_simulation(self) -> bool:
        """True for cycle-simulator modes (False for ``emulate``)."""
        return self.mode in SIM_MODES

    # -- serialization -----------------------------------------------------

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    # -- presentation ------------------------------------------------------

    def label(self) -> str:
        """Compact human-readable identity, e.g. ``gcc/vcfr@128``."""
        spec = self.normalized()
        if spec.mode == "vcfr":
            return "%s/vcfr@%d" % (spec.workload, spec.drc_entries)
        return "%s/%s" % (spec.workload, spec.mode)

    def event_fields(self) -> Dict[str, object]:
        """Fields stamped onto every event record of this run, so the
        JSONL stream can be grouped back into runs (``repro.tools.stats``
        keys on workload/mode/drc_entries)."""
        spec = self.normalized()
        fields: Dict[str, object] = {"workload": spec.workload}
        if spec.mode == "vcfr":
            fields["drc_entries"] = spec.drc_entries
        return fields


def config_fingerprint(config) -> str:
    """Short stable digest of a :class:`~repro.arch.config.MachineConfig`.

    Two configs with identical parameters fingerprint identically
    regardless of object identity; any parameter change (cache geometry,
    penalties, DRC associativity, ...) changes the digest, so cached
    results can never be served across machine models.

    Host-side tuning knobs (``fastpath`` and the block-cache sizing —
    :data:`~repro.arch.config.HOST_TUNING_FIELDS`) are *excluded*: they
    are contractually cycle- and stat-invariant, so a result computed by
    the reference loop is equally valid for the fast path and vice
    versa.  The timing-model version
    (:data:`~repro.arch.config.TIMING_MODEL_VERSION`) is *included*, so
    results produced under older timing semantics can never be served
    against newer ones even when every config field matches.
    """
    from ..arch.config import HOST_TUNING_FIELDS, TIMING_MODEL_VERSION

    fields = dataclasses.asdict(config)
    for name in HOST_TUNING_FIELDS:
        fields.pop(name, None)
    fields["timing_model_version"] = TIMING_MODEL_VERSION
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
