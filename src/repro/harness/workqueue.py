"""Pull-model work queue over the sharded result cache.

Multiple host processes drain the *same* sweep by pointing their
schedulers at one shared :class:`~repro.harness.resultcache.
ResultCache` plus a :class:`WorkQueue`.  The protocol is three files
inside each spec's sharded entry directory, keyed by the spec's content
digest — idempotent by construction:

* **claim** — created with ``O_CREAT | O_EXCL`` (atomic on every
  filesystem that matters), so exactly one host wins the right to
  execute a spec.  The file body records the owner token, pid, and
  wall-clock time, for debugging and stale detection.
* **complete** — completion *is* the result file: a spec is done when
  ``ResultCache.peek`` finds its result.  :meth:`complete` merely
  removes the claim.
* **stale takeover** — a claim whose mtime is older than
  ``stale_after`` seconds belongs to a host presumed dead; a waiting
  peer atomically replaces it with its own claim and executes the spec
  itself.  Takeover is last-writer-wins with a read-back check, so two
  simultaneous stealers resolve to one owner; the losing host backs
  off.  In the worst interleaving a spec executes more than once —
  results are content-addressed and byte-identical, so duplicated work
  wastes time but never correctness ("at-least-once, merged by
  digest").

No daemon, no lock server, no extra state: ``rm -rf`` of the cache
directory resets everything, and a sweep resumed after ``kill -9``
picks up exactly the unclaimed/unfinished remainder.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from typing import Optional

from .resultcache import ResultCache
from .spec import RunSpec

__all__ = ["WorkQueue", "DEFAULT_STALE_AFTER"]

#: Default seconds after which an untouched claim is presumed orphaned.
#: Generous relative to any single spec's runtime in the suite; hosts
#: sharing very long-running specs should raise it.
DEFAULT_STALE_AFTER = 600.0


class WorkQueue:
    """Claim/complete coordination for one shared sweep.

    ``owner`` is this host process's token (defaults to
    ``hostname:pid``); ``stale_after`` bounds how long a dead host's
    claim can block a spec.
    """

    def __init__(self, cache: ResultCache, owner: Optional[str] = None,
                 stale_after: float = DEFAULT_STALE_AFTER):
        self.cache = cache
        self.owner = owner or "%s:%d" % (socket.gethostname(), os.getpid())
        self.stale_after = stale_after
        self.claimed = 0
        self.yielded = 0
        self.takeovers = 0

    # -- paths -------------------------------------------------------------

    def claim_path(self, spec: RunSpec, config) -> str:
        return os.path.join(self.cache.entry_dir(spec, config), "claim")

    def _token(self) -> dict:
        return {"owner": self.owner, "pid": os.getpid(),
                "time": time.time()}

    # -- protocol ----------------------------------------------------------

    def claim(self, spec: RunSpec, config) -> bool:
        """Try to win the right to execute ``spec``.

        True: this host owns the spec and must execute it.  False: a
        live peer owns it — poll the cache for the result and re-claim
        if the peer's claim goes stale.
        """
        path = self.claim_path(spec, config)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._maybe_take_over(path)
        with os.fdopen(fd, "w") as fh:
            json.dump(self._token(), fh)
        self.claimed += 1
        return True

    def _maybe_take_over(self, path: str) -> bool:
        """Steal a claim iff it is stale; read-back arbitration."""
        try:
            age = time.time() - os.stat(path).st_mtime
        except OSError:
            # Claim vanished between exists-check and stat (the owner
            # completed or released): treat as not ours this round; the
            # caller's poll loop will re-claim.
            self.yielded += 1
            return False
        if age <= self.stale_after:
            self.yielded += 1
            return False
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-claim-")
        with os.fdopen(fd, "w") as fh:
            json.dump(self._token(), fh)
        try:
            os.replace(tmp, path)
        except OSError:
            self._unlink(tmp)
            self.yielded += 1
            return False
        if self.owner_of(path) != self.owner:
            # A simultaneous stealer replaced our claim after ours
            # landed: last writer wins, we back off.
            self.yielded += 1
            return False
        self.claimed += 1
        self.takeovers += 1
        return True

    def complete(self, spec: RunSpec, config) -> None:
        """Mark ``spec`` done: the result file already signals
        completion, so this only clears the claim."""
        self._unlink(self.claim_path(spec, config))

    def release(self, spec: RunSpec, config) -> None:
        """Surrender a claim without a result (quarantine/abandon), so
        a peer may claim and try the spec itself."""
        self._unlink(self.claim_path(spec, config))

    # -- introspection -----------------------------------------------------

    def owner_of(self, path: str) -> Optional[str]:
        try:
            with open(path) as fh:
                return json.load(fh).get("owner")
        except (OSError, ValueError):
            return None

    def stats(self) -> dict:
        return {"claimed": self.claimed, "yielded": self.yielded,
                "takeovers": self.takeovers}

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "WorkQueue(owner=%r, claimed=%d, yielded=%d)" % (
            self.owner, self.claimed, self.yielded)
