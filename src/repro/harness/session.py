"""ExperimentSession: the unified front end of the experiment service.

ISSUE 7's API redesign collapses the harness's accumulated entry points
— ``Runner`` construction knobs, the batch ``sweep()`` call, cache and
store wiring, tracer/event plumbing — into **one object** that holds
the complete experiment policy:

* *what to run*: :meth:`spec`, or any iterable/generator of
  :class:`~repro.harness.spec.RunSpec`\\ s;
* *on what machine*: a :class:`~repro.arch.config.MachineConfig`;
* *how*: workers, intake backlog, retry/fault policy;
* *remembering what*: result cache (sharded, shareable between hosts),
  SQLite run store, span tracer, event log, progress heartbeat;
* *with whom*: an optional :class:`~repro.harness.workqueue.WorkQueue`
  so several sessions on different hosts drain one sweep together.

The three execution surfaces, from largest to smallest:

``stream(specs)``
    The native streaming surface: yields one
    :class:`~repro.harness.sweep.SweepOutcome` per spec in input order,
    consuming the source lazily with bounded in-flight submission —
    a million-spec generator runs in constant memory.  Outcomes are
    *not* memoized (that is the point).

``sweep(specs)`` / ``prefetch(specs)``
    Batch conveniences: materialize a list, deduplicate, return/memoize
    outcomes — what the deprecated module-level
    :func:`repro.harness.sweep.sweep` adapts onto.

``run(spec)`` / ``emulate(name)``
    Single-result lookups: memo, then disk cache, then execution
    (raising :class:`~repro.harness.sweep.FailedRunError` for
    quarantined specs).

:class:`~repro.harness.runner.Runner` is the legacy face of the same
object — it subclasses ``ExperimentSession`` with the historical
dataclass constructor and survives as a deprecated-but-exact shim.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..arch.config import MachineConfig, default_config
from ..arch.simstats import Checkpoint, SimResult
from ..emu import EmulationResult
from ..ilr import RandomizedProgram
from ..obs import status
from ..obs.events import EventLog
from ..obs.profile import PhaseProfiler
from ..obs.store import RunStore
from ..obs.trace import Tracer
from .faults import FaultPlan
from .resultcache import ResultCache
from .scheduler import AsyncScheduler
from .spec import RunSpec
from .sweep import (
    FailedRun,
    FailedRunError,
    ProgramKey,
    RetryPolicy,
    SweepOutcome,
    _sweep_key,
    build_program,
)
from .workqueue import DEFAULT_STALE_AFTER, WorkQueue

__all__ = ["ExperimentSession", "EMULATE_BUDGET_FACTOR"]

#: Emulation interprets ~an order of magnitude more guest instructions
#: than a cycle simulation retires in the same reporting window, so
#: emulate specs scale the budget (and checkpoint cadence) by this.
EMULATE_BUDGET_FACTOR = 10


class ExperimentSession:
    """One experiment campaign's policy + execution surfaces.

    Construct with keyword policy, use as a context manager when a
    store/event log should be closed deterministically::

        with ExperimentSession(workers=4, cache_dir=".repro-cache",
                               store_path="runs.sqlite") as session:
            for outcome in session.stream(grid()):   # any generator
                ...

    Attribute names are shared with the legacy :class:`~repro.harness.
    runner.Runner` dataclass (which subclasses this), so experiment
    code that duck-types ``runner.workers`` / ``runner.cache`` /
    ``runner.profiler`` works with either face.
    """

    # Class-level fallbacks so the legacy Runner subclass (whose
    # dataclass fields predate these knobs) inherits sane defaults.
    backlog: Optional[int] = None
    queue = None
    queue_owner: Optional[str] = None
    queue_stale_after: float = DEFAULT_STALE_AFTER

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        scale: float = 1.0,
        seed: int = 42,
        max_instructions: int = 300_000,
        warmup_instructions: int = 0,
        events: Optional[EventLog] = None,
        progress: bool = False,
        checkpoint_interval: int = 0,
        profile_phases: bool = False,
        workers: int = 0,
        backlog: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        store: Optional[RunStore] = None,
        store_path: Optional[str] = None,
        queue=None,
        queue_owner: Optional[str] = None,
        queue_stale_after: float = DEFAULT_STALE_AFTER,
    ):
        self.config = config
        self.scale = scale
        self.seed = seed
        self.max_instructions = max_instructions
        self.warmup_instructions = warmup_instructions
        self.events = events
        self.progress = progress
        self.checkpoint_interval = checkpoint_interval
        self.profile_phases = profile_phases
        self.workers = workers
        self.backlog = backlog
        self.cache = cache
        self.cache_dir = cache_dir
        self.retry = retry
        self.faults = faults
        self.tracer = tracer
        self.store = store
        self.store_path = store_path
        self.queue = queue
        self.queue_owner = queue_owner
        self.queue_stale_after = queue_stale_after
        self._programs: Dict[ProgramKey, RandomizedProgram] = {}
        self._sims: Dict[RunSpec, SimResult] = {}
        self._emulations: Dict[RunSpec, EmulationResult] = {}
        #: quarantined specs from past sweeps: spec -> FailedRun.
        self.failures: Dict[RunSpec, FailedRun] = {}
        self._finish_init()

    def _finish_init(self) -> None:
        """Resolve paths/policies into live objects (shared with the
        Runner dataclass's ``__post_init__``)."""
        if self.events is None:
            self.events = EventLog()
        if self.cache is None and self.cache_dir:
            self.cache = ResultCache(self.cache_dir)
        if self.store is None and self.store_path:
            self.store = RunStore(self.store_path)
        if self.queue is True:
            if self.cache is None:
                raise ValueError(
                    "a work queue needs a shared cache: pass cache_dir "
                    "(or a ResultCache) alongside queue=True"
                )
            self.queue = WorkQueue(self.cache, owner=self.queue_owner,
                                   stale_after=self.queue_stale_after)
        #: host wall-time attribution across harness stages (and, with
        #: ``profile_phases``, the CPU pipeline phases under ``sim.*``).
        self.profiler = PhaseProfiler(self.events)

    # -- policy ------------------------------------------------------------

    def base_config(self) -> MachineConfig:
        return self.config or default_config()

    def effective_checkpoint_interval(self) -> int:
        """Resolve the checkpointing cadence for cycle simulations."""
        if self.checkpoint_interval:
            return self.checkpoint_interval
        if self.events.enabled or self.progress:
            return max(250, self.max_instructions // 100)
        return 0

    def _interval_for(self, spec: RunSpec) -> int:
        interval = self.effective_checkpoint_interval()
        if spec.mode == "emulate":
            interval *= EMULATE_BUDGET_FACTOR
        return interval

    # -- specs -------------------------------------------------------------

    def spec(self, workload: str, mode: str = "baseline",
             drc_entries: int = 0) -> RunSpec:
        """A normalized :class:`RunSpec` inheriting this session's
        seed/scale/budget defaults."""
        budget = self.max_instructions
        warmup = self.warmup_instructions
        if mode == "emulate":
            budget *= EMULATE_BUDGET_FACTOR
            warmup = 0
        return RunSpec(
            workload=workload,
            mode=mode,
            drc_entries=drc_entries,
            seed=self.seed,
            scale=self.scale,
            max_instructions=budget,
            warmup_instructions=warmup,
        ).normalized()

    # -- programs ----------------------------------------------------------

    def program_for(self, spec: RunSpec) -> RandomizedProgram:
        """Randomized program for ``spec``'s workload (memoized)."""
        return build_program(spec.normalized(), self.profiler,
                             self._programs)

    # -- execution ---------------------------------------------------------

    def scheduler(self) -> AsyncScheduler:
        """A fresh :class:`AsyncScheduler` bound to this session's
        policy.  One scheduler serves one stream (its process pools
        live for the duration of the stream)."""
        return AsyncScheduler(
            self.base_config(),
            workers=self.workers,
            backlog=self.backlog,
            cache=self.cache,
            events=self.events,
            profiler=self.profiler,
            checkpoint_interval=self._interval_for,
            profile_phases=self.profile_phases,
            on_checkpoint_for=self._heartbeat,
            program_cache=self._programs,
            retry=self.retry,
            faults=self.faults,
            tracer=self.tracer,
            store=self.store,
            queue=self.queue,
        )

    def stream(self, specs: Iterable[RunSpec]) -> Iterator[SweepOutcome]:
        """Stream outcomes for ``specs`` in input order, lazily.

        The source may be any iterable — a generator over a huge design
        grid is the intended shape: at most ``max(1, workers) +
        backlog`` specs are materialized but unemitted at any moment.
        Outcomes are *not* memoized (quarantine failures are recorded
        in :attr:`failures`).  Closing the iterator mid-stream is safe:
        results committed so far stay in the cache/store, and a re-run
        resumes past them.
        """
        for outcome in self.scheduler().stream(specs):
            if not outcome.ok:
                self.failures[outcome.spec] = outcome.failure
            yield outcome

    def sweep(self, specs: Iterable[RunSpec],
              on_outcome=None) -> List[SweepOutcome]:
        """Batch surface: materialize ``specs``, deduplicate, return one
        outcome per input position (duplicates share one execution).
        ``on_outcome`` fires once per unique spec, in input order."""
        normalized = [spec.normalized() for spec in specs]
        unique = list(dict.fromkeys(normalized))
        outcomes = {
            outcome.spec: outcome
            for outcome in self.scheduler().stream(
                unique, sweep_key=_sweep_key(normalized),
                total=len(normalized))
        }
        for spec, outcome in outcomes.items():
            if not outcome.ok:
                self.failures[spec] = outcome.failure
        ordered = [outcomes[spec] for spec in normalized]
        if on_outcome is not None:
            seen = set()
            for outcome in ordered:
                if outcome.spec not in seen:
                    seen.add(outcome.spec)
                    on_outcome(outcome)
        return ordered

    def _memo_for(self, spec: RunSpec) -> Dict[RunSpec, object]:
        return self._sims if spec.is_simulation else self._emulations

    def run(self, spec: RunSpec):
        """Result for ``spec`` — memo, then disk cache, then execute.

        Returns a :class:`~repro.arch.simstats.SimResult` for simulator
        modes, an :class:`~repro.emu.EmulationResult` for ``emulate``.
        Raises :class:`~repro.harness.sweep.FailedRunError` when the
        spec was quarantined (every attempt failed, including a fresh
        round of attempts made by this call).
        """
        spec = spec.normalized()
        memo = self._memo_for(spec)
        if spec not in memo:
            self.prefetch([spec])
        if spec not in memo and spec in self.failures:
            raise FailedRunError(self.failures[spec])
        return memo[spec]

    def prefetch(self, specs: Iterable[RunSpec]) -> List[SweepOutcome]:
        """Materialize many specs at once (cache-aware; parallel when
        ``workers >= 2``), populating the in-memory memo.

        This is the fan-out point: ``run_all`` calls it with the whole
        suite's spec list so independent simulations saturate the worker
        pool instead of running serially inside each experiment.
        """
        wanted = [
            spec for spec in dict.fromkeys(s.normalized() for s in specs)
            if spec not in self._memo_for(spec)
        ]
        if not wanted:
            return []
        outcomes = self.sweep(
            wanted,
            on_outcome=self._note_outcome if self.progress else None,
        )
        for outcome in outcomes:
            if outcome.ok:
                self._memo_for(outcome.spec)[outcome.spec] = outcome.result
                self.failures.pop(outcome.spec, None)
            else:
                # Quarantined, never memoized: a later run() retries it
                # and raises FailedRunError if it keeps failing.
                self.failures[outcome.spec] = outcome.failure
        return outcomes

    def _note_outcome(self, outcome: SweepOutcome) -> None:
        if not outcome.ok:
            status("[%s] FAILED after %d attempt(s): %s" % (
                outcome.spec.label(), outcome.attempts,
                outcome.failure.error,
            ))
            return
        status("[%s] %s" % (
            outcome.spec.label(), "cached" if outcome.cached else "done",
        ))

    def _heartbeat(self, spec: RunSpec):
        """Per-checkpoint stderr progress line (``progress=True`` only)."""
        if not self.progress:
            return None
        label = spec.label()

        def _on_checkpoint(checkpoint: Checkpoint) -> None:
            status(
                "[%s] %7d instr  ipc %.3f  il1 %.4f  drc %.4f"
                % (label, checkpoint.instructions, checkpoint.ipc,
                   checkpoint.il1_miss_rate, checkpoint.drc_miss_rate)
            )

        return _on_checkpoint

    # -- software-ILR emulation --------------------------------------------

    def emulate(self, name: str) -> EmulationResult:
        """Run the software-ILR emulator on workload ``name``."""
        return self.run(self.spec(name, "emulate"))

    # -- rotation-service races ---------------------------------------------

    def race_sweep(self, specs):
        """Run rotation-vs-adversary race points under session policy.

        Uses the session's worker count for pooled execution and its
        event log / run store for recording; results are bit-identical
        either way (see :func:`repro.security.race.sweep_race`).
        """
        from ..security.race import sweep_race

        return sweep_race(
            specs,
            workers=self.workers,
            events=self.events,
            store=self.store,
        )

    # -- datacenter fleet ----------------------------------------------------

    def fleet_sweep(self, specs):
        """Run multi-tenant fleet points under session policy.

        Uses the session's worker count for pooled execution and its
        event log / run store for recording; results are bit-identical
        either way (see :func:`repro.fleet.sweep_fleet`).
        """
        from ..fleet import sweep_fleet

        return sweep_fleet(
            specs,
            workers=self.workers,
            events=self.events,
            store=self.store,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close owned long-lived resources (store, event sinks)."""
        if self.store is not None:
            self.store.close()
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "ExperimentSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
