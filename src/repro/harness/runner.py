"""Cached workload execution for the experiment harness.

Experiments share randomized programs and simulation results through one
:class:`Runner`, so the full per-paper experiment suite performs each
(workload, mode, DRC-size) simulation exactly once.

The runner is also the harness's observability anchor: every stage
(image build, randomization, cycle simulation, emulation) is timed by a
:class:`~repro.obs.profile.PhaseProfiler`, simulations emit periodic
progress checkpoints into the shared
:class:`~repro.obs.events.EventLog`, and ``progress=True`` turns those
checkpoints into live heartbeat lines on stderr.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import CycleCPU
from ..arch.simstats import Checkpoint, SimResult
from ..emu import EmulationResult, ILREmulator
from ..ilr import RandomizedProgram, RandomizerConfig, make_flow, randomize
from ..obs import status
from ..obs.events import EventLog
from ..obs.profile import PhaseProfiler
from ..workloads import build_image


@dataclass
class Runner:
    """Shared execution context for all experiments."""

    scale: float = 1.0
    seed: int = 42
    max_instructions: int = 300_000
    warmup_instructions: int = 0
    config: Optional[MachineConfig] = None

    #: structured event log shared by every run (None -> null log).
    events: Optional[EventLog] = None
    #: print a heartbeat line per simulation checkpoint (stderr).
    progress: bool = False
    #: retired instructions between checkpoints; 0 = auto (about 100
    #: samples over a full-budget run) whenever events or progress are
    #: active, disabled otherwise.
    checkpoint_interval: int = 0
    #: attribute host time to CPU pipeline phases (opt-in: the profiled
    #: loop costs a few perf_counter calls per instruction).
    profile_phases: bool = False

    _programs: Dict[str, RandomizedProgram] = field(default_factory=dict)
    _sims: Dict[Tuple[str, str, int], SimResult] = field(default_factory=dict)
    _emulations: Dict[str, EmulationResult] = field(default_factory=dict)

    def __post_init__(self):
        if self.events is None:
            self.events = EventLog()
        #: host wall-time attribution across harness stages (and, with
        #: ``profile_phases``, the CPU pipeline phases under ``sim.*``).
        self.profiler = PhaseProfiler(self.events)

    def base_config(self) -> MachineConfig:
        return self.config or default_config()

    def effective_checkpoint_interval(self) -> int:
        """Resolve the checkpointing cadence for cycle simulations."""
        if self.checkpoint_interval:
            return self.checkpoint_interval
        if self.events.enabled or self.progress:
            return max(250, self.max_instructions // 100)
        return 0

    # -- programs ---------------------------------------------------------------

    def program(self, name: str) -> RandomizedProgram:
        """Randomized program for workload ``name`` (cached)."""
        if name not in self._programs:
            with self.profiler.phase("build", workload=name):
                image = build_image(name, scale=self.scale)
            with self.profiler.phase("randomize", workload=name):
                self._programs[name] = randomize(
                    image, RandomizerConfig(seed=self.seed)
                )
        return self._programs[name]

    # -- cycle simulations -----------------------------------------------------------

    def sim(self, name: str, mode: str, drc_entries: int = 128) -> SimResult:
        """Cycle-simulate workload ``name`` under ``mode`` (cached).

        ``drc_entries`` only affects the VCFR mode; other modes share one
        cached result per workload.
        """
        if mode != "vcfr":
            drc_entries = 0
        key = (name, mode, drc_entries)
        if key not in self._sims:
            program = self.program(name)
            image = {
                "baseline": program.original,
                "naive_ilr": program.naive_image,
                "vcfr": program.vcfr_image,
            }[mode]
            config = self.base_config()
            if mode == "vcfr":
                config = config.with_drc_entries(drc_entries)
            cpu = CycleCPU(
                image,
                make_flow(mode, program),
                config,
                events=self.events,
                checkpoint_interval=self.effective_checkpoint_interval(),
                on_checkpoint=self._heartbeat(name, mode),
                event_fields={"workload": name},
            )
            with self.profiler.phase("simulate", workload=name, mode=mode):
                if self.profile_phases:
                    self._sims[key] = cpu.run_profiled(
                        self.max_instructions,
                        self.warmup_instructions,
                        profiler=self.profiler,
                    )
                else:
                    self._sims[key] = cpu.run(
                        self.max_instructions, self.warmup_instructions
                    )
        return self._sims[key]

    def _heartbeat(self, name: str, mode: str):
        """Per-checkpoint stderr progress line (``progress=True`` only)."""
        if not self.progress:
            return None

        def _on_checkpoint(checkpoint: Checkpoint) -> None:
            status(
                "[%s/%s] %7d instr  ipc %.3f  il1 %.4f  drc %.4f"
                % (name, mode, checkpoint.instructions, checkpoint.ipc,
                   checkpoint.il1_miss_rate, checkpoint.drc_miss_rate)
            )

        return _on_checkpoint

    # -- software-ILR emulation ----------------------------------------------------------

    def emulate(self, name: str) -> EmulationResult:
        """Run the software-ILR emulator on workload ``name`` (cached)."""
        if name not in self._emulations:
            program = self.program(name)
            with self.profiler.phase("emulate", workload=name):
                self._emulations[name] = ILREmulator(
                    program,
                    max_instructions=self.max_instructions * 10,
                    events=self.events,
                    checkpoint_interval=(
                        self.effective_checkpoint_interval() * 10
                    ),
                    event_fields={"workload": name},
                ).run()
        return self._emulations[name]
