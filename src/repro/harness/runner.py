"""RunSpec-keyed workload execution for the experiment harness.

Experiments share randomized programs and simulation results through one
:class:`Runner`.  Every run is identified by a frozen
:class:`~repro.harness.spec.RunSpec` — the same currency used by the
parallel sweep engine (:mod:`repro.harness.sweep`), the persistent
result cache (:mod:`repro.harness.resultcache`), CLI flags, and event
records — so the full per-paper suite performs each distinct simulation
exactly once per process, and (with ``cache_dir``) once *ever* per
machine model and code version.

Typical use::

    runner = Runner(workers=4, cache_dir=".repro-cache")
    runner.prefetch(specs)             # parallel, cache-aware fan-out
    result = runner.run(runner.spec("gcc", "vcfr", drc_entries=64))

The runner is also the harness's observability anchor: every stage
(image build, randomization, cycle simulation, emulation) is timed by a
:class:`~repro.obs.profile.PhaseProfiler`, simulations emit periodic
progress checkpoints into the shared
:class:`~repro.obs.events.EventLog`, and ``progress=True`` turns those
checkpoints into live heartbeat lines on stderr.

The pre-RunSpec entry points ``Runner.sim(name, mode, drc_entries)`` and
``Runner.program(name)`` remain as thin deprecated shims.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..arch.config import MachineConfig, default_config
from ..arch.simstats import Checkpoint, SimResult
from ..emu import EmulationResult
from ..ilr import RandomizedProgram
from ..obs import status
from ..obs.events import EventLog
from ..obs.profile import PhaseProfiler
from ..obs.store import RunStore
from ..obs.trace import Tracer
from .faults import FaultPlan
from .resultcache import ResultCache
from .spec import RunSpec
from .sweep import (
    FailedRun,
    FailedRunError,
    ProgramKey,
    RetryPolicy,
    SweepOutcome,
    build_program,
    sweep,
)

#: Emulation interprets ~an order of magnitude more guest instructions
#: than a cycle simulation retires in the same reporting window, so
#: emulate specs scale the budget (and checkpoint cadence) by this.
EMULATE_BUDGET_FACTOR = 10


@dataclass
class Runner:
    """Shared execution context for all experiments."""

    scale: float = 1.0
    seed: int = 42
    max_instructions: int = 300_000
    warmup_instructions: int = 0
    config: Optional[MachineConfig] = None

    #: structured event log shared by every run (None -> null log).
    events: Optional[EventLog] = None
    #: print a heartbeat line per simulation checkpoint (stderr).
    progress: bool = False
    #: retired instructions between checkpoints; 0 = auto (about 100
    #: samples over a full-budget run) whenever events or progress are
    #: active, disabled otherwise.
    checkpoint_interval: int = 0
    #: attribute host time to CPU pipeline phases (opt-in: the profiled
    #: loop costs a few perf_counter calls per instruction).
    profile_phases: bool = False

    #: worker processes for :meth:`prefetch` sweeps (0/1 = sequential).
    workers: int = 0
    #: directory for the persistent result cache (None = in-memory only).
    cache_dir: Optional[str] = None
    #: the cache instance; built from ``cache_dir`` unless injected.
    cache: Optional[ResultCache] = None
    #: retry/timeout policy for sweeps (None = engine default: three
    #: attempts with backoff, no timeout).
    retry: Optional[RetryPolicy] = None
    #: deterministic fault-injection plan (None = no injected faults).
    faults: Optional[FaultPlan] = None
    #: span tracer threaded through every sweep (None = tracing off).
    tracer: Optional[Tracer] = None
    #: SQLite run store recording completed runs (built from
    #: ``store_path`` unless injected; None = no store).
    store: Optional[RunStore] = None
    #: path for the run store (None = no store).
    store_path: Optional[str] = None

    _programs: Dict[ProgramKey, RandomizedProgram] = field(
        default_factory=dict
    )
    _sims: Dict[RunSpec, SimResult] = field(default_factory=dict)
    _emulations: Dict[RunSpec, EmulationResult] = field(default_factory=dict)
    #: quarantined specs from past sweeps: spec -> FailedRun.
    failures: Dict[RunSpec, FailedRun] = field(default_factory=dict)

    def __post_init__(self):
        if self.events is None:
            self.events = EventLog()
        if self.cache is None and self.cache_dir:
            self.cache = ResultCache(self.cache_dir)
        if self.store is None and self.store_path:
            self.store = RunStore(self.store_path)
        #: host wall-time attribution across harness stages (and, with
        #: ``profile_phases``, the CPU pipeline phases under ``sim.*``).
        self.profiler = PhaseProfiler(self.events)

    def base_config(self) -> MachineConfig:
        return self.config or default_config()

    def effective_checkpoint_interval(self) -> int:
        """Resolve the checkpointing cadence for cycle simulations."""
        if self.checkpoint_interval:
            return self.checkpoint_interval
        if self.events.enabled or self.progress:
            return max(250, self.max_instructions // 100)
        return 0

    def _interval_for(self, spec: RunSpec) -> int:
        interval = self.effective_checkpoint_interval()
        if spec.mode == "emulate":
            interval *= EMULATE_BUDGET_FACTOR
        return interval

    # -- specs -------------------------------------------------------------

    def spec(self, workload: str, mode: str = "baseline",
             drc_entries: int = 0) -> RunSpec:
        """A normalized :class:`RunSpec` inheriting this runner's
        seed/scale/budget defaults."""
        budget = self.max_instructions
        warmup = self.warmup_instructions
        if mode == "emulate":
            budget *= EMULATE_BUDGET_FACTOR
            warmup = 0
        return RunSpec(
            workload=workload,
            mode=mode,
            drc_entries=drc_entries,
            seed=self.seed,
            scale=self.scale,
            max_instructions=budget,
            warmup_instructions=warmup,
        ).normalized()

    # -- programs ----------------------------------------------------------

    def program_for(self, spec: RunSpec) -> RandomizedProgram:
        """Randomized program for ``spec``'s workload (memoized)."""
        return build_program(spec.normalized(), self.profiler,
                             self._programs)

    # -- execution ---------------------------------------------------------

    def _memo_for(self, spec: RunSpec) -> Dict[RunSpec, object]:
        return self._sims if spec.is_simulation else self._emulations

    def run(self, spec: RunSpec):
        """Result for ``spec`` — memo, then disk cache, then execute.

        Returns a :class:`~repro.arch.simstats.SimResult` for simulator
        modes, an :class:`~repro.emu.EmulationResult` for ``emulate``.
        Raises :class:`~repro.harness.sweep.FailedRunError` when the
        spec was quarantined (every attempt failed, including a fresh
        round of attempts made by this call).
        """
        spec = spec.normalized()
        memo = self._memo_for(spec)
        if spec not in memo:
            self.prefetch([spec])
        if spec not in memo and spec in self.failures:
            raise FailedRunError(self.failures[spec])
        return memo[spec]

    def prefetch(self, specs: Iterable[RunSpec]) -> List[SweepOutcome]:
        """Materialize many specs at once (cache-aware; parallel when
        ``workers >= 2``), populating the in-memory memo.

        This is the fan-out point: ``run_all`` calls it with the whole
        suite's spec list so independent simulations saturate the worker
        pool instead of running serially inside each experiment.
        """
        wanted = [
            spec for spec in dict.fromkeys(s.normalized() for s in specs)
            if spec not in self._memo_for(spec)
        ]
        if not wanted:
            return []
        outcomes = sweep(
            wanted,
            self.base_config(),
            workers=self.workers,
            cache=self.cache,
            events=self.events,
            profiler=self.profiler,
            checkpoint_interval=self._interval_for,
            profile_phases=self.profile_phases,
            on_checkpoint_for=self._heartbeat,
            program_cache=self._programs,
            on_outcome=self._note_outcome if self.progress else None,
            retry=self.retry,
            faults=self.faults,
            tracer=self.tracer,
            store=self.store,
        )
        for outcome in outcomes:
            if outcome.ok:
                self._memo_for(outcome.spec)[outcome.spec] = outcome.result
                self.failures.pop(outcome.spec, None)
            else:
                # Quarantined, never memoized: a later run() retries it
                # and raises FailedRunError if it keeps failing.
                self.failures[outcome.spec] = outcome.failure
        return outcomes

    def _note_outcome(self, outcome: SweepOutcome) -> None:
        if not outcome.ok:
            status("[%s] FAILED after %d attempt(s): %s" % (
                outcome.spec.label(), outcome.attempts,
                outcome.failure.error,
            ))
            return
        status("[%s] %s" % (
            outcome.spec.label(), "cached" if outcome.cached else "done",
        ))

    def _heartbeat(self, spec: RunSpec):
        """Per-checkpoint stderr progress line (``progress=True`` only)."""
        if not self.progress:
            return None
        label = spec.label()

        def _on_checkpoint(checkpoint: Checkpoint) -> None:
            status(
                "[%s] %7d instr  ipc %.3f  il1 %.4f  drc %.4f"
                % (label, checkpoint.instructions, checkpoint.ipc,
                   checkpoint.il1_miss_rate, checkpoint.drc_miss_rate)
            )

        return _on_checkpoint

    # -- software-ILR emulation --------------------------------------------

    def emulate(self, name: str) -> EmulationResult:
        """Run the software-ILR emulator on workload ``name``."""
        return self.run(self.spec(name, "emulate"))

    # -- deprecated pre-RunSpec API ----------------------------------------

    def sim(self, name: str, mode: str, drc_entries: int = 128) -> SimResult:
        """Deprecated: use ``run(runner.spec(name, mode, drc_entries))``.

        Kept as a thin shim (it builds the equivalent :class:`RunSpec`)
        so pre-RunSpec callers keep working during migration.
        """
        warnings.warn(
            "Runner.sim(name, mode, drc_entries) is deprecated; use "
            "Runner.run(runner.spec(name, mode, drc_entries))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(self.spec(name, mode, drc_entries))

    def program(self, name: str) -> RandomizedProgram:
        """Deprecated: use ``program_for(runner.spec(name))``."""
        warnings.warn(
            "Runner.program(name) is deprecated; use "
            "Runner.program_for(runner.spec(name))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.program_for(self.spec(name))
