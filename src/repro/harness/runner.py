"""RunSpec-keyed workload execution: the legacy ``Runner`` face.

.. deprecated:: ISSUE 7
    :class:`Runner` is the historical entry point, kept as an exact
    shim: it subclasses :class:`~repro.harness.session.
    ExperimentSession` (the unified front end of the experiment
    service) and adds nothing but the original dataclass constructor
    and the pre-RunSpec ``sim()``/``program()`` shims.  New code should
    construct an ``ExperimentSession`` directly — it exposes the same
    ``spec``/``run``/``prefetch``/``emulate`` surface plus the
    streaming ``stream()``/``sweep()`` entry points, intake ``backlog``
    control, and multi-host ``queue`` draining.

Every run is identified by a frozen :class:`~repro.harness.spec.
RunSpec` — the same currency used by the streaming scheduler
(:mod:`repro.harness.scheduler`), the persistent result cache
(:mod:`repro.harness.resultcache`), CLI flags, and event records — so
the full per-paper suite performs each distinct simulation exactly once
per process, and (with ``cache_dir``) once *ever* per machine model and
code version.

Typical use::

    runner = Runner(workers=4, cache_dir=".repro-cache")
    runner.prefetch(specs)             # parallel, cache-aware fan-out
    result = runner.run(runner.spec("gcc", "vcfr", drc_entries=64))

The runner is also the harness's observability anchor: every stage
(image build, randomization, cycle simulation, emulation) is timed by a
:class:`~repro.obs.profile.PhaseProfiler`, simulations emit periodic
progress checkpoints into the shared
:class:`~repro.obs.events.EventLog`, and ``progress=True`` turns those
checkpoints into live heartbeat lines on stderr.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..arch.config import MachineConfig
from ..arch.simstats import SimResult
from ..emu import EmulationResult
from ..ilr import RandomizedProgram
from ..obs.events import EventLog
from ..obs.store import RunStore
from ..obs.trace import Tracer
from .faults import FaultPlan
from .resultcache import ResultCache
from .session import EMULATE_BUDGET_FACTOR, ExperimentSession
from .spec import RunSpec
from .sweep import FailedRun, ProgramKey, RetryPolicy

__all__ = ["Runner", "EMULATE_BUDGET_FACTOR"]


@dataclass
class Runner(ExperimentSession):
    """Shared execution context for all experiments (legacy shim).

    Exactly an :class:`~repro.harness.session.ExperimentSession` with
    the historical dataclass constructor; see the module docstring for
    the migration note.
    """

    scale: float = 1.0
    seed: int = 42
    max_instructions: int = 300_000
    warmup_instructions: int = 0
    config: Optional[MachineConfig] = None

    #: structured event log shared by every run (None -> null log).
    events: Optional[EventLog] = None
    #: print a heartbeat line per simulation checkpoint (stderr).
    progress: bool = False
    #: retired instructions between checkpoints; 0 = auto (about 100
    #: samples over a full-budget run) whenever events or progress are
    #: active, disabled otherwise.
    checkpoint_interval: int = 0
    #: attribute host time to CPU pipeline phases (opt-in: the profiled
    #: loop costs a few perf_counter calls per instruction).
    profile_phases: bool = False

    #: worker processes for :meth:`prefetch` sweeps (0/1 = sequential).
    workers: int = 0
    #: directory for the persistent result cache (None = in-memory only).
    cache_dir: Optional[str] = None
    #: the cache instance; built from ``cache_dir`` unless injected.
    cache: Optional[ResultCache] = None
    #: retry/timeout policy for sweeps (None = engine default: three
    #: attempts with backoff, no timeout).
    retry: Optional[RetryPolicy] = None
    #: deterministic fault-injection plan (None = no injected faults).
    faults: Optional[FaultPlan] = None
    #: span tracer threaded through every sweep (None = tracing off).
    tracer: Optional[Tracer] = None
    #: SQLite run store recording completed runs (built from
    #: ``store_path`` unless injected; None = no store).
    store: Optional[RunStore] = None
    #: path for the run store (None = no store).
    store_path: Optional[str] = None

    _programs: Dict[ProgramKey, RandomizedProgram] = field(
        default_factory=dict
    )
    _sims: Dict[RunSpec, SimResult] = field(default_factory=dict)
    _emulations: Dict[RunSpec, EmulationResult] = field(default_factory=dict)
    #: quarantined specs from past sweeps: spec -> FailedRun.
    failures: Dict[RunSpec, FailedRun] = field(default_factory=dict)

    def __post_init__(self):
        # The dataclass __init__ assigned the fields; resolve them into
        # live session state (cache/store/queue/profiler) exactly as
        # ExperimentSession.__init__ would.
        self._finish_init()

    # -- deprecated pre-RunSpec API ----------------------------------------

    def sim(self, name: str, mode: str, drc_entries: int = 128) -> SimResult:
        """Deprecated: use ``run(runner.spec(name, mode, drc_entries))``.

        Kept as a thin shim (it builds the equivalent :class:`RunSpec`)
        so pre-RunSpec callers keep working during migration.
        """
        warnings.warn(
            "Runner.sim(name, mode, drc_entries) is deprecated and will "
            "be removed in the release after the ExperimentSession API; "
            "use Runner.run(runner.spec(name, mode, drc_entries))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(self.spec(name, mode, drc_entries))

    def program(self, name: str) -> RandomizedProgram:
        """Deprecated: use ``program_for(runner.spec(name))``."""
        warnings.warn(
            "Runner.program(name) is deprecated and will be removed in "
            "the release after the ExperimentSession API; use "
            "Runner.program_for(runner.spec(name))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.program_for(self.spec(name))
