"""Cached workload execution for the experiment harness.

Experiments share randomized programs and simulation results through one
:class:`Runner`, so the full per-paper experiment suite performs each
(workload, mode, DRC-size) simulation exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import simulate
from ..arch.simstats import SimResult
from ..emu import EmulationResult, ILREmulator
from ..ilr import RandomizedProgram, RandomizerConfig, make_flow, randomize
from ..workloads import build_image


@dataclass
class Runner:
    """Shared execution context for all experiments."""

    scale: float = 1.0
    seed: int = 42
    max_instructions: int = 300_000
    warmup_instructions: int = 0
    config: Optional[MachineConfig] = None

    _programs: Dict[str, RandomizedProgram] = field(default_factory=dict)
    _sims: Dict[Tuple[str, str, int], SimResult] = field(default_factory=dict)
    _emulations: Dict[str, EmulationResult] = field(default_factory=dict)

    def base_config(self) -> MachineConfig:
        return self.config or default_config()

    # -- programs ---------------------------------------------------------------

    def program(self, name: str) -> RandomizedProgram:
        """Randomized program for workload ``name`` (cached)."""
        if name not in self._programs:
            image = build_image(name, scale=self.scale)
            self._programs[name] = randomize(
                image, RandomizerConfig(seed=self.seed)
            )
        return self._programs[name]

    # -- cycle simulations -----------------------------------------------------------

    def sim(self, name: str, mode: str, drc_entries: int = 128) -> SimResult:
        """Cycle-simulate workload ``name`` under ``mode`` (cached).

        ``drc_entries`` only affects the VCFR mode; other modes share one
        cached result per workload.
        """
        if mode != "vcfr":
            drc_entries = 0
        key = (name, mode, drc_entries)
        if key not in self._sims:
            program = self.program(name)
            image = {
                "baseline": program.original,
                "naive_ilr": program.naive_image,
                "vcfr": program.vcfr_image,
            }[mode]
            config = self.base_config()
            if mode == "vcfr":
                config = config.with_drc_entries(drc_entries)
            self._sims[key] = simulate(
                image,
                make_flow(mode, program),
                config,
                max_instructions=self.max_instructions,
                warmup_instructions=self.warmup_instructions,
            )
        return self._sims[key]

    # -- software-ILR emulation ----------------------------------------------------------

    def emulate(self, name: str) -> EmulationResult:
        """Run the software-ILR emulator on workload ``name`` (cached)."""
        if name not in self._emulations:
            self._emulations[name] = ILREmulator(
                self.program(name),
                max_instructions=self.max_instructions * 10,
            ).run()
        return self._emulations[name]
