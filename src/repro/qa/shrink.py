"""Automatic test-case reduction for failing fuzz programs.

A ddmin-style line reducer: given a failing program's assembly source
and a predicate ("does this still fail the same way?"), repeatedly try
removing chunks of lines — halving chunk size down to single lines —
and keep any reduction that still fails.  Candidates that no longer
assemble are rejected by the predicate wrapper (the oracle reports
``crash:assembler`` for them), so the reducer needs no syntactic
knowledge beyond "a line".

Directives that define the program's shape (``.code`` / ``.data``
section headers) are pinned and never candidates for removal; labels
and instructions are fair game — removing a label that is still
referenced simply fails assembly and is rejected.

The result is the minimal ``.s`` repro the qa workflow checks into
``tests/test_qa_regressions.py`` alongside the fix for whatever the
oracle caught.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

__all__ = ["shrink_source", "oracle_predicate"]

#: lines never offered for removal.
_PINNED_PREFIXES = (".code", ".data", ".section")


def _pinned(line: str) -> bool:
    return line.strip().startswith(_PINNED_PREFIXES)


def shrink_source(
    source: str,
    still_fails: Callable[[str], bool],
    *,
    max_attempts: int = 2000,
) -> str:
    """Reduce ``source`` while ``still_fails`` keeps returning True.

    ``still_fails`` must already be True for ``source`` itself (the
    caller verified the failure); the reducer only ever returns a
    variant for which ``still_fails`` returned True, so the result is
    always a genuine repro.  ``max_attempts`` bounds total predicate
    evaluations — reduction is best-effort within that budget.
    """
    lines = source.splitlines()
    attempts = 0

    def attempt(candidate_lines: List[str]) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return still_fails("\n".join(candidate_lines) + "\n")

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        removable = [
            i for i, line in enumerate(lines)
            if line.strip() and not _pinned(line)
        ]
        chunk = max(1, len(removable) // 2)
        while chunk >= 1:
            i = 0
            while i < len(removable):
                victim = set(removable[i:i + chunk])
                candidate = [
                    line for j, line in enumerate(lines)
                    if j not in victim
                ]
                if attempt(candidate):
                    lines = candidate
                    removable = [
                        j for j, line in enumerate(lines)
                        if line.strip() and not _pinned(line)
                    ]
                    progress = True
                    # stay at position i: indices shifted left.
                else:
                    i += chunk
                if attempts >= max_attempts:
                    break
            if attempts >= max_attempts:
                break
            chunk //= 2
    return "\n".join(lines) + "\n"


def oracle_predicate(
    *,
    seed: int,
    kinds: Optional[Sequence[str]] = None,
    config=None,
) -> Callable[[str], bool]:
    """Build a ``still_fails`` predicate from the differential oracle.

    The candidate fails when the oracle reports any divergence — or,
    with ``kinds`` given, any divergence whose kind starts with one of
    those prefixes (pinning the shrink to the original failure mode so
    reduction cannot wander onto an unrelated bug).  Assembly failures
    never count as failing: a reduction that broke the program is not a
    repro.
    """
    from .oracle import check_source

    def still_fails(source: str) -> bool:
        report = check_source(source, seed=seed, config=config)
        for divergence in report.divergences:
            if divergence.kind == "crash:assembler":
                return False
        if not report.divergences:
            return False
        if kinds is None:
            return True
        return any(
            d.kind.startswith(prefix)
            for d in report.divergences
            for prefix in kinds
        )

    return still_fails
