"""Seed-deterministic, coverage-guided random RX86 program generator.

The qa subsystem's front half: produce *valid, always-terminating*
RX86 programs that exercise as much of the ISA surface and as many of
the randomizer-sensitive idioms as possible — variable-length
encodings, direct and indirect control flow, jump tables, in-code code
pointers, bounded loops, stack traffic, and syscall output — so the
differential oracle (:mod:`repro.qa.oracle`) has interesting inputs to
cross-check across every engine.

Design rules that make every generated program a *legal* oracle input:

* **Termination** — the call graph is a DAG (function ``i`` may only
  call functions ``j > i``) and every loop is a bounded counted loop
  whose counter register is reserved while the loop body is generated.
* **Mode-invariant observables** — code-pointer *values* differ across
  randomization modes (exactly as under ASLR), so registers that ever
  held a code pointer are zeroed before they can flow into output, and
  data slots that hold code pointers are never EMITted.
* **Deterministic data flow** — all memory traffic lands in generated
  data arrays or the stack; output is produced only through the
  PUTC/EMIT/ICOUNT syscall ABI, which is identical in every engine.

Coverage guidance is deliberately simple: every emitted idiom and
instruction form is a *feature* recorded in a shared
:class:`Coverage` map, and random choices are biased toward the
least-covered candidates, so a session's programs collectively sweep
the feature space instead of resampling the easy middle.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..binary import BinaryImage
from ..isa import assemble

__all__ = [
    "Coverage",
    "GeneratorConfig",
    "GeneratedProgram",
    "ProgramGenerator",
]

#: Scratch registers the generator may clobber freely.  ``esp``/``ebp``
#: keep their frame roles so prologue/epilogue idioms stay honest.
SCRATCH_REGS = ("eax", "ecx", "edx", "ebx", "esi", "edi")

#: Condition-code suffixes of the Jcc family.
CC_SUFFIXES = ("z", "nz", "l", "ge", "le", "g", "b", "ae")


class Coverage:
    """Feature-hit counts shared across one fuzzing session.

    A *feature* is a short string key — an instruction form
    (``"add:rr"``), an idiom (``"idiom:switch"``), or a syscall
    (``"sys:putc"``).  :meth:`choose` biases selection toward the
    least-covered candidates while staying fully deterministic for a
    given RNG stream.
    """

    def __init__(self):
        self.counts: Counter = Counter()

    def note(self, feature: str) -> None:
        self.counts[feature] += 1

    def choose(self, rng: random.Random, candidates: Sequence[str]) -> str:
        """Pick one candidate, favouring the least-covered ones.

        Half the time choose uniformly (keeps hot idioms exercised in
        *combination* with everything else); otherwise choose among the
        candidates with the current minimum hit count.
        """
        if not candidates:
            raise ValueError("no candidates")
        if rng.random() < 0.5:
            return rng.choice(list(candidates))
        low = min(self.counts[c] for c in candidates)
        floor = [c for c in candidates if self.counts[c] == low]
        return rng.choice(floor)

    def covered(self) -> int:
        """Number of distinct features seen so far."""
        return len(self.counts)


@dataclass
class GeneratorConfig:
    """Shape knobs of generated programs.

    Defaults target small programs (a few hundred retired
    instructions) so the quick deterministic tier can push hundreds of
    programs through the full engine matrix in well under a minute.
    """

    min_functions: int = 2
    max_functions: int = 5
    #: straight-line ops per generated segment.
    min_ops: int = 2
    max_ops: int = 6
    #: bounded-loop iteration cap.
    max_loop_bound: int = 5
    #: words per data array.
    array_words: int = 32
    #: probability of ending the program with ``halt`` instead of EXIT.
    halt_probability: float = 0.05


@dataclass
class GeneratedProgram:
    """One generated program plus its provenance."""

    source: str
    seed: int
    index: int
    #: feature keys this program exercised (subset of the session
    #: coverage map).
    features: List[str] = field(default_factory=list)

    def image(self) -> BinaryImage:
        """Assemble the program (generated programs always assemble)."""
        return assemble(self.source)

    def label(self) -> str:
        return "fuzz-%d-%d" % (self.seed, self.index)


class _FunctionEmitter:
    """Emits the body of one generated function."""

    def __init__(self, gen: "ProgramGenerator", index: int,
                 num_functions: int):
        self.gen = gen
        self.rng = gen.rng
        self.index = index
        self.num_functions = num_functions
        self.lines: List[str] = []
        #: registers currently reserved (loop counters, table bases).
        self.reserved: set = set()
        self._label_counter = 0

    # -- plumbing ----------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, name: str) -> None:
        self.lines.append(name + ":")

    def local_label(self, tag: str) -> str:
        self._label_counter += 1
        return ".L%d_%s_%d" % (self.index, tag, self._label_counter)

    def free_regs(self) -> List[str]:
        return [r for r in SCRATCH_REGS if r not in self.reserved]

    def pick_reg(self) -> str:
        return self.rng.choice(self.free_regs())

    def note(self, feature: str) -> str:
        self.gen.coverage.note(feature)
        self.gen.features.append(feature)
        return feature

    # -- straight-line ops -------------------------------------------------

    def random_ops(self, count: int) -> None:
        for _ in range(count):
            self.one_op()

    def one_op(self) -> None:
        rng = self.rng
        choices = [
            "alu:rr", "alu:ri", "movi", "mov:rr", "load", "store",
            "shift", "imul", "lea", "pushpop", "nop", "test:rr",
            "alu:rm", "alu:mr",
        ]
        kind = self.gen.coverage.choose(rng, choices)
        regs = self.free_regs()
        r1, r2 = rng.choice(regs), rng.choice(regs)
        if kind == "alu:rr":
            op = rng.choice(("add", "sub", "xor", "or", "and"))
            self.emit("%s %s, %s" % (op, r1, r2))
            self.note("%s:rr" % op)
        elif kind == "alu:ri":
            op = rng.choice(("add", "sub", "xor", "or", "and", "cmp"))
            self.emit("%s %s, %d" % (op, r1, rng.randrange(1 << 16)))
            self.note("%s:ri" % op)
        elif kind == "movi":
            self.emit("movi %s, %d" % (r1, rng.randrange(1 << 24)))
            self.note("movi")
        elif kind == "mov:rr":
            self.emit("mov %s, %s" % (r1, r2))
            self.note("mov:rr")
        elif kind == "load":
            base = self.pick_reg()
            array = rng.choice(self.gen.arrays)
            disp = 4 * rng.randrange(self.gen.config.array_words)
            self.emit("movi %s, %s" % (base, array))
            dst = rng.choice([r for r in regs if r != base] or [base])
            self.emit("mov %s, [%s+%d]" % (dst, base, disp))
            self.note("mov:rm")
        elif kind == "store":
            base = self.pick_reg()
            array = rng.choice(self.gen.arrays)
            disp = 4 * rng.randrange(self.gen.config.array_words)
            self.emit("movi %s, %s" % (base, array))
            src = rng.choice([r for r in regs if r != base] or [base])
            self.emit("mov [%s+%d], %s" % (base, disp, src))
            self.note("mov:mr")
        elif kind == "shift":
            op = rng.choice(("shl", "shr", "sar"))
            self.emit("%s %s, %d" % (op, r1, rng.randrange(1, 9)))
            self.note(op)
        elif kind == "imul":
            self.emit("imul %s, %s" % (r1, r2))
            self.note("imul:rr")
        elif kind == "lea":
            self.emit("lea %s, [%s+%d]" % (r1, r2, rng.randrange(256)))
            self.note("lea:rm")
        elif kind == "pushpop":
            # Balanced stack traffic; the pop target may differ from the
            # pushed register (a plain data move through the stack).
            self.emit("push %s" % r1)
            self.one_op()
            self.emit("pop %s" % r2)
            self.note("pushpop")
        elif kind == "nop":
            self.emit("nop")
            self.note("nop")
        else:  # test:rr
            self.emit("test %s, %s" % (r1, r2))
            self.note("test:rr")

    # -- structured idioms -------------------------------------------------

    def loop(self) -> None:
        rng = self.rng
        counter = self.pick_reg()
        self.reserved.add(counter)
        bound = rng.randint(1, self.gen.config.max_loop_bound)
        top = self.local_label("loop")
        self.emit("movi %s, 0" % counter)
        self.emit_label(top)
        self.random_ops(rng.randint(1, 3))
        self.emit("add %s, 1" % counter)
        self.emit("cmp %s, %d" % (counter, bound))
        self.emit("jl %s" % top)
        self.reserved.discard(counter)
        self.note("idiom:loop")

    def diamond(self) -> None:
        """``if/else`` over a data-dependent comparison."""
        rng = self.rng
        reg = self.pick_reg()
        cc = self.gen.coverage.choose(
            rng, ["j%s" % suffix for suffix in CC_SUFFIXES]
        )
        other = self.local_label("else")
        join = self.local_label("join")
        self.emit("cmp %s, %d" % (reg, rng.randrange(1 << 12)))
        self.emit("%s %s" % (cc, other))
        self.random_ops(rng.randint(1, 2))
        self.emit("jmp %s" % join)
        self.emit_label(other)
        self.random_ops(rng.randint(1, 2))
        self.emit_label(join)
        self.note(cc)
        self.note("idiom:diamond")

    def short_skip(self) -> None:
        """A ``jmp8`` hop — the rel8 encoding the randomizer cannot
        retarget in place, forcing the failover-redirect path."""
        target = self.local_label("skip")
        self.emit("jmp8 %s" % target)
        self.random_ops(1)
        self.emit_label(target)
        self.note("jmp8")
        self.note("idiom:short_skip")

    def switch(self) -> None:
        """Indirect ``jmpi`` dispatch through a data-section label table."""
        rng = self.rng
        size = rng.choice((2, 4))
        cases = [self.local_label("case") for _ in range(size)]
        join = self.local_label("swjoin")
        table = "jt%d_%d" % (self.index, self._label_counter)
        self.gen.data.append(table + ":")
        self.gen.data.append("    .word " + ", ".join(cases))

        index_reg = self.pick_reg()
        self.reserved.add(index_reg)
        scratch = self.pick_reg()
        self.reserved.discard(index_reg)
        self.emit("and %s, %d" % (index_reg, size - 1))
        self.emit("shl %s, 2" % index_reg)
        self.emit("movi %s, %s" % (scratch, table))
        self.emit("add %s, %s" % (scratch, index_reg))
        self.emit("jmpi [%s+0]" % scratch)
        for case in cases:
            self.emit_label(case)
            self.random_ops(rng.randint(1, 2))
            self.emit("jmp %s" % join)
        self.emit_label(join)
        self.note("jmpi:table")
        self.note("idiom:switch")

    def call_direct(self, callee: str) -> None:
        self.emit("call %s" % callee)
        self.note("call")

    def call_table(self, callees: List[str]) -> None:
        """Indirect call through a function-pointer table."""
        rng = self.rng
        table = "ft%d_%d" % (self.index, self._label_counter)
        self._label_counter += 1
        self.gen.data.append(table + ":")
        self.gen.data.append("    .word " + ", ".join(callees))
        index_reg = self.pick_reg()
        self.reserved.add(index_reg)
        scratch = self.pick_reg()
        self.reserved.discard(index_reg)
        self.emit("movi %s, %d" % (index_reg, rng.randrange(len(callees))))
        self.emit("shl %s, 2" % index_reg)
        self.emit("movi %s, %s" % (scratch, table))
        self.emit("add %s, %s" % (scratch, index_reg))
        self.emit("calli [%s+0]" % scratch)
        self.note("calli:table")
        self.note("idiom:funcptr_call")

    def call_stored_pointer(self, callee: str) -> None:
        """``movi reg, fn`` → store → ``calli`` — the in-code pointer
        immediate the randomizer must rewrite in both images.  The
        pointer register is zeroed afterwards: code-pointer values are
        architecturally mode-dependent and must never reach output."""
        reg = self.pick_reg()
        self.reserved.add(reg)
        base = self.pick_reg()
        self.reserved.discard(reg)
        slot = 4 * self.gen.config.array_words - 4
        array = self.gen.arrays[0]
        self.emit("movi %s, %s" % (reg, callee))
        self.emit("movi %s, %s" % (base, array))
        self.emit("mov [%s+%d], %s" % (base, slot, reg))
        self.emit("movi %s, 0" % reg)
        self.emit("calli [%s+%d]" % (base, slot))
        self.emit("movi %s, %s" % (base, array))
        self.emit("movi %s, 0" % base)
        self.note("calli:stored")
        self.note("idiom:code_pointer_store")

    def emit_output(self) -> None:
        """Fold a register into the global accumulator and EMIT it."""
        rng = self.rng
        kind = self.gen.coverage.choose(
            rng, ["sys:emit", "sys:putc", "sys:icount"]
        )
        reg = rng.choice([r for r in self.free_regs()
                          if r not in ("eax", "ebx")] or ["edx"])
        if kind == "sys:icount":
            # ICOUNT is architecturally identical in every mode, so its
            # value is a *strong* cross-engine invariant when emitted.
            self.emit("movi eax, 7")
            self.emit("int 0x80")
            self.emit("mov %s, eax" % reg)
            self.note("sys:icount")
        self.emit("movi esi, g_acc")
        self.emit("mov edx, [esi+0]")
        self.emit("add edx, %s" % reg)
        self.emit("mov [esi+0], edx")
        if kind == "sys:putc":
            self.emit("mov ebx, edx")
            self.emit("and ebx, 127")
            self.emit("movi eax, 4")
            self.emit("int 0x80")
            self.note("sys:putc")
        else:
            self.emit("mov ebx, edx")
            self.emit("movi eax, 5")
            self.emit("int 0x80")
            self.note("sys:emit")


class ProgramGenerator:
    """Generates a deterministic stream of oracle-ready programs.

    ``generate(index)`` is a pure function of ``(seed, index,
    coverage-so-far)``: replaying the same seed over the same index
    order reproduces the identical program sequence, which is what lets
    ``repro.tools.fuzz`` findings be replayed from just a seed and an
    index.
    """

    def __init__(self, seed: int, config: Optional[GeneratorConfig] = None,
                 coverage: Optional[Coverage] = None):
        self.seed = seed
        self.config = config or GeneratorConfig()
        self.coverage = coverage if coverage is not None else Coverage()
        self.rng = random.Random()
        # Per-program state (reset by generate()).
        self.data: List[str] = []
        self.arrays: List[str] = []
        self.features: List[str] = []

    def generate(self, index: int) -> GeneratedProgram:
        """Generate program ``index`` of this seed's stream."""
        self.rng.seed("repro.qa:%d:%d" % (self.seed, index))
        rng = self.rng
        cfg = self.config
        self.features = []
        self.arrays = ["arr0", "arr1"]
        self.data = [".data 0x8000000", "g_acc:", "    .word 0"]
        for name in self.arrays:
            self.data.append(name + ":")
            if rng.random() < 0.3:
                # Byte-granular initial data (word loads still apply).
                self.data.append(
                    "    .byte " + ", ".join(
                        str(rng.randrange(256))
                        for _ in range(4 * cfg.array_words)
                    )
                )
                self.coverage.note("idiom:byte_data")
                self.features.append("idiom:byte_data")
            else:
                self.data.append("    .space %d" % (4 * cfg.array_words))

        num_funcs = rng.randint(cfg.min_functions, cfg.max_functions)
        lines = [".code 0x400000"]

        for idx in range(num_funcs):
            emitter = _FunctionEmitter(self, idx, num_funcs)
            self._emit_function(emitter, idx, num_funcs)
            lines += ["fn%d:" % idx] + emitter.lines
            if rng.random() < 0.3:
                lines.append(".align 4")
                self.coverage.note("idiom:align")
                self.features.append("idiom:align")

        lines += self._emit_main(num_funcs)
        source = "\n".join(lines) + "\n" + "\n".join(self.data) + "\n"
        return GeneratedProgram(
            source=source, seed=self.seed, index=index,
            features=list(dict.fromkeys(self.features)),
        )

    # -- structure ---------------------------------------------------------

    def _emit_function(self, fe: _FunctionEmitter, idx: int,
                       num_funcs: int) -> None:
        rng = self.rng
        cfg = self.config
        fe.emit("push ebp")
        fe.emit("mov ebp, esp")

        segments = rng.randint(1, 3)
        for _ in range(segments):
            fe.random_ops(rng.randint(cfg.min_ops, cfg.max_ops))
            idiom = self.coverage.choose(rng, [
                "idiom:loop", "idiom:diamond", "idiom:switch",
                "idiom:short_skip", "idiom:none",
            ])
            if idiom == "idiom:loop":
                fe.loop()
            elif idiom == "idiom:diamond":
                fe.diamond()
            elif idiom == "idiom:switch":
                fe.switch()
            elif idiom == "idiom:short_skip":
                fe.short_skip()

        # Calls: only to strictly-later functions (termination DAG).
        callees = ["fn%d" % j for j in range(idx + 1, num_funcs)]
        rng.shuffle(callees)
        for callee in callees[: rng.randint(0, 2)]:
            how = self.coverage.choose(rng, [
                "call", "calli:table", "calli:stored",
            ])
            if how == "call":
                fe.call_direct(callee)
            elif how == "calli:table":
                pool = callees[: rng.randint(1, len(callees))]
                fe.call_table(pool if callee in pool else pool + [callee])
            else:
                fe.call_stored_pointer(callee)

        if rng.random() < 0.5:
            fe.emit_output()

        if rng.random() < 0.5:
            fe.emit("leave")
            fe.note("leave")
        else:
            fe.emit("mov esp, ebp")
            fe.emit("pop ebp")
        fe.emit("ret")
        fe.note("ret")

    def _emit_main(self, num_funcs: int) -> List[str]:
        rng = self.rng
        lines = ["main:"]
        roots = list(range(min(3, num_funcs)))
        for root in roots:
            lines.append("    call fn%d" % root)
        # Final checksum: the accumulator plus every register folded in.
        lines.append("    movi esi, g_acc")
        lines.append("    mov eax, [esi+0]")
        for reg in ("ebx", "ecx", "edx", "edi"):
            lines.append("    add eax, %s" % reg)
        lines.append("    mov ebx, eax")
        lines.append("    movi eax, 5")
        lines.append("    int 0x80")
        if rng.random() < self.config.halt_probability:
            self.coverage.note("idiom:halt_exit")
            self.features.append("idiom:halt_exit")
            lines.append("    halt")
        else:
            lines.append("    and ebx, 63")
            lines.append("    movi eax, 1")
            lines.append("    int 0x80")
        return lines
