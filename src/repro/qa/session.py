"""Fuzzing session driver: generate → oracle → (shrink) → report.

Glues the three qa halves together for the ``repro.tools.fuzz`` CLI
and the ``make fuzz-quick`` verification tier: a
:class:`~repro.qa.generator.ProgramGenerator` stream is pushed through
the :mod:`repro.qa.oracle` differential matrix; findings are captured
as :class:`FuzzFinding` records (optionally ddmin-shrunk and written
out as ``.s`` repro files) and mirrored to a :mod:`repro.obs` event
log as ``fuzz_program`` / ``fuzz_finding`` / ``fuzz_end`` records.

Everything is a pure function of ``(seed, budget, configs)`` — a
finding can be replayed from its seed and index alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.events import EventLog
from .generator import Coverage, GeneratedProgram, GeneratorConfig, \
    ProgramGenerator
from .oracle import OracleConfig, check_source
from .shrink import oracle_predicate, shrink_source

__all__ = ["FuzzFinding", "FuzzStats", "FuzzSession"]


@dataclass
class FuzzFinding:
    """One divergent program, with enough provenance to replay it."""

    index: int
    seed: int
    #: divergence kinds the oracle reported (e.g. ``fastpath:vcfr``).
    kinds: List[str]
    #: first divergence's detail text.
    detail: str
    source: str
    shrunk_source: Optional[str] = None
    #: where the repro ``.s`` file was written (when an out dir is set).
    path: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "detail": self.detail,
            "path": self.path,
            "shrunk_lines": (
                len(self.shrunk_source.splitlines())
                if self.shrunk_source else None
            ),
        }


@dataclass
class FuzzStats:
    """Session summary."""

    programs: int = 0
    engine_runs: int = 0
    instructions: int = 0
    features_covered: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


class FuzzSession:
    """Drives ``budget`` generated programs through the oracle."""

    def __init__(
        self,
        seed: int,
        budget: int,
        *,
        generator_config: Optional[GeneratorConfig] = None,
        oracle_config: Optional[OracleConfig] = None,
        events: Optional[EventLog] = None,
        out_dir: Optional[str] = None,
        shrink: bool = False,
        max_findings: int = 10,
        progress=None,
    ):
        self.seed = seed
        self.budget = budget
        self.oracle_config = oracle_config or OracleConfig()
        self.coverage = Coverage()
        self.generator = ProgramGenerator(
            seed, generator_config, coverage=self.coverage
        )
        self.events = events if events is not None else EventLog()
        self.out_dir = out_dir
        self.shrink = shrink
        self.max_findings = max_findings
        self.progress = progress  # callable(str) or None

    # -- one program -------------------------------------------------------

    def _oracle_seed(self, index: int) -> int:
        # Decoupled from the generator stream so the same program can be
        # replayed under a different randomizer layout by reseeding.
        return (self.seed * 1_000_003 + index) % (1 << 30) + 1

    def check_one(self, index: int) -> tuple:
        """Generate and check program ``index``; returns (program, report)."""
        program = self.generator.generate(index)
        report = check_source(
            program.source, seed=self._oracle_seed(index),
            config=self.oracle_config,
        )
        return program, report

    # -- the session loop --------------------------------------------------

    def run(self) -> FuzzStats:
        stats = FuzzStats()
        for index in range(self.budget):
            program, report = self.check_one(index)
            stats.programs += 1
            stats.engine_runs += report.runs
            stats.instructions += report.icount
            self.events.emit(
                "fuzz_program",
                index=index,
                icount=report.icount,
                runs=report.runs,
                ok=report.ok,
                features=len(program.features),
            )
            if report.ok:
                continue
            finding = self._capture(program, report)
            stats.findings.append(finding)
            if self.progress:
                self.progress("FINDING #%d program=%d kinds=%s"
                              % (len(stats.findings), index,
                                 ",".join(finding.kinds[:4])))
            if len(stats.findings) >= self.max_findings:
                break
        stats.features_covered = self.coverage.covered()
        self.events.emit(
            "fuzz_end",
            programs=stats.programs,
            engine_runs=stats.engine_runs,
            instructions=stats.instructions,
            features_covered=stats.features_covered,
            findings=len(stats.findings),
        )
        return stats

    def _capture(self, program: GeneratedProgram, report) -> FuzzFinding:
        kinds = [d.kind for d in report.divergences]
        finding = FuzzFinding(
            index=program.index,
            seed=self._oracle_seed(program.index),
            kinds=kinds,
            detail=report.divergences[0].detail,
            source=program.source,
        )
        if self.shrink:
            # Pin the shrink to the original failure kinds so reduction
            # cannot wander onto an unrelated (or self-inflicted) bug.
            prefixes = sorted({k.split(":")[0] for k in kinds})
            finding.shrunk_source = shrink_source(
                program.source,
                oracle_predicate(seed=finding.seed, kinds=prefixes,
                                 config=self.oracle_config),
            )
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
            path = os.path.join(
                self.out_dir,
                "finding-%d-%d.s" % (self.seed, program.index),
            )
            body = finding.shrunk_source or finding.source
            header = (
                "; repro.qa finding — seed %d index %d oracle-seed %d\n"
                "; kinds: %s\n" % (self.seed, program.index, finding.seed,
                                   ", ".join(kinds))
            )
            with open(path, "w") as fh:
                fh.write(header + body)
            finding.path = path
        self.events.emit("fuzz_finding", **finding.as_dict())
        return finding
