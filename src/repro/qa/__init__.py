"""Differential fuzzing & invariant checking for the simulator stack.

The engine hierarchy this package polices (most- to least-trusted):

1. :class:`~repro.arch.functional.FunctionalCPU` — untimed
   architectural reference; the ground truth for program outcomes.
2. :class:`~repro.emu.vm.ILREmulator` — shares the executor but none
   of the timing machinery; agreeing with it checks the ISA semantics
   end to end.
3. :class:`~repro.arch.cpu.CycleCPU` reference loop
   (``fastpath=False``) — adds the full timing model.
4. :class:`~repro.arch.cpu.CycleCPU` block fast path
   (``fastpath=True``) — must be a *bit-identical* host-side
   optimization of (3).

:mod:`repro.qa.generator` produces seed-deterministic random RX86
programs; :mod:`repro.qa.oracle` runs each one through every engine ×
every ILR flow (plus live VCFR re-randomization epochs) and
cross-checks outcomes, statistics invariants, and serialization
round-trips; :mod:`repro.qa.shrink` reduces failures to minimal
``.s`` repros; :mod:`repro.qa.session` drives it all for the
``python -m repro.tools.fuzz`` CLI and ``make fuzz-quick``.
"""

from .generator import Coverage, GeneratedProgram, GeneratorConfig, \
    ProgramGenerator
from .oracle import Divergence, OracleConfig, OracleReport, check_image, \
    check_source, stats_invariants
from .session import FuzzFinding, FuzzSession, FuzzStats
from .shrink import oracle_predicate, shrink_source

__all__ = [
    "Coverage",
    "GeneratedProgram",
    "GeneratorConfig",
    "ProgramGenerator",
    "Divergence",
    "OracleConfig",
    "OracleReport",
    "check_image",
    "check_source",
    "stats_invariants",
    "FuzzFinding",
    "FuzzSession",
    "FuzzStats",
    "oracle_predicate",
    "shrink_source",
]
