"""Differential oracle: one program, every engine, every flow.

The repo carries five executors that must agree architecturally — the
untimed :class:`~repro.arch.functional.FunctionalCPU` reference, the
software-ILR :class:`~repro.emu.vm.ILREmulator`, and the cycle
simulator's three tiers (reference loop, block fast path, and the
compiled superblock trace tier on top of it) — each runnable under
three control-flow models (baseline / naive_ilr / vcfr) plus live
VCFR re-randomization epochs.  This module runs one program through
the whole matrix and cross-checks:

* **architectural outcome** — output streams, exit code, and retired
  instruction count are identical everywhere (the randomization modes
  are, by the paper's construction, semantics-preserving);
* **fast-path purity** — ``fastpath=True`` (blocks only, and blocks
  with compiled traces) must be *bit-identical* to the reference loop:
  cycles, every counter, every checkpoint, DRC lookups included;
* **statistics invariants** — misses never exceed accesses, rates stay
  in [0, 1], cycles bound instructions, DRC traffic exists exactly in
  the mode that owns a DRC;
* **serialization identity** — ``from_dict(json(as_dict()))`` is an
  identity for every result type the harness persists.

Every violated check becomes a :class:`Divergence`; a clean program
yields an empty report.  The oracle never raises for a *finding* —
engine crashes are findings too (kind ``crash:*``) — so a fuzzing
session can keep going and shrink later.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..arch.config import MachineConfig, default_config
from ..arch.cpu import CycleCPU
from ..arch.functional import FunctionalCPU, InstructionLimitExceeded
from ..arch.simstats import SimResult
from ..binary import BinaryImage
from ..emu import ILREmulator
from ..emu.vm import EmulationResult
from ..ilr import RandomizerConfig, make_flow, randomize, rerandomize
from ..ilr.rerandomize import apply_rerandomization

__all__ = [
    "Divergence",
    "OracleConfig",
    "OracleReport",
    "check_attack",
    "check_image",
    "check_source",
    "stats_invariants",
]

MODES = ("baseline", "naive_ilr", "vcfr")


@dataclass
class OracleConfig:
    """Scope and budgets of one oracle pass."""

    #: architectural instruction budget per engine run.  Generated
    #: programs retire a few hundred instructions; hitting this budget
    #: is itself a finding (``kind='budget'``).
    max_instructions: int = 200_000
    #: DRC entries for the cycle runs — small enough that fuzzed
    #: programs actually see conflict misses.
    drc_entries: int = 64
    #: run the software-ILR emulator leg.
    check_emulator: bool = True
    #: run the cycle-simulator matrix (3 modes x 3 tiers).
    check_cycle: bool = True
    #: include the compiled-trace tier in the cycle matrix.
    check_traces: bool = True
    #: hotness threshold for the trace-tier legs.  Generated programs
    #: retire only a few hundred instructions, so the production
    #: default (16) would rarely compile anything; 2 makes loops trace
    #: almost immediately and still exercises the block tier first.
    trace_hot_threshold: int = 2
    #: run live VCFR re-randomization epochs (fast + reference).
    check_rerandomize: bool = True
    #: how many epoch rotations the re-randomization leg performs.
    rerandomize_epochs: int = 2
    #: verify as_dict/from_dict identities on the produced results.
    check_serialization: bool = True
    #: checkpoint cadence for the cycle runs (a non-divisor of typical
    #: block lengths, so the fast path hits the clipped-budget case).
    checkpoint_interval: int = 777


@dataclass
class Divergence:
    """One violated cross-check."""

    #: machine-readable kind: ``output:<engine>``, ``icount:<engine>``,
    #: ``exit:<engine>``, ``fastpath:<mode>``, ``tracepath:<mode>``,
    #: ``invariant:<which>``, ``roundtrip:<type>``, ``crash:<engine>``,
    #: ``budget:<engine>``, ``rerandomize:<what>``.
    kind: str
    detail: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


@dataclass
class OracleReport:
    """Outcome of one full oracle pass over one program."""

    divergences: List[Divergence] = field(default_factory=list)
    #: engine runs performed.
    runs: int = 0
    #: baseline retired-instruction count (program size proxy).
    icount: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def add(self, kind: str, detail: str) -> None:
        self.divergences.append(Divergence(kind, detail))


def _snapshot(exit_code, icount, output) -> tuple:
    return (bytes(output.chars), tuple(output.words), exit_code, icount)


def _describe(snap: tuple) -> str:
    chars, words, exit_code, icount = snap
    return "exit=%r icount=%d chars=%r words=%r" % (
        exit_code, icount, chars[:64], list(words[:16])
    )


def stats_invariants(result: SimResult, mode: str) -> List[str]:
    """Structural sanity checks every :class:`SimResult` must satisfy.

    Returns human-readable violation strings (empty when clean).
    """
    bad: List[str] = []

    def check(cond: bool, message: str) -> None:
        if not cond:
            bad.append(message)

    for name in ("il1", "dl1", "l2"):
        stats = getattr(result, name)
        if not stats:
            continue
        check(stats["misses"] <= stats["accesses"],
              "%s: misses %d > accesses %d"
              % (name, stats["misses"], stats["accesses"]))
        check(all(v >= 0 for v in stats.values()),
              "%s: negative counter in %r" % (name, stats))
    check(0 <= result.drc_misses <= result.drc_lookups
          if result.drc_lookups else result.drc_misses == 0,
          "drc: misses %d vs lookups %d"
          % (result.drc_misses, result.drc_lookups))
    if mode != "vcfr":
        check(result.drc_lookups == 0,
              "drc active outside vcfr: %d lookups" % result.drc_lookups)
    check(result.cycles >= result.instructions,
          "cycles %d < instructions %d (single-issue in-order)"
          % (result.cycles, result.instructions))
    check(result.instructions >= 0, "negative instruction count")
    for rate_name in ("ipc", "il1_miss_rate", "dl1_miss_rate",
                      "l2_miss_rate", "drc_miss_rate"):
        rate = getattr(result, rate_name)
        check(0.0 <= rate <= 1.0, "%s=%r out of [0,1]" % (rate_name, rate))
    check(result.cond_mispredicts <= result.cond_branches,
          "branch mispredicts %d > branches %d"
          % (result.cond_mispredicts, result.cond_branches))
    return bad


def _roundtrip_identity(result, type_name: str, report: OracleReport) -> None:
    """``from_dict(json(as_dict()))`` must reproduce ``as_dict`` exactly."""
    cls = type(result)
    try:
        first = result.as_dict()
        revived = cls.from_dict(json.loads(json.dumps(first)))
        second = revived.as_dict()
    except Exception:
        report.add("roundtrip:%s" % type_name,
                   "serialization raised:\n" + traceback.format_exc())
        return
    if first != second:
        diffs = _dict_diff(first, second)
        report.add("roundtrip:%s" % type_name,
                   "as_dict not a fixed point of from_dict: %s" % diffs)


def _dict_diff(a: dict, b: dict, prefix: str = "") -> str:
    parts = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        if isinstance(va, dict) and isinstance(vb, dict):
            parts.append(_dict_diff(va, vb, prefix + key + "."))
        else:
            parts.append("%s%s: %r != %r" % (prefix, key, va, vb))
    return "; ".join(p for p in parts if p)[:500]


def _comparable(result: SimResult) -> dict:
    """Full result dict minus host wall-clock (the one legal delta)."""
    data = result.as_dict()
    data["checkpoints"] = [
        {k: v for k, v in cp.items() if k != "host_seconds"}
        for cp in data["checkpoints"]
    ]
    return data


_IMAGE_FOR = {
    "baseline": lambda p: p.original,
    "naive_ilr": lambda p: p.naive_image,
    "vcfr": lambda p: p.vcfr_image,
}


def check_image(image: BinaryImage, *, seed: int,
                config: Optional[OracleConfig] = None) -> OracleReport:
    """Run ``image`` through the full differential matrix.

    ``seed`` parameterizes the randomizer (and, derived from it, the
    re-randomization epoch seeds) so a finding is reproducible from
    ``(source, seed)`` alone.
    """
    cfg = config or OracleConfig()
    report = OracleReport()

    try:
        program = randomize(image, RandomizerConfig(seed=seed))
    except Exception:
        report.add("crash:randomizer", traceback.format_exc())
        return report

    # ---- leg 1: functional reference, all three modes -------------------
    reference = None
    for mode in MODES:
        snap = _functional_snapshot(program, mode, cfg, report)
        if snap is None:
            continue
        if reference is None:
            reference = snap
        elif snap != reference:
            report.add("output:functional:%s" % mode,
                       "functional %s diverged from baseline:\n  ref:  %s\n"
                       "  got:  %s" % (mode, _describe(reference),
                                       _describe(snap)))
    if reference is None:
        return report  # nothing else is comparable
    report.icount = reference[3]

    # ---- leg 2: software-ILR emulator -----------------------------------
    if cfg.check_emulator:
        _check_emulator(program, reference, cfg, report)

    # ---- leg 3: cycle simulator, modes x loops --------------------------
    if cfg.check_cycle:
        for mode in MODES:
            _check_cycle_mode(program, mode, reference, cfg, report)

    # ---- leg 4: live VCFR re-randomization epochs -----------------------
    if cfg.check_rerandomize:
        _check_rerandomization(program, reference, cfg, report)

    return report


def check_attack(*, seed: int,
                 config: Optional[OracleConfig] = None) -> OracleReport:
    """Differential leg for the *attacker's* view of the machine.

    Crafts the stack-smash exploit against the vulnerable service
    (:mod:`repro.security.attack`), randomized with ``seed``, and
    delivers the identical injected image through every engine — the
    functional reference and the cycle simulator's tiers (reference
    loop / blocks / compiled traces) — under every mode.  The attack
    outcome is architectural, so:

    * per mode, every engine must report the same
      :meth:`~repro.security.attack.AttackOutcome.key` — including the
      faulting target address when the transfer is blocked
      (``attack:<mode>:<tier>`` divergences otherwise);
    * the baseline must be EXPLOITED and both randomized modes BLOCKED
      (``attack:expected:<mode>``) — the paper's Table-1 result;
    * a benign request against VCFR must still complete
      (``attack:benign``) — the defense cannot break the service.
    """
    from ..binary import BinaryImage
    from ..security.attack import (
        SERVICE_OK,
        build_vulnerable_image,
        craft_exploit_input,
        deliver,
        inject_input,
    )
    from ..security.gadgets import scan_gadgets
    from ..security.payload import compile_shell_payload

    cfg = config or OracleConfig()
    report = OracleReport()

    try:
        image = build_vulnerable_image()
        program = randomize(image, RandomizerConfig(seed=seed))
        payload = compile_shell_payload(scan_gadgets(program.original))
        exploit = craft_exploit_input(payload)
    except Exception:
        report.add("crash:attack:setup", traceback.format_exc())
        return report

    engines = [("functional", "functional", None)]
    for tier, fastpath, tracepath in _tiers(cfg):
        engines.append(("cycle:%s" % tier, "cycle",
                        _cycle_config(cfg, fastpath, tracepath)))

    expected_exploited = {"baseline": True, "naive_ilr": False,
                          "vcfr": False}
    for mode in MODES:
        reference = None
        for label, engine, machine in engines:
            injected = BinaryImage.from_bytes(
                _IMAGE_FOR[mode](program).to_bytes())
            inject_input(injected, exploit)
            try:
                outcome = deliver(
                    injected, mode,
                    program=None if mode == "baseline" else program,
                    max_instructions=cfg.max_instructions,
                    engine=engine, machine=machine)
            except Exception:
                report.add("crash:attack:%s:%s" % (mode, label),
                           traceback.format_exc())
                continue
            report.runs += 1
            if reference is None:
                reference = outcome
                if outcome.shell_spawned != expected_exploited[mode]:
                    report.add("attack:expected:%s" % mode,
                               "wrong verdict: %s" % outcome.describe())
                if mode != "baseline" and not outcome.blocked:
                    report.add("attack:expected:%s" % mode,
                               "randomized mode not blocked: %s"
                               % outcome.describe())
            elif outcome.key() != reference.key():
                report.add(
                    "attack:%s:%s" % (mode, label),
                    "engine disagrees on the attack outcome:\n"
                    "  ref:  %r\n  got:  %r"
                    % (reference.key(), outcome.key()))

    # Benign request: the defense must not break legitimate service.
    try:
        benign = BinaryImage.from_bytes(program.vcfr_image.to_bytes())
        inject_input(benign, [0x11111111, 0x22222222])
        outcome = deliver(benign, "vcfr", program=program,
                          max_instructions=cfg.max_instructions)
        report.runs += 1
        if not outcome.service_completed or outcome.blocked:
            report.add("attack:benign",
                       "benign request failed under vcfr: %s"
                       % outcome.describe())
    except Exception:
        report.add("crash:attack:benign", traceback.format_exc())
    return report


def check_source(source: str, *, seed: int,
                 config: Optional[OracleConfig] = None) -> OracleReport:
    """Assemble ``source`` then :func:`check_image` it.

    Assembly failures are reported as ``crash:assembler`` (the
    generator must only produce valid programs, and the shrinker uses
    this to reject candidate reductions that broke the program).
    """
    from ..isa import assemble

    try:
        image = assemble(source)
    except Exception:
        report = OracleReport()
        report.add("crash:assembler", traceback.format_exc())
        return report
    return check_image(image, seed=seed, config=config)


# ---------------------------------------------------------------------------
# Legs
# ---------------------------------------------------------------------------


def _functional_snapshot(program, mode, cfg, report):
    label = "functional:%s" % mode
    image = _IMAGE_FOR[mode](program)
    try:
        cpu = FunctionalCPU(image, make_flow(mode, program),
                            max_instructions=cfg.max_instructions)
        run = cpu.run()
    except InstructionLimitExceeded:
        report.add("budget:%s" % label,
                   "did not terminate within %d instructions"
                   % cfg.max_instructions)
        return None
    except Exception:
        report.add("crash:%s" % label, traceback.format_exc())
        return None
    report.runs += 1
    if run.exit_code is None and not run.halted:
        report.add("budget:%s" % label,
                   "did not terminate within %d instructions"
                   % cfg.max_instructions)
        return None
    return _snapshot(run.exit_code, run.icount, run.output)


def _check_emulator(program, reference, cfg, report):
    try:
        emu = ILREmulator(program,
                          max_instructions=cfg.max_instructions).run()
    except Exception:
        report.add("crash:emulate", traceback.format_exc())
        return
    report.runs += 1
    run = emu.run
    if run.exit_code is None and not run.halted:
        report.add("budget:emulate", "emulator hit the instruction budget")
        return
    snap = _snapshot(run.exit_code, run.icount, run.output)
    if snap != reference:
        report.add("output:emulate",
                   "emulator diverged:\n  ref:  %s\n  got:  %s"
                   % (_describe(reference), _describe(snap)))
    if cfg.check_serialization:
        _roundtrip_identity(emu, "EmulationResult", report)


#: (tier name, fastpath, tracepath) — the cycle simulator's execution
#: tiers, cross-checked pairwise against the reference loop.
_TIERS = (("ref", False, False),
          ("blocks", True, False),
          ("traces", True, True))


def _cycle_config(cfg: OracleConfig, fastpath: bool,
                  tracepath: bool = False) -> MachineConfig:
    machine = default_config()
    machine.fastpath = fastpath
    machine.tracepath = tracepath
    machine.trace_hot_threshold = cfg.trace_hot_threshold
    machine.drc.entries = cfg.drc_entries
    return machine


def _tiers(cfg: OracleConfig):
    return [t for t in _TIERS if cfg.check_traces or not t[2]]


def _check_cycle_mode(program, mode, reference, cfg, report):
    image = _IMAGE_FOR[mode](program)
    results: Dict[str, SimResult] = {}
    for tier, fastpath, tracepath in _tiers(cfg):
        label = "cycle:%s:%s" % (mode, tier)
        try:
            cpu = CycleCPU(image, make_flow(mode, program),
                           _cycle_config(cfg, fastpath, tracepath),
                           checkpoint_interval=cfg.checkpoint_interval)
            result = cpu.run(max_instructions=cfg.max_instructions)
        except Exception:
            report.add("crash:%s" % label, traceback.format_exc())
            continue
        report.runs += 1
        if not result.finished:
            report.add("budget:%s" % label, "budget exhausted")
            continue
        results[tier] = result
        snap = _snapshot(result.exit_code, result.instructions,
                         result.output)
        if snap != reference:
            report.add("output:%s" % label,
                       "cycle engine diverged:\n  ref:  %s\n  got:  %s"
                       % (_describe(reference), _describe(snap)))
        for violation in stats_invariants(result, mode):
            report.add("invariant:%s" % label, violation)
        if cfg.check_serialization:
            _roundtrip_identity(result, "SimResult", report)
            for checkpoint in result.checkpoints:
                _roundtrip_identity(checkpoint, "Checkpoint", report)
                break  # one per run is plenty
    if "ref" in results:
        ref = _comparable(results["ref"])
        for tier, kind in (("blocks", "fastpath"), ("traces", "tracepath")):
            if tier not in results:
                continue
            fast = _comparable(results[tier])
            if fast != ref:
                report.add("%s:%s" % (kind, mode),
                           "%s tier not bit-identical to reference: %s"
                           % (tier, _dict_diff(ref, fast)))


def _check_rerandomization(program, reference, cfg, report):
    """Run VCFR with mid-run epoch rotations across all three tiers.

    Every tier rotates at the *same* retired-instruction points onto
    the *same* epoch programs, so their stats must stay bit-identical;
    the architectural outcome must still match the functional
    reference.  The trace tier is the interesting leg here: rotation
    must flush compiled traces (stale derand constants) and the next
    hot loop must recompile against the new tables.
    """
    icount = reference[3]
    if icount < 4:
        return
    # Rotation points: interior retired-instruction counts; epochs with
    # seeds derived from the randomizer seed (deterministic replay).
    slice_len = max(1, icount // (cfg.rerandomize_epochs + 1))
    epochs: List = []

    def run(tier: str, fastpath: bool, tracepath: bool) \
            -> Optional[SimResult]:
        label = "rerand:%s" % tier
        try:
            cpu = CycleCPU(program.vcfr_image, make_flow("vcfr", program),
                           _cycle_config(cfg, fastpath, tracepath))
            current = program
            finished = False
            for epoch in range(cfg.rerandomize_epochs):
                finished = cpu.run_slice(slice_len)
                if finished:
                    break
                if len(epochs) <= epoch:
                    epochs.append(rerandomize(
                        current,
                        new_seed=(program.config.seed * 7919 + epoch + 1)
                        % (1 << 30) + 1,
                    ))
                current = epochs[epoch]
                apply_rerandomization(cpu, current)
            if not finished:
                finished = cpu.run_slice(cfg.max_instructions)
            result = cpu._result(finished=finished, warmup=0)
        except Exception:
            report.add("crash:%s" % label, traceback.format_exc())
            return None
        report.runs += 1
        if not result.finished:
            report.add("budget:%s" % label, "budget exhausted")
            return None
        snap = _snapshot(result.exit_code, result.instructions,
                         result.output)
        if snap != reference:
            report.add(
                "rerandomize:output:%s" % label,
                "post-rotation run diverged:\n  ref:  %s\n  got:  %s"
                % (_describe(reference), _describe(snap)))
        return result

    results = {tier: run(tier, fastpath, tracepath)
               for tier, fastpath, tracepath in _tiers(cfg)}
    ref = results.get("ref")
    if ref is None:
        return
    for tier, kind in (("blocks", "fastpath"), ("traces", "tracepath")):
        fast = results.get(tier)
        if fast is not None and _comparable(fast) != _comparable(ref):
            report.add("rerandomize:%s" % kind,
                       "rotation broke %s-tier identity: %s"
                       % (tier, _dict_diff(_comparable(ref),
                                           _comparable(fast))))
