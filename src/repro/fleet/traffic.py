"""Open-loop request arrival traces for the fleet scenario.

Arrivals are generated once per tenant from a derived seed, in
simulated cycles, independent of service progress (open-loop: a slow
server does not slow the clients down, which is what makes tail
latency honest).  Three deterministic shapes:

* ``poisson`` — exponential interarrival gaps around ``mean_gap``;
* ``bursty`` — back-to-back bursts of ``burst`` requests separated by
  exponential idle gaps sized to keep the *long-run rate* equal to the
  poisson trace with the same ``mean_gap`` (so tail differences are
  pure burstiness, not load);
* ``uniform`` — fixed ``mean_gap`` spacing (``mean_gap=0`` means all
  requests arrive at time zero: the saturation/benchmark shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["ArrivalSpec", "arrival_times", "ARRIVAL_KINDS"]

ARRIVAL_KINDS = ("poisson", "bursty", "uniform")


@dataclass(frozen=True)
class ArrivalSpec:
    """Shape of one tenant's open-loop arrival trace."""

    kind: str = "poisson"
    #: total requests in the trace.
    requests: int = 30
    #: mean interarrival gap in simulated cycles (the long-run rate for
    #: every kind; exact spacing for ``uniform``).
    mean_gap: int = 2_500
    #: bursty only: requests per burst.
    burst: int = 8
    #: bursty only: gap between requests inside a burst (cycles).
    burst_gap: int = 50

    def label(self) -> str:
        return "%s/r%d/g%d" % (self.kind, self.requests, self.mean_gap)


def arrival_times(spec: ArrivalSpec, seed: int) -> List[int]:
    """The trace: a sorted list of ``spec.requests`` arrival cycles."""
    if spec.kind not in ARRIVAL_KINDS:
        raise ValueError("unknown arrival kind: %r" % (spec.kind,))
    if spec.requests < 0 or spec.mean_gap < 0:
        raise ValueError("requests and mean_gap must be non-negative")
    rng = random.Random(seed)
    times: List[int] = []
    t = 0
    if spec.kind == "uniform":
        for _ in range(spec.requests):
            t += spec.mean_gap
            times.append(t)
    elif spec.kind == "poisson":
        for _ in range(spec.requests):
            t += _exp_gap(rng, spec.mean_gap)
            times.append(t)
    else:  # bursty
        burst = max(1, spec.burst)
        # Idle gap sized so burst arrivals + idle average out to one
        # request per mean_gap cycles over the whole trace.
        idle_mean = max(
            1, spec.mean_gap * burst - spec.burst_gap * (burst - 1)
        )
        while len(times) < spec.requests:
            t += _exp_gap(rng, idle_mean)
            times.append(t)
            for _ in range(burst - 1):
                if len(times) >= spec.requests:
                    break
                t += max(1, spec.burst_gap)
                times.append(t)
    return times


def _exp_gap(rng: random.Random, mean: int) -> int:
    """One integer exponential gap with the given mean, at least 1."""
    if mean <= 0:
        return 1
    return max(1, int(round(rng.expovariate(1.0 / mean))))
