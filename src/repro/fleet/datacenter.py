"""Multi-tenant datacenter fleet scenario (paper §IV-D at scale).

N protected tenants serve open-loop request traffic over M simulated
cores.  Each tenant owns its private close-to-the-core state (DRC,
TLBs, L1s, branch unit) while all tenants on the node contend in one
genuinely shared L2 + DRAM
(:class:`~repro.arch.sharedmem.SharedMemorySystem`) — RDR-table
refills go through the shared L2 exactly as the paper's design says,
and one tenant's working set evicts another's lines.

The scheduler is a deterministic multi-core generalization of
:class:`~repro.arch.context.TimeSharedCPU`: tenants are statically
assigned to cores round-robin (tenant ``i`` on core ``i % cores``),
each core runs work-conserving round-robin over its runnable tenants
(a tenant is runnable when it has arrived-but-unserved work), and the
global interleaving always steps the core with the smallest
``(clock, index)`` — so the simulation is bit-deterministic in the
:class:`FleetSpec` alone, which is what lets :func:`sweep_fleet` be
bit-identical sequential vs pooled.

Dispatching a *different* tenant on a core charges the context-switch
cost and flushes the incoming tenant's DRC and TLBs (its RDR-table
context was swapped in); re-dispatching the same tenant does not.
Request completions are interpolated inside a quantum by instruction
progress, so per-tenant latency percentiles (p50/p95/p99) are
cycle-resolution, not quantum-resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..arch.config import MachineConfig
from ..arch.cpu import CycleCPU
from ..arch.sharedmem import SharedMemorySystem
from ..ilr.flow import make_flow
from ..ilr.randomizer import RandomizerConfig, randomize
from ..security.race import SERVICE_WORKLOAD, build_service_image
from ..workloads import build_image
from .traffic import ArrivalSpec, arrival_times

__all__ = [
    "FleetSpec",
    "TenantResult",
    "FleetResult",
    "run_fleet",
    "sweep_fleet",
]

MODES = ("baseline", "naive_ilr", "vcfr")


@dataclass(frozen=True)
class FleetSpec:
    """One point of the fleet grid; fully determines the simulation."""

    workload: str = SERVICE_WORKLOAD
    scale: float = 0.3
    mode: str = "vcfr"
    seed: int = 42
    tenants: int = 4
    cores: int = 2
    #: scheduling quantum, in instructions.
    quantum_instructions: int = 2_000
    #: fixed kernel cost charged when a core switches tenants.
    switch_cycles: int = 200
    #: service demand: instructions consumed per request.
    request_instructions: int = 600
    #: per-tenant arrival trace shape (seeded per tenant).
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: per-tenant instruction safety budget; a tenant that exhausts it
    #: stops serving (remaining requests count as unserved).
    max_instructions: int = 400_000

    def label(self) -> str:
        return "%s/%s/%dt%dc/%s" % (
            self.workload, self.mode, self.tenants, self.cores,
            self.arrival.kind,
        )


@dataclass
class TenantResult:
    """Flat, JSON-able per-tenant outcome (bit-identity surface)."""

    tenant: str
    index: int
    core: int
    requests: int
    served: int
    unserved: int
    p50_latency: int
    p95_latency: int
    p99_latency: int
    max_latency: int
    mean_latency: float
    instructions: int
    cycles: int
    ipc: float
    quanta: int
    switches: int
    switch_cycles_total: int
    max_queue_depth: int
    il1_miss_rate: float
    drc_miss_rate: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FleetResult:
    """Flat, JSON-able outcome of one fleet point."""

    # spec echo
    workload: str
    mode: str
    seed: int
    tenants: int
    cores: int
    quantum_instructions: int
    switch_cycles: int
    request_instructions: int
    arrival_kind: str
    arrival_requests: int
    arrival_mean_gap: int
    max_instructions: int
    # totals
    instructions: int
    cycles: int
    makespan: int
    requests: int
    served: int
    unserved: int
    switches: int
    switch_cycles_total: int
    ipc: float
    #: Jain's fairness index over per-tenant IPC (1.0 = perfectly fair).
    ipc_fairness: float
    # fleet-wide latency (all served requests pooled)
    p50_latency: int
    p95_latency: int
    p99_latency: int
    max_latency: int
    # shared-level contention
    l2_accesses: int
    l2_misses: int
    l2_miss_rate: float
    dram_accesses: int
    # per-part breakdowns
    tenant_results: List[TenantResult] = field(default_factory=list)
    core_stats: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["tenant_results"] = [t.as_dict() for t in self.tenant_results]
        out["core_stats"] = [dict(c) for c in self.core_stats]
        return out

    def by_tenant(self, name: str) -> TenantResult:
        for tenant in self.tenant_results:
            if tenant.tenant == name:
                return tenant
        raise KeyError(name)

    def tenant_points(self) -> List[dict]:
        """One flat row per tenant: spec echo + tenant metrics.

        This is the event/store surface (``tenant_point`` events and
        ``fleet_points`` rows).
        """
        echo = {
            "workload": self.workload,
            "mode": self.mode,
            "seed": self.seed,
            "tenants": self.tenants,
            "cores": self.cores,
            "quantum_instructions": self.quantum_instructions,
            "switch_cycles": self.switch_cycles,
            "request_instructions": self.request_instructions,
            "arrival_kind": self.arrival_kind,
            "arrival_requests": self.arrival_requests,
            "arrival_mean_gap": self.arrival_mean_gap,
            "ipc_fairness": self.ipc_fairness,
            "l2_miss_rate": self.l2_miss_rate,
        }
        points = []
        for tenant in self.tenant_results:
            row = dict(echo)
            row.update(tenant.as_dict())
            points.append(row)
        return points


class _Tenant:
    """Scheduler-side state for one tenant."""

    __slots__ = (
        "name", "index", "core", "cpu", "arrivals", "next_arrival",
        "queue", "pending_work", "latencies", "served", "dead",
        "budget_left", "quanta", "switches", "switch_cycles_total",
        "max_queue_depth",
    )

    def __init__(self, name, index, core, cpu, arrivals, budget):
        self.name = name
        self.index = index
        self.core = core
        self.cpu = cpu
        self.arrivals = arrivals
        self.next_arrival = 0
        #: FIFO of [arrival_cycle, remaining_instructions].
        self.queue = []
        self.pending_work = 0
        self.latencies = []
        self.served = 0
        self.dead = False
        self.budget_left = budget
        self.quanta = 0
        self.switches = 0
        self.switch_cycles_total = 0
        self.max_queue_depth = 0

    def admit(self, clock: int, request_instructions: int) -> None:
        arrivals = self.arrivals
        n = len(arrivals)
        i = self.next_arrival
        while i < n and arrivals[i] <= clock:
            self.queue.append([arrivals[i], 0])
            self.pending_work += request_instructions
            i += 1
        if i != self.next_arrival:
            self.next_arrival = i
            if len(self.queue) > self.max_queue_depth:
                self.max_queue_depth = len(self.queue)

    def runnable(self) -> bool:
        return not self.dead and bool(self.queue)

    def exhausted(self) -> bool:
        """No present or future work (or gave up)."""
        if self.dead:
            return True
        return not self.queue and self.next_arrival >= len(self.arrivals)


class _Core:
    """One simulated core: a clock and its resident tenants."""

    __slots__ = ("index", "clock", "tenants", "rr", "current",
                 "busy_cycles", "idle_cycles", "switches", "finished")

    def __init__(self, index):
        self.index = index
        self.clock = 0
        self.tenants = []
        self.rr = 0
        self.current = None
        self.busy_cycles = 0
        self.idle_cycles = 0
        self.switches = 0
        self.finished = False


def _derived_seed(seed: int, index: int) -> int:
    return (seed * 1_000_003 + index * 7919 + 29) % (1 << 62)


def _build_fleet_image(spec: FleetSpec):
    if spec.workload == SERVICE_WORKLOAD:
        return build_service_image()
    return build_image(spec.workload, spec.scale)


def _image_for(mode: str, program):
    if mode == "baseline":
        return program.original
    if mode == "naive_ilr":
        return program.naive_image
    if mode == "vcfr":
        return program.vcfr_image
    raise ValueError("unknown mode: %r" % (mode,))


def _percentile(sorted_values: List[int], pct: float) -> int:
    """Nearest-rank percentile; 0 for an empty sample."""
    if not sorted_values:
        return 0
    n = len(sorted_values)
    rank = max(1, -(-int(pct * n) // 100))  # ceil(pct/100 * n), >= 1
    return sorted_values[min(rank, n) - 1]


def _jain_fairness(values: List[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    return square_of_sum / (len(values) * sum_of_squares)


def _switch_in(tenant: _Tenant, switch_cycles: int) -> None:
    """Charge the incoming tenant for the core handover.

    Mirrors :meth:`TimeSharedCPU._on_switch_in`: the DRC held the
    outgoing tenant's RDR translations and the TLBs its address space;
    both flush.  L1/L2 contents survive (physically tagged), which with
    the shared L2 is exactly the cross-tenant contention under study.
    """
    cpu = tenant.cpu
    cpu.cycle += switch_cycles
    cpu.drc.flush()
    cpu.itlb.flush()
    cpu.dtlb.flush()
    cpu._last_fetch_line = -1
    cpu._last_fetch_page = -1
    tenant.switches += 1
    tenant.switch_cycles_total += switch_cycles


def _step(core: _Core, spec: FleetSpec) -> None:
    """Advance one core by one scheduling decision."""
    for tenant in core.tenants:
        tenant.admit(core.clock, spec.request_instructions)

    # Work-conserving round-robin over runnable residents.
    n = len(core.tenants)
    chosen = None
    for offset in range(n):
        tenant = core.tenants[(core.rr + offset) % n]
        if tenant.runnable():
            chosen = tenant
            core.rr = (core.rr + offset + 1) % n
            break

    if chosen is None:
        # Idle: jump to the next arrival on this core, or finish.
        upcoming = [
            t.arrivals[t.next_arrival]
            for t in core.tenants
            if not t.dead and t.next_arrival < len(t.arrivals)
        ]
        if not upcoming:
            core.finished = True
            return
        target = min(upcoming)
        core.idle_cycles += target - core.clock
        core.clock = target
        return

    if core.current is not chosen:
        _switch_in(chosen, spec.switch_cycles)
        core.clock += spec.switch_cycles
        core.switches += 1
        core.current = chosen

    cpu = chosen.cpu
    slice_size = min(
        spec.quantum_instructions, chosen.pending_work, chosen.budget_left
    )
    cycle0 = cpu.cycle
    icount0 = cpu.state.icount
    finished = cpu.run_slice(slice_size)
    executed = cpu.state.icount - icount0
    delta_cycles = cpu.cycle - cycle0
    chosen.budget_left -= executed
    chosen.quanta += 1
    core.busy_cycles += delta_cycles

    # Attribute completions inside the quantum by instruction progress.
    base_clock = core.clock
    available = executed
    consumed = 0
    while chosen.queue and available > 0:
        request = chosen.queue[0]
        take = min(spec.request_instructions - request[1], available)
        request[1] += take
        available -= take
        consumed += take
        if request[1] >= spec.request_instructions:
            completion = base_clock + delta_cycles * consumed // executed
            chosen.latencies.append(completion - request[0])
            chosen.served += 1
            chosen.queue.pop(0)
    chosen.pending_work -= consumed
    core.clock += delta_cycles

    if finished or chosen.budget_left <= 0 or executed == 0:
        chosen.dead = True


def run_fleet(spec: FleetSpec, config: Optional[MachineConfig] = None) -> FleetResult:
    """Run one fleet point; deterministic in ``spec`` alone."""
    if spec.tenants < 1 or spec.cores < 1:
        raise ValueError("need at least one tenant and one core")
    if spec.request_instructions < 1:
        raise ValueError("request_instructions must be positive")

    image = _build_fleet_image(spec)
    shared = SharedMemorySystem(config)

    tenants: List[_Tenant] = []
    for index in range(spec.tenants):
        program = randomize(
            image, RandomizerConfig(seed=spec.seed + 101 * index)
        )
        flow = make_flow(spec.mode, program)
        cpu = CycleCPU(
            _image_for(spec.mode, program),
            flow,
            config,
            memory=shared.port(index),
        )
        arrivals = arrival_times(
            spec.arrival, _derived_seed(spec.seed, index)
        )
        tenant = _Tenant(
            name="t%d" % index,
            index=index,
            core=index % spec.cores,
            cpu=cpu,
            arrivals=arrivals,
            budget=spec.max_instructions,
        )
        tenants.append(tenant)

    # Prime every CPU before any executes: the first run_slice resets
    # stats objects, and with a shared L2 + DRAM a late first slice
    # would wipe counters other tenants already accumulated.
    for tenant in tenants:
        tenant.cpu.run_slice(0)
    shared.reset_stats()

    cores = [_Core(i) for i in range(spec.cores)]
    for tenant in tenants:
        cores[tenant.core].tenants.append(tenant)
    for core in cores:
        if not core.tenants:
            core.finished = True

    while True:
        active = [c for c in cores if not c.finished]
        if not active:
            break
        core = min(active, key=lambda c: (c.clock, c.index))
        _step(core, spec)
        if all(t.exhausted() for t in core.tenants):
            core.finished = True

    tenant_results = []
    all_latencies: List[int] = []
    for tenant in tenants:
        latencies = sorted(tenant.latencies)
        all_latencies.extend(latencies)
        cpu = tenant.cpu
        il1 = cpu.il1.stats
        drc = cpu.drc.stats
        instructions = cpu.state.icount
        cycles = cpu.cycle
        tenant_results.append(TenantResult(
            tenant=tenant.name,
            index=tenant.index,
            core=tenant.core,
            requests=len(tenant.arrivals),
            served=tenant.served,
            unserved=len(tenant.arrivals) - tenant.served,
            p50_latency=_percentile(latencies, 50),
            p95_latency=_percentile(latencies, 95),
            p99_latency=_percentile(latencies, 99),
            max_latency=latencies[-1] if latencies else 0,
            mean_latency=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            instructions=instructions,
            cycles=cycles,
            ipc=(instructions / cycles) if cycles else 0.0,
            quanta=tenant.quanta,
            switches=tenant.switches,
            switch_cycles_total=tenant.switch_cycles_total,
            max_queue_depth=tenant.max_queue_depth,
            il1_miss_rate=(
                il1.misses / il1.accesses if il1.accesses else 0.0
            ),
            drc_miss_rate=(
                drc.misses / drc.lookups if drc.lookups else 0.0
            ),
        ))

    all_latencies.sort()
    instructions = sum(t.instructions for t in tenant_results)
    cycles = sum(t.cycles for t in tenant_results)
    l2 = shared.l2.stats
    return FleetResult(
        workload=spec.workload,
        mode=spec.mode,
        seed=spec.seed,
        tenants=spec.tenants,
        cores=spec.cores,
        quantum_instructions=spec.quantum_instructions,
        switch_cycles=spec.switch_cycles,
        request_instructions=spec.request_instructions,
        arrival_kind=spec.arrival.kind,
        arrival_requests=spec.arrival.requests,
        arrival_mean_gap=spec.arrival.mean_gap,
        max_instructions=spec.max_instructions,
        instructions=instructions,
        cycles=cycles,
        makespan=max(core.clock for core in cores),
        requests=sum(t.requests for t in tenant_results),
        served=sum(t.served for t in tenant_results),
        unserved=sum(t.unserved for t in tenant_results),
        switches=sum(t.switches for t in tenant_results),
        switch_cycles_total=sum(
            t.switch_cycles_total for t in tenant_results
        ),
        ipc=(instructions / cycles) if cycles else 0.0,
        ipc_fairness=_jain_fairness([t.ipc for t in tenant_results]),
        p50_latency=_percentile(all_latencies, 50),
        p95_latency=_percentile(all_latencies, 95),
        p99_latency=_percentile(all_latencies, 99),
        max_latency=all_latencies[-1] if all_latencies else 0,
        l2_accesses=l2.accesses,
        l2_misses=l2.misses,
        l2_miss_rate=(l2.misses / l2.accesses if l2.accesses else 0.0),
        dram_accesses=shared.dram.stats.accesses,
        tenant_results=tenant_results,
        core_stats=[
            {
                "core": core.index,
                "clock": core.clock,
                "busy_cycles": core.busy_cycles,
                "idle_cycles": core.idle_cycles,
                "switches": core.switches,
                "tenants": len(core.tenants),
            }
            for core in cores
        ],
    )


def _fleet_point(spec: FleetSpec) -> FleetResult:
    return run_fleet(spec)


def sweep_fleet(specs: Iterable[FleetSpec], workers: int = 0, events=None,
                store=None) -> List[FleetResult]:
    """Run a grid of fleet points, optionally across a process pool.

    Results come back in input order and are bit-identical between the
    sequential and pooled paths (workers compute, the parent records:
    all event emission and store writes happen here, after collection).
    """
    specs = list(specs)
    if events is not None:
        events.emit("fleet_start", points=len(specs))
    if workers and workers >= 2 and len(specs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_fleet_point, specs, chunksize=1))
    else:
        results = [run_fleet(spec) for spec in specs]
    for result in results:
        for point in result.tenant_points():
            if events is not None:
                events.emit("tenant_point", **point)
            if store is not None:
                store.record_fleet_point(point)
    if events is not None:
        events.emit("fleet_end", points=len(results))
    return results
