"""Multi-tenant datacenter fleet scenario.

N protected tenants serving open-loop request traffic over M simulated
cores, with per-tenant DRC/TLB/L1 state and a genuinely shared L2 +
DRAM — the ROADMAP's "simulate the datacenter, not just the core"
workload.  See :mod:`repro.fleet.datacenter` for the model and
:mod:`repro.fleet.traffic` for the arrival traces.
"""

from .datacenter import (
    FleetResult,
    FleetSpec,
    TenantResult,
    run_fleet,
    sweep_fleet,
)
from .traffic import ARRIVAL_KINDS, ArrivalSpec, arrival_times

__all__ = [
    "FleetSpec",
    "FleetResult",
    "TenantResult",
    "run_fleet",
    "sweep_fleet",
    "ArrivalSpec",
    "arrival_times",
    "ARRIVAL_KINDS",
]
