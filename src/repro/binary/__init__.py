"""Binary image format for RX86 programs.

Public surface:

* :class:`BinaryImage` — sections + entry + symbols + relocations,
* :class:`Section`, :class:`Relocation`, :class:`SymbolTable`,
* :func:`load_image` and the standard memory-map constants.
"""

from .image import BinaryImage, ImageError
from .loader import (
    CODE_BASE,
    DATA_BASE,
    HEAP_BASE,
    RANDOMIZED_BASE,
    STACK_SIZE,
    STACK_TOP,
    LoadInfo,
    load_image,
)
from .relocation import KIND_CODE_IMM32, KIND_DATA_ABS32, Relocation
from .section import FLAG_EXEC, FLAG_READ, FLAG_WRITE, Section
from .symbols import Symbol, SymbolTable

__all__ = [
    "BinaryImage",
    "ImageError",
    "Section",
    "Symbol",
    "SymbolTable",
    "Relocation",
    "KIND_CODE_IMM32",
    "KIND_DATA_ABS32",
    "FLAG_EXEC",
    "FLAG_READ",
    "FLAG_WRITE",
    "LoadInfo",
    "load_image",
    "CODE_BASE",
    "DATA_BASE",
    "HEAP_BASE",
    "STACK_TOP",
    "STACK_SIZE",
    "RANDOMIZED_BASE",
]
