"""Symbol table for RX86 binary images."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Symbol:
    """A named address.  ``is_func`` marks function entry points."""

    name: str
    addr: int
    is_func: bool = False


class SymbolTable:
    """Name <-> address mapping with function-entry queries."""

    def __init__(self):
        self._by_name: Dict[str, Symbol] = {}
        self._by_addr: Dict[int, Symbol] = {}

    def add(self, name: str, addr: int, is_func: bool = False) -> Symbol:
        if name in self._by_name:
            raise KeyError("duplicate symbol %r" % name)
        sym = Symbol(name, addr, is_func)
        self._by_name[name] = sym
        # Last writer wins for address lookup; duplicates at one address
        # are legal (aliases).
        self._by_addr[addr] = sym
        return sym

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._by_name.values())

    def resolve(self, name: str) -> int:
        """Return the address of symbol ``name`` (KeyError if absent)."""
        return self._by_name[name].addr

    def get(self, name: str) -> Optional[Symbol]:
        return self._by_name.get(name)

    def at(self, addr: int) -> Optional[Symbol]:
        """Return a symbol defined exactly at ``addr``, if any."""
        return self._by_addr.get(addr)

    def functions(self) -> List[Symbol]:
        """All symbols flagged as function entry points, sorted by address."""
        return sorted(
            (s for s in self._by_name.values() if s.is_func),
            key=lambda s: s.addr,
        )

    def copy(self) -> "SymbolTable":
        table = SymbolTable()
        table._by_name = dict(self._by_name)
        table._by_addr = dict(self._by_addr)
        return table
