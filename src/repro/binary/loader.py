"""Loading RX86 binary images into simulator memory.

The loader copies every section into a flat sparse memory object and
returns the layout facts the CPU needs (entry point, stack placement).
It is shared by the functional executor, the cycle simulator and the
software-ILR emulator so that all execution paths see identical initial
state — a prerequisite for the cross-mode equivalence invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from .image import BinaryImage

#: Default memory map (mirrors a classic 32-bit Linux process layout).
CODE_BASE = 0x00400000
DATA_BASE = 0x08000000
HEAP_BASE = 0x10000000
STACK_TOP = 0x7FFF0000
STACK_SIZE = 0x00100000

#: Base of the randomized instruction address region used by the ILR
#: randomizer.  Kept far away from every other region so that randomized
#: and original addresses can never collide.
RANDOMIZED_BASE = 0x40000000


@dataclass
class LoadInfo:
    """Result of loading an image."""

    entry: int
    stack_top: int
    stack_base: int
    brk: int  # first free address after the data segment


def load_image(image: BinaryImage, memory, stack_top: int = STACK_TOP) -> LoadInfo:
    """Copy ``image`` into ``memory`` and return placement information.

    ``memory`` must expose ``write_block(addr, bytes)``; both the
    functional :class:`~repro.arch.memory.SparseMemory` and the cache
    simulator's backing store do.
    """
    brk = HEAP_BASE
    for sec in image.sections:
        if sec.size:
            memory.write_block(sec.base, bytes(sec.data))
            brk = max(brk, sec.end)
    return LoadInfo(
        entry=image.entry,
        stack_top=stack_top,
        stack_base=stack_top - STACK_SIZE,
        brk=brk,
    )
