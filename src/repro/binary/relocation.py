"""Relocation records for RX86 binary images.

A relocation marks a 32-bit slot that holds an *absolute code address*.
The ILR randomizer consumes these to rewrite jump tables, function-pointer
constants and ``movi reg, label`` immediates when the instruction space is
re-laid out (paper §IV-A: "Relocation information can also be obtained").
"""

from __future__ import annotations

from dataclasses import dataclass

#: 32-bit absolute address stored in a data section (e.g. a jump table slot).
KIND_DATA_ABS32 = "data_abs32"
#: 32-bit absolute address stored in an instruction immediate (movi / RI mode).
KIND_CODE_IMM32 = "code_imm32"


@dataclass(frozen=True)
class Relocation:
    """One relocation entry.

    Attributes
    ----------
    addr:
        Absolute address of the 4-byte slot containing the code address.
    kind:
        ``KIND_DATA_ABS32`` or ``KIND_CODE_IMM32``.
    target:
        The code address the slot currently holds (original address space).
    """

    addr: int
    kind: str
    target: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Reloc(0x%x %s -> 0x%x)" % (self.addr, self.kind, self.target)
