"""Sections of an RX86 binary image."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Section permission / type flags.
FLAG_EXEC = 0x1
FLAG_WRITE = 0x2
FLAG_READ = 0x4


@dataclass
class Section:
    """A contiguous, named region of the binary image.

    ``data`` is a mutable ``bytearray`` so that the ILR rewriter can patch
    branch-target immediates and jump tables in place.
    """

    name: str
    base: int
    data: bytearray = field(default_factory=bytearray)
    flags: int = FLAG_READ

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last address of the section."""
        return self.base + len(self.data)

    @property
    def executable(self) -> bool:
        return bool(self.flags & FLAG_EXEC)

    @property
    def writable(self) -> bool:
        return bool(self.flags & FLAG_WRITE)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def read(self, addr: int, count: int) -> bytes:
        """Read ``count`` bytes at absolute address ``addr``."""
        off = addr - self.base
        if off < 0 or off + count > len(self.data):
            raise IndexError(
                "read of %d bytes at 0x%x outside section %r" % (count, addr, self.name)
            )
        return bytes(self.data[off : off + count])

    def write(self, addr: int, payload: bytes) -> None:
        """Write ``payload`` at absolute address ``addr`` (must fit)."""
        off = addr - self.base
        if off < 0 or off + len(payload) > len(self.data):
            raise IndexError(
                "write of %d bytes at 0x%x outside section %r"
                % (len(payload), addr, self.name)
            )
        self.data[off : off + len(payload)] = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = "".join(
            flag if self.flags & bit else "-"
            for flag, bit in (("r", FLAG_READ), ("w", FLAG_WRITE), ("x", FLAG_EXEC))
        )
        return "Section(%r, base=0x%x, size=%d, %s)" % (
            self.name, self.base, self.size, kinds,
        )
