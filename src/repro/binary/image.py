"""The RX86 binary image container.

A :class:`BinaryImage` is what the assembler produces, the static analyses
and the randomizer consume, and the simulators load: a set of sections plus
entry point, symbols and relocations.  It plays the role of the ELF binary
in the paper's toolchain (Fig. 6).
"""

from __future__ import annotations

import struct
from typing import List, Optional

from .relocation import Relocation
from .section import FLAG_EXEC, FLAG_READ, FLAG_WRITE, Section
from .symbols import SymbolTable

MAGIC = b"RXBF"
VERSION = 1


class ImageError(ValueError):
    """Raised for malformed images or out-of-range accesses."""


class BinaryImage:
    """A complete RX86 program binary."""

    def __init__(self, entry: int = 0):
        self.entry = entry
        self.sections: List[Section] = []
        self.symbols = SymbolTable()
        self.relocations: List[Relocation] = []

    # -- construction --------------------------------------------------------

    def add_section(self, section: Section) -> Section:
        for existing in self.sections:
            if existing.name == section.name:
                raise ImageError("duplicate section %r" % section.name)
            if section.size and existing.size and (
                section.base < existing.end and existing.base < section.end
            ):
                raise ImageError(
                    "section %r overlaps %r" % (section.name, existing.name)
                )
        self.sections.append(section)
        return section

    # -- lookup ---------------------------------------------------------------

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise ImageError("no section %r" % name)

    def has_section(self, name: str) -> bool:
        return any(sec.name == name for sec in self.sections)

    def section_at(self, addr: int) -> Optional[Section]:
        for sec in self.sections:
            if sec.contains(addr):
                return sec
        return None

    def code_sections(self) -> List[Section]:
        return [sec for sec in self.sections if sec.executable]

    def is_code_addr(self, addr: int) -> bool:
        sec = self.section_at(addr)
        return sec is not None and sec.executable

    # -- memory-style access ----------------------------------------------------

    def read(self, addr: int, count: int) -> bytes:
        sec = self.section_at(addr)
        if sec is None:
            raise ImageError("read at unmapped address 0x%x" % addr)
        return sec.read(addr, count)

    def write(self, addr: int, payload: bytes) -> None:
        sec = self.section_at(addr)
        if sec is None:
            raise ImageError("write at unmapped address 0x%x" % addr)
        sec.write(addr, payload)

    def read_u32(self, addr: int) -> int:
        return struct.unpack("<I", self.read(addr, 4))[0]

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<I", value & 0xFFFFFFFF))

    # -- stats -------------------------------------------------------------------

    @property
    def code_size(self) -> int:
        return sum(sec.size for sec in self.code_sections())

    @property
    def total_size(self) -> int:
        return sum(sec.size for sec in self.sections)

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the RXBF container format."""
        out = bytearray()
        out += MAGIC
        out += struct.pack("<HHI", VERSION, 0, self.entry)
        out += struct.pack("<III", len(self.sections), len(self.symbols),
                           len(self.relocations))
        for sec in self.sections:
            name = sec.name.encode()
            out += struct.pack("<HIIB", len(name), sec.base, sec.size, sec.flags)
            out += name
            out += sec.data
        for sym in self.symbols:
            name = sym.name.encode()
            out += struct.pack("<HIB", len(name), sym.addr, int(sym.is_func))
            out += name
        for reloc in self.relocations:
            kind = reloc.kind.encode()
            out += struct.pack("<HII", len(kind), reloc.addr, reloc.target)
            out += kind
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BinaryImage":
        """Deserialize an RXBF container."""
        if blob[:4] != MAGIC:
            raise ImageError("bad magic %r" % blob[:4])
        version, _pad, entry = struct.unpack_from("<HHI", blob, 4)
        if version != VERSION:
            raise ImageError("unsupported RXBF version %d" % version)
        n_sec, n_sym, n_rel = struct.unpack_from("<III", blob, 12)
        image = cls(entry=entry)
        off = 24
        for _ in range(n_sec):
            name_len, base, size, flags = struct.unpack_from("<HIIB", blob, off)
            off += 11
            name = blob[off : off + name_len].decode()
            off += name_len
            data = bytearray(blob[off : off + size])
            off += size
            image.add_section(Section(name, base, data, flags))
        for _ in range(n_sym):
            name_len, addr, is_func = struct.unpack_from("<HIB", blob, off)
            off += 7
            name = blob[off : off + name_len].decode()
            off += name_len
            image.symbols.add(name, addr, bool(is_func))
        for _ in range(n_rel):
            kind_len, addr, target = struct.unpack_from("<HII", blob, off)
            off += 10
            kind = blob[off : off + kind_len].decode()
            off += kind_len
            image.relocations.append(Relocation(addr, kind, target))
        return image

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BinaryImage(entry=0x%x, sections=%r)" % (self.entry, self.sections)


def make_standard_image(entry: int = 0) -> BinaryImage:
    """Return an empty image (helper for tests and builders)."""
    return BinaryImage(entry=entry)


__all__ = [
    "BinaryImage",
    "ImageError",
    "Section",
    "FLAG_EXEC",
    "FLAG_READ",
    "FLAG_WRITE",
]
