"""Program-construction DSL over the RX86 assembler.

The benchmark programs of :mod:`repro.workloads.programs` are real
programs — they compute checksums over real data structures and verify
them — but they are *generated*, so each one can be parameterized by a
scale factor and can be given the code-footprint / branch-mix / data-set
shape of the SPEC CPU2006 application it stands in for.

The builder collects assembly lines for the code and data sections,
hands out unique labels, and provides the common idioms (function
prologue/epilogue, bounded loops, LCG random numbers, EMIT/EXIT).
"""

from __future__ import annotations

from typing import List

from ..binary import BinaryImage
from ..isa import assemble


class ProgramBuilder:
    """Accumulates an RX86 assembly program."""

    def __init__(self, name: str, code_base: int = 0x400000,
                 data_base: int = 0x8000000):
        self.name = name
        self._code: List[str] = [".code 0x%x" % code_base]
        self._data: List[str] = [".data 0x%x" % data_base]
        self._counter = 0

    # -- raw emission --------------------------------------------------------

    def emit(self, line: str) -> None:
        """Append one line of code-section assembly."""
        self._code.append("    " + line if not line.endswith(":") else line)

    def emits(self, *lines: str) -> None:
        for line in lines:
            self.emit(line)

    def label(self, name: str) -> None:
        self._code.append(name + ":")

    def data(self, line: str) -> None:
        self._data.append("    " + line if not line.endswith(":") else line)

    def data_label(self, name: str) -> None:
        self._data.append(name + ":")

    def unique(self, prefix: str = "L") -> str:
        """A fresh local label (dot-prefixed: not a function symbol)."""
        self._counter += 1
        return ".%s_%s_%d" % (prefix, self.name, self._counter)

    def unique_global(self, prefix: str) -> str:
        """A fresh function-level label."""
        self._counter += 1
        return "%s_%d" % (prefix, self._counter)

    # -- common idioms ------------------------------------------------------------

    def func(self, name: str) -> None:
        """Open a function with the standard prologue."""
        self.label(name)
        self.emits("push ebp", "mov ebp, esp")

    def endfunc(self) -> None:
        """Standard epilogue + return."""
        self.emits("mov esp, ebp", "pop ebp", "ret")

    def loop(self, counter_reg: str, bound: int, body) -> None:
        """``for (reg = 0; reg < bound; reg++) body()`` — clobbers the reg."""
        top = self.unique("loop")
        self.emit("movi %s, 0" % counter_reg)
        self.label(top)
        body()
        self.emit("add %s, 1" % counter_reg)
        self.emit("cmp %s, %d" % (counter_reg, bound))
        self.emit("jl %s" % top)

    def lcg_step(self, reg: str, tmp: str = "edx") -> None:
        """Advance a linear congruential PRNG held in ``reg``.

        x = x * 1103515245 + 12345 (mod 2^32); clobbers ``tmp``.
        """
        self.emits(
            "movi %s, 1103515245" % tmp,
            "imul %s, %s" % (reg, tmp),
            "add %s, 12345" % reg,
        )

    def emit_word(self, reg: str) -> None:
        """EMIT the 32-bit value of ``reg`` to the output stream."""
        if reg != "ebx":
            self.emit("mov ebx, %s" % reg)
        self.emits("movi eax, 5", "int 0x80")

    def exit(self, code: int = 0) -> None:
        self.emits("movi eax, 1", "movi ebx, %d" % code, "int 0x80")

    # -- finalization -------------------------------------------------------------------

    def source(self) -> str:
        return "\n".join(self._code) + "\n" + "\n".join(self._data) + "\n"

    def image(self) -> BinaryImage:
        """Assemble the accumulated program."""
        return assemble(self.source())


def jump_table(builder: ProgramBuilder, name: str, targets: List[str]) -> str:
    """Emit a data-section jump table; returns its label."""
    builder.data_label(name)
    builder.data(".word " + ", ".join(targets))
    return name


def dispatch_indexed(
    builder: ProgramBuilder,
    table: str,
    index_reg: str,
    size: int,
    scratch: str = "edx",
    call: bool = False,
) -> None:
    """Indirect dispatch through ``table[index_reg % size]``.

    ``size`` must be a power of two.  Clobbers ``scratch`` and the index.
    """
    assert size & (size - 1) == 0, "dispatch table size must be a power of two"
    builder.emits(
        "and %s, %d" % (index_reg, size - 1),
        "shl %s, 2" % index_reg,
        "movi %s, %s" % (scratch, table),
        "add %s, %s" % (scratch, index_reg),
        ("calli [%s+0]" if call else "jmpi [%s+0]") % scratch,
    )
