"""Kernel library: reusable generated code patterns.

Each generator emits one complete function into a
:class:`~repro.workloads.builder.ProgramBuilder`.  By convention every
kernel function

* is called with no live registers (drivers keep state in globals),
* accumulates its contribution into the program's ``g_sum`` global,
* follows the standard prologue/epilogue, so the call/return analysis
  sees conventional functions.

The kernels are the behavioural vocabulary the SPEC-like programs are
composed from: streaming, stencils, pointer chasing, dynamic programming,
bit manipulation, block transforms, recursion, run-length compression,
table-driven interpretation and dense arithmetic.
"""

from __future__ import annotations

import random
from typing import Callable, List

from .builder import ProgramBuilder, dispatch_indexed, jump_table


def declare_globals(b: ProgramBuilder) -> None:
    """The globals every generated program shares."""
    b.data_label("g_sum")
    b.data(".word 0")
    b.data_label("g_iter")
    b.data(".word 0")
    b.data_label("g_seed")
    b.data(".word 12345")


def add_to_sum(b: ProgramBuilder, reg: str) -> None:
    """g_sum += reg (clobbers esi)."""
    b.emits(
        "movi esi, g_sum",
        "mov edx, [esi+0]",
        "add edx, %s" % reg,
        "mov [esi+0], edx",
    )


def alloc_array(b: ProgramBuilder, label: str, words: int) -> None:
    """Reserve a zero array of ``words`` 32-bit elements."""
    b.data_label(label)
    b.data(".space %d" % (4 * words))


def init_array_fn(b: ProgramBuilder, fname: str, label: str, words: int,
                  mult: int = 2654435761) -> None:
    """Function filling ``label`` with a cheap hash of the index."""
    b.func(fname)
    top = b.unique("init")
    b.emits("movi esi, %s" % label, "movi ecx, 0")
    b.label(top)
    b.emits(
        "mov eax, ecx",
        "movi edx, %d" % (mult & 0x7FFFFFFF),
        "imul eax, edx",
        "add eax, 17",
        "mov [esi+0], eax",
        "add esi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % words,
        "jl %s" % top,
    )
    b.endfunc()


def gen_stream_sum(b: ProgramBuilder, fname: str, array: str, words: int,
                   stride_words: int = 1) -> None:
    """Streaming reduction: sum every ``stride``-th element of ``array``."""
    b.func(fname)
    top = b.unique("ss")
    b.emits("movi esi, %s" % array, "movi ecx, 0", "movi eax, 0")
    b.label(top)
    b.emits(
        "mov edx, [esi+0]",
        "add eax, edx",
        "add esi, %d" % (4 * stride_words),
        "add ecx, 1",
        "cmp ecx, %d" % (words // stride_words),
        "jl %s" % top,
    )
    add_to_sum(b, "eax")
    b.endfunc()


def gen_stencil(b: ProgramBuilder, fname: str, src: str, dst: str,
                words: int) -> None:
    """1-D 3-point stencil: dst[i] = src[i-1] + 2*src[i] + src[i+1]."""
    b.func(fname)
    top = b.unique("st")
    b.emits(
        "movi esi, %s" % src,
        "movi edi, %s" % dst,
        "add esi, 4",
        "add edi, 4",
        "movi ecx, 1",
        "movi ebx, 0",
    )
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "add eax, eax",
        "add eax, [esi-4]",
        "add eax, [esi+4]",
        "mov [edi+0], eax",
        "add ebx, eax",
        "add esi, 4",
        "add edi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % (words - 1),
        "jl %s" % top,
    )
    add_to_sum(b, "ebx")
    b.endfunc()


def build_linked_list(b: ProgramBuilder, label: str, nodes: int,
                      rng: random.Random) -> None:
    """A shuffled singly linked list: node i = [next_index, value].

    The permutation makes traversal pointer-chase through memory in a
    cache-hostile order, the mcf signature.
    """
    order = list(range(1, nodes))
    rng.shuffle(order)
    order.append(0)  # close the cycle
    nxt = [0] * nodes
    cur = 0
    for node in order:
        nxt[cur] = node
        cur = node
    b.data_label(label)
    for i in range(nodes):
        b.data(".word %d, %d" % (nxt[i] * 8, (i * 2654435761 + 99) & 0x7FFFFFFF))


def gen_pointer_chase(b: ProgramBuilder, fname: str, list_label: str,
                      steps: int) -> None:
    """Follow ``steps`` next-pointers, accumulating node values."""
    b.func(fname)
    top = b.unique("pc")
    b.emits(
        "movi esi, %s" % list_label,
        "movi ebx, 0",  # byte offset of current node
        "movi eax, 0",
        "movi ecx, 0",
    )
    b.label(top)
    b.emits(
        "mov edx, esi",
        "add edx, ebx",
        "mov edi, [edx+4]",  # value
        "add eax, edi",
        "mov ebx, [edx+0]",  # next offset
        "add ecx, 1",
        "cmp ecx, %d" % steps,
        "jl %s" % top,
    )
    add_to_sum(b, "eax")
    b.endfunc()


def gen_dp_pass(b: ProgramBuilder, fname: str, row: str, score: str,
                cols: int) -> None:
    """One dynamic-programming row sweep (hmmer-style inner loop).

    row[j] = max(row[j] + score[j], row[j-1] + 3) with a branch per cell.
    """
    b.func(fname)
    top = b.unique("dp")
    other = b.unique("dpo")
    done = b.unique("dpd")
    b.emits(
        "movi esi, %s" % row,
        "movi edi, %s" % score,
        "add esi, 4",
        "add edi, 4",
        "movi ecx, 1",
        "movi ebx, 0",
    )
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "add eax, [edi+0]",    # candidate 1: row[j] + score[j]
        "mov edx, [esi-4]",
        "add edx, 3",          # candidate 2: row[j-1] + 3
        "cmp eax, edx",
        "jge %s" % other,
    )
    b.emit("mov eax, edx")
    b.label(other)
    b.emits(
        "and eax, 1073741823",  # keep bounded
        "mov [esi+0], eax",
        "add ebx, eax",
        "add esi, 4",
        "add edi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % cols,
        "jl %s" % top,
    )
    b.label(done)
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_bit_kernel(b: ProgramBuilder, fname: str, array: str, words: int,
                   gate_mask: int = 0x55555555) -> None:
    """libquantum-style gate application: toggle/shift bits across an array."""
    b.func(fname)
    top = b.unique("bk")
    b.emits("movi esi, %s" % array, "movi ecx, 0", "movi ebx, 0")
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "xor eax, %d" % gate_mask,
        "mov edx, eax",
        "shl edx, 3",
        "xor eax, edx",
        "mov edx, eax",
        "shr edx, 7",
        "xor eax, edx",
        "mov [esi+0], eax",
        "add ebx, eax",
        "add esi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % words,
        "jl %s" % top,
    )
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_block_transform(b: ProgramBuilder, fname: str, array: str,
                        block_offset_words: int, rounds: int = 1) -> None:
    """h264-style 4x4 integer butterfly, fully unrolled over 16 elements."""
    base = 4 * block_offset_words
    b.func(fname)
    b.emit("movi esi, %s" % array)
    if base:
        b.emit("add esi, %d" % base)
    b.emit("movi ebx, 0")
    for _ in range(rounds):
        for row in range(4):
            o = 16 * row
            b.emits(
                "mov eax, [esi+%d]" % o,
                "mov ecx, [esi+%d]" % (o + 4),
                "mov edx, [esi+%d]" % (o + 8),
                "mov edi, [esi+%d]" % (o + 12),
                "add eax, edi",     # a' = a + d
                "add ecx, edx",     # b' = b + c
                "mov [esi+%d]" % o + ", eax",
                "sub eax, ecx",     # e = a' - b'
                "mov [esi+%d]" % (o + 4) + ", ecx",
                "mov [esi+%d]" % (o + 8) + ", eax",
                "xor edi, edx",
                "mov [esi+%d]" % (o + 12) + ", edi",
                "add ebx, eax",
            )
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_recursive_eval(b: ProgramBuilder, fname: str, depth: int,
                       fanout_label_seed: int = 0) -> None:
    """sjeng-style recursive game-tree walk.

    eval(d): if d == 0 return leaf score; else combine eval(d-1) twice
    with a branchy scoring step.  Argument in eax, result in eax.
    """
    leaf = b.unique("leaf")
    skip = b.unique("skip")
    b.func(fname)
    b.emits(
        "cmp eax, 0",
        "jz %s" % leaf,
        "push eax",           # save depth
        "sub eax, 1",
        "call %s" % fname,    # left child
        "mov ecx, eax",
        "mov eax, [esp+0]",   # reload depth (still saved)
        "sub eax, 1",
        "push ecx",
        "call %s" % fname,    # right child
        "pop ecx",
        "add eax, ecx",
        "pop ecx",            # depth
        "mov edx, eax",
        "and edx, 3",
        "cmp edx, 2",
        "jl %s" % skip,
        "add eax, 7",
    )
    b.label(skip)
    b.endfunc()
    b.label(leaf)
    b.emits(
        "movi eax, %d" % (31 + fanout_label_seed),
        "mov esp, ebp",
        "pop ebp",
        "ret",
    )


def gen_rle_compress(b: ProgramBuilder, fname: str, src: str, dst: str,
                     words: int) -> None:
    """bzip2-style run-length pass over words (quantized to 4 buckets)."""
    b.func(fname)
    top = b.unique("rle")
    flush = b.unique("rlf")
    cont = b.unique("rlc")
    b.emits(
        "movi esi, %s" % src,
        "movi edi, %s" % dst,
        "movi ecx, 0",     # index
        "movi ebx, 0",     # current run symbol
        "movi edx, 0",     # run length
    )
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "and eax, 3",       # quantize to symbol
        "cmp eax, ebx",
        "jnz %s" % flush,
        "add edx, 1",
        "jmp %s" % cont,
    )
    b.label(flush)
    # write (symbol<<16 | runlen), start a new run
    b.emits(
        "push eax",
        "mov eax, ebx",
        "shl eax, 16",
        "add eax, edx",
        "mov [edi+0], eax",
        "add edi, 4",
        "pop eax",
        "mov ebx, eax",
        "movi edx, 1",
    )
    b.label(cont)
    b.emits(
        "add esi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % words,
        "jl %s" % top,
    )
    add_to_sum(b, "edx")
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_arith_block(b: ProgramBuilder, fname: str, unroll: int,
                    variant: int) -> None:
    """namd/soplex-style dense fixed-point arithmetic, unrolled."""
    b.func(fname)
    b.emits(
        "movi eax, %d" % (1000 + variant),
        "movi ecx, %d" % (3 + (variant & 7)),
        "movi ebx, 0",
    )
    for i in range(unroll):
        step = (variant + i) % 4
        if step == 0:
            b.emits("imul eax, ecx", "add eax, %d" % (17 + i))
        elif step == 1:
            b.emits("mov edx, eax", "shr edx, 5", "xor eax, edx")
        elif step == 2:
            b.emits("add ebx, eax", "sub eax, ecx")
        else:
            b.emits("mov edx, eax", "imul edx, eax", "add ebx, edx")
        b.emit("and eax, 1073741823")
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_interpreter(b: ProgramBuilder, fname: str, tag: str,
                    bytecode: List[int], handlers: int,
                    handler_extra: Callable[[ProgramBuilder, int], None] = None
                    ) -> None:
    """A bytecode interpreter (python/gcc/xalan signature).

    Fetch a word of bytecode, dispatch through a jump table (an indirect
    jump per operation), run a small handler, loop.  ``bytecode`` values
    must be < ``handlers`` (a power of two).

    Register convention: ``ecx`` (op counter), ``edi`` (bytecode pointer)
    and ``ebx`` (accumulator) are live across handlers — ``handler_extra``
    code and anything it calls must preserve them (``eax``/``edx``/``esi``
    are free).
    """
    assert handlers & (handlers - 1) == 0
    prog_label = "%s_bc" % tag
    table_label = "%s_tab" % tag
    b.data_label(prog_label)
    b.data(".word " + ", ".join(str(v) for v in bytecode))

    handler_labels = []
    dispatch = b.unique("disp")
    done = b.unique("done")

    b.func(fname)
    b.emits("movi edi, %s" % prog_label, "movi ecx, 0", "movi ebx, 0")
    b.label(dispatch)
    b.emits(
        "cmp ecx, %d" % len(bytecode),
        "jge %s" % done,
        "mov eax, [edi+0]",
        "add edi, 4",
        "add ecx, 1",
    )
    dispatch_indexed(b, table_label, "eax", handlers, scratch="edx")
    for h in range(handlers):
        label = "%s_h%d" % (tag, h)
        handler_labels.append(label)
        b.label(label)
        # Default handler body: mix the accumulator per opcode.
        b.emits(
            "add ebx, %d" % (h * 2 + 1),
            "mov edx, ebx",
            "shl edx, %d" % (1 + h % 5),
            "xor ebx, edx",
        )
        if handler_extra is not None:
            handler_extra(b, h)
        b.emit("jmp %s" % dispatch)
    b.label(done)
    add_to_sum(b, "ebx")
    b.endfunc()
    jump_table(b, table_label, handler_labels)


def gen_memcpy_fn(b: ProgramBuilder, fname: str, src: str, dst: str,
                  words: int) -> None:
    """Word-granular memcpy."""
    b.func(fname)
    top = b.unique("mc")
    b.emits(
        "movi esi, %s" % src,
        "movi edi, %s" % dst,
        "movi ecx, 0",
    )
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "mov [edi+0], eax",
        "add esi, 4",
        "add edi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % words,
        "jl %s" % top,
    )
    add_to_sum(b, "eax")
    b.endfunc()


def gen_hot_loop(b: ProgramBuilder, fname: str, iterations: int,
                 variant: int = 0) -> None:
    """A compact, heavily-reused loop (~30 instructions of hot code).

    Real applications spend most of their time in small kernels and only
    periodically sweep large cold code; this generator provides the hot
    half of that mix.  Its code footprint fits the IL1 even after
    randomization, and its few branch targets are highly DRC-resident.
    """
    b.func(fname)
    top = b.unique("hl")
    skip = b.unique("hs")
    b.emits(
        "movi eax, %d" % (77 + variant),
        "movi ecx, 0",
        "movi ebx, 0",
    )
    b.label(top)
    b.emits(
        "movi edx, %d" % (2654435761 & 0x7FFFFFFF),
        "imul eax, edx",
        "add eax, %d" % (12345 + variant),
        "mov edx, eax",
        "shr edx, 13",
        "xor eax, edx",
        "test eax, 4",
        "jz %s" % skip,
        "add ebx, 3",
    )
    b.label(skip)
    b.emits(
        "add ebx, eax",
        "and ebx, 1073741823",
        "add ecx, 1",
        "cmp ecx, %d" % iterations,
        "jl %s" % top,
    )
    add_to_sum(b, "ebx")
    b.endfunc()


def gen_clones(b: ProgramBuilder, prefix: str, count: int,
               body: Callable[[ProgramBuilder, int], None]) -> List[str]:
    """Generate ``count`` distinct function clones; returns their names.

    Clones are how the gcc/xalan stand-ins get their large code
    footprints: many small, genuinely different functions.
    """
    names = []
    for idx in range(count):
        name = "%s_%d" % (prefix, idx)
        names.append(name)
        b.func(name)
        body(b, idx)
        b.endfunc()
    return names


def call_all(b: ProgramBuilder, names: List[str]) -> None:
    """Direct calls to every name in order (unrolled)."""
    for name in names:
        b.emit("call %s" % name)
