"""Benchmark suite registry.

``SPEC_APPS`` are the eleven SPEC CPU2006 applications the paper
evaluates (§VI-B); ``FIG2_APPS`` are the six applications of the Fig. 2
emulator study.  Each entry knows how to build its image and caches the
result per (name, scale) so that experiments sharing a workload do not
re-assemble it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..binary import BinaryImage
from .programs import (
    bzip2_like,
    gcc_like,
    h264_like,
    hmmer_like,
    lbm_like,
    libquantum_like,
    mcf_like,
    memcpy_like,
    namd_like,
    python_like,
    sjeng_like,
    soplex_like,
    xalan_like,
)


@dataclass(frozen=True)
class Workload:
    """One benchmark program and its descriptive metadata."""

    name: str
    build: Callable[..., BinaryImage]
    description: str


_ALL = [
    Workload(bzip2_like.NAME, bzip2_like.build,
             "run-length compression over a word stream"),
    Workload(gcc_like.NAME, gcc_like.build,
             "hundreds of small pass functions; largest code footprint"),
    Workload(h264_like.NAME, h264_like.build,
             "unrolled 4x4 block transforms with mode dispatch"),
    Workload(hmmer_like.NAME, hmmer_like.build,
             "profile-HMM dynamic programming rows"),
    Workload(lbm_like.NAME, lbm_like.build,
             "stencil streaming over a large grid"),
    Workload(libquantum_like.NAME, libquantum_like.build,
             "quantum-gate bit manipulation passes"),
    Workload(mcf_like.NAME, mcf_like.build,
             "pointer chasing through a shuffled arc network"),
    Workload(namd_like.NAME, namd_like.build,
             "dense unrolled fixed-point force evaluation"),
    Workload(sjeng_like.NAME, sjeng_like.build,
             "recursive game-tree search"),
    Workload(soplex_like.NAME, soplex_like.build,
             "simplex row operations and pricing"),
    Workload(xalan_like.NAME, xalan_like.build,
             "template interpreter; most indirect calls"),
    Workload(memcpy_like.NAME, memcpy_like.build,
             "block copy micro-benchmark (Fig. 2 only)"),
    Workload(python_like.NAME, python_like.build,
             "bytecode interpreter (Fig. 2 only)"),
]

BY_NAME: Dict[str, Workload] = {w.name: w for w in _ALL}

#: The paper's eleven SPEC CPU2006 applications (§VI-B order).
SPEC_APPS: List[str] = [
    "bzip2", "gcc", "h264ref", "hmmer", "lbm", "libquantum",
    "mcf", "namd", "sjeng", "soplex", "xalan",
]

#: The Fig. 2 emulator-slowdown applications.
FIG2_APPS: List[str] = ["bzip2", "h264ref", "hmmer", "memcpy", "python", "xalan"]

#: Table II applications (the paper lists these eleven).
TABLE2_APPS: List[str] = SPEC_APPS

_image_cache: Dict[Tuple[str, float], BinaryImage] = {}


def get_workload(name: str) -> Workload:
    return BY_NAME[name]


def build_image(name: str, scale: float = 1.0) -> BinaryImage:
    """Build (or fetch the cached) image of workload ``name``."""
    key = (name, scale)
    if key not in _image_cache:
        _image_cache[key] = BY_NAME[name].build(scale=scale)
    return _image_cache[key]


def clear_cache() -> None:
    _image_cache.clear()
