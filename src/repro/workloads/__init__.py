"""Synthetic SPEC-CPU2006-like benchmark programs.

The suite substitutes for the paper's SPEC binaries: each program is a
real, self-checking RX86 program generated to match the corresponding
application's signature behaviour (code footprint, branch mix,
indirect-call density, data working set).  See DESIGN.md §2 for the
substitution rationale.
"""

from .builder import ProgramBuilder, dispatch_indexed, jump_table
from .suite import (
    BY_NAME,
    FIG2_APPS,
    SPEC_APPS,
    TABLE2_APPS,
    Workload,
    build_image,
    clear_cache,
    get_workload,
)

__all__ = [
    "ProgramBuilder",
    "jump_table",
    "dispatch_indexed",
    "Workload",
    "SPEC_APPS",
    "FIG2_APPS",
    "TABLE2_APPS",
    "BY_NAME",
    "build_image",
    "get_workload",
    "clear_cache",
]
