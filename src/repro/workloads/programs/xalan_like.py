"""xalancbmk stand-in: template dispatch — the indirect-call champion.

Signature behaviour (Table II): by far the most indirect function calls
of the suite.  Modelled as an XSLT-like engine: a bytecode-driven
template interpreter whose handlers *call through function-pointer
tables* into a large population of template functions.
"""

from __future__ import annotations

import random

from ...binary import BinaryImage
from ..builder import ProgramBuilder, jump_table
from ..kernels import add_to_sum, gen_clones, gen_hot_loop, gen_interpreter
from .common import begin_program, driver, scaled

NAME = "xalan"

_TEMPLATES = 96
_HANDLERS = 32
_BYTECODE_LEN = 192


def _template_body(b: ProgramBuilder, idx: int) -> None:
    top = b.unique("tb")
    skip = b.unique("ts")
    b.emits(
        "movi eax, %d" % (idx * 31 + 5),
        "movi esi, 0",
    )
    b.label(top)
    b.emits(
        "mov edx, eax",
        "shl edx, %d" % (1 + idx % 9),
        "xor eax, edx",
        "cmp eax, %d" % (idx * 64 + 7),
        "jl %s" % skip,
        "add eax, %d" % (idx + 1),
    )
    b.label(skip)
    b.emits(
        "and eax, 524287",
        "add esi, 1",
        "cmp esi, 2",
        "jl %s" % top,
    )
    add_to_sum(b, "eax")


def build(scale: float = 1.0, seed: int = 1998) -> BinaryImage:
    b = begin_program(NAME)
    rng = random.Random(seed)
    templates = scaled(_TEMPLATES, scale, 8)

    names = gen_clones(b, "tmpl", templates, _template_body)
    jump_table(b, "tmpl_table", names)

    # Each interpreter handler makes an indirect call into the template
    # population — this is what gives xalan its indirect-call density.
    def handler_extra(bb: ProgramBuilder, h: int) -> None:
        slot = (h * 7) % templates
        bb.emits(
            "movi edx, tmpl_table",
            "calli [edx+%d]" % (4 * slot),
        )

    bytecode = [rng.randrange(_HANDLERS) for _ in range(_BYTECODE_LEN)]
    gen_interpreter(b, "run_templates", "xsl", bytecode, _HANDLERS,
                    handler_extra=handler_extra)

    # A second processing stage calling templates through computed slots.
    b.func("apply_all")
    for i in range(0, templates, 3):
        b.emits("movi edx, tmpl_table", "calli [edx+%d]" % (4 * i))
    b.endfunc()

    # String/character scanning: the hot half of an XSLT processor.
    gen_hot_loop(b, "scan_loop", iterations=260, variant=5)

    def body():
        b.emits("call run_templates", "call apply_all", "call scan_loop")

    driver(b, iterations=scaled(7, scale), init_calls=[], body=body)
    return b.image()
