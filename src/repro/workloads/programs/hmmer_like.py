"""hmmer stand-in: profile-HMM dynamic programming row sweeps.

Signature behaviour: tight DP inner loops (load/compare/select/store per
cell) with a data-dependent branch per cell and a few loop variants.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import alloc_array, gen_dp_pass, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "hmmer"

_COLS = 768
_ROW_VARIANTS = 6


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    cols = scaled(_COLS, scale, 32)

    alloc_array(b, "dp_row", cols + 2)
    alloc_array(b, "scores", cols + 2)
    init_array_fn(b, "init_row", "dp_row", cols + 2)
    init_array_fn(b, "init_scores", "scores", cols + 2, mult=40503)

    passes = []
    for v in range(_ROW_VARIANTS):
        fname = "dp_pass_%d" % v
        gen_dp_pass(b, fname, "dp_row", "scores", cols)
        passes.append(fname)
    gen_stream_sum(b, "row_sum", "dp_row", cols)

    def body():
        for fname in passes:
            b.emit("call %s" % fname)
        b.emit("call row_sum")

    driver(b, iterations=scaled(2, scale),
           init_calls=["init_row", "init_scores"], body=body)
    return b.image()
