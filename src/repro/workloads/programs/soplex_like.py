"""soplex stand-in: simplex pivoting — row operations + reductions.

Signature behaviour: mixed profile — strided row updates (axpy-like),
column reductions with compare/select (pricing), and a pivot-selection
pass with data-dependent branches.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import add_to_sum, alloc_array, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "soplex"

_COLS = 640
_ROWS = 6


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    cols = scaled(_COLS, scale, 32)

    alloc_array(b, "tableau", cols * _ROWS)
    init_array_fn(b, "init_tab", "tableau", cols * _ROWS)

    # axpy row updates: row[r] += k * row[0], one function per row.
    updates = []
    for r in range(1, _ROWS):
        fname = "row_update_%d" % r
        updates.append(fname)
        b.func(fname)
        top = b.unique("ru")
        b.emits(
            "movi esi, tableau",
            "movi edi, tableau",
            "add edi, %d" % (4 * cols * r),
            "movi ecx, 0",
            "movi ebx, 0",
        )
        b.label(top)
        b.emits(
            "mov eax, [esi+0]",
            "movi edx, %d" % (r + 2),
            "imul eax, edx",
            "add eax, [edi+0]",
            "and eax, 1073741823",
            "mov [edi+0], eax",
            "add ebx, eax",
            "add esi, 4",
            "add edi, 4",
            "add ecx, 1",
            "cmp ecx, %d" % cols,
            "jl %s" % top,
        )
        add_to_sum(b, "ebx")
        b.endfunc()

    # Pricing pass: find the max-value column (compare/select per element).
    b.func("pricing")
    top = b.unique("pr")
    keep = b.unique("pk")
    b.emits("movi esi, tableau", "movi ecx, 0", "movi ebx, 0")
    b.label(top)
    b.emits(
        "mov eax, [esi+0]",
        "cmp eax, ebx",
        "jle %s" % keep,
        "mov ebx, eax",
    )
    b.label(keep)
    b.emits(
        "add esi, 4",
        "add ecx, 1",
        "cmp ecx, %d" % (cols * _ROWS),
        "jl %s" % top,
    )
    add_to_sum(b, "ebx")
    b.endfunc()

    gen_stream_sum(b, "tab_sum", "tableau", cols)

    def body():
        for fname in updates:
            b.emit("call %s" % fname)
        b.emits("call pricing", "call tab_sum")

    driver(b, iterations=scaled(2, scale), init_calls=["init_tab"], body=body)
    return b.image()
