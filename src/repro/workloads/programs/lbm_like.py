"""lbm stand-in: lattice streaming — stencil sweeps over a large grid.

Signature behaviour: a *small* hot code footprint (two stencil loops)
over a *large* data working set that streams through the caches.  In the
paper, lbm is among the worst DRC-miss applications despite its tiny
code: its few translations get little reuse per sweep while its data
traffic fights the shared L2.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import alloc_array, gen_stencil, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "lbm"

_GRID_WORDS = 8192  # 32 KiB per grid: exceeds DL1, pressures L2


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    words = scaled(_GRID_WORDS, scale, 128)

    alloc_array(b, "grid_a", words)
    alloc_array(b, "grid_b", words)
    init_array_fn(b, "init_grid", "grid_a", words)

    gen_stencil(b, "stream_ab", "grid_a", "grid_b", words)
    gen_stencil(b, "stream_ba", "grid_b", "grid_a", words)
    gen_stream_sum(b, "grid_sum", "grid_a", words, stride_words=4)

    def body():
        b.emits("call stream_ab", "call stream_ba", "call grid_sum")

    driver(b, iterations=scaled(1, scale), init_calls=["init_grid"], body=body)
    return b.image()
