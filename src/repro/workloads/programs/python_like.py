"""python stand-in (paper Fig. 2): a bytecode interpreter.

Signature behaviour: the canonical emulation-hostile profile — a fetch/
dispatch/execute loop with an indirect jump per virtual instruction plus
helper calls, exactly the structure of CPython's eval loop.
"""

from __future__ import annotations

import random

from ...binary import BinaryImage
from ..builder import ProgramBuilder
from ..kernels import add_to_sum, alloc_array, gen_interpreter, init_array_fn
from .common import begin_program, driver, scaled

NAME = "python"

_HANDLERS = 32
_BYTECODE_LEN = 1024


def build(scale: float = 1.0, seed: int = 3141) -> BinaryImage:
    b = begin_program(NAME)
    rng = random.Random(seed)
    length = scaled(_BYTECODE_LEN, scale, 64)

    alloc_array(b, "heap_objs", 512)
    init_array_fn(b, "init_heap", "heap_objs", 512)

    # Helper "runtime" functions some opcodes call.
    # NB: called from interpreter handlers, so it must preserve the
    # interpreter's live registers (ecx, edi, ebx) — see gen_interpreter.
    b.func("obj_hash")
    b.emits(
        "movi esi, heap_objs",
        "mov eax, [esi+64]",
        "movi edx, 1000003",
        "imul eax, edx",
        "and eax, 1048575",
    )
    add_to_sum(b, "eax")
    b.endfunc()

    def handler_extra(bb: ProgramBuilder, h: int) -> None:
        if h % 6 == 0:
            bb.emit("call obj_hash")

    bytecode = [rng.randrange(_HANDLERS) for _ in range(length)]
    gen_interpreter(b, "eval_frame", "py", bytecode, _HANDLERS,
                    handler_extra=handler_extra)

    def body():
        b.emit("call eval_frame")

    driver(b, iterations=scaled(4, scale), init_calls=["init_heap"], body=body)
    return b.image()
