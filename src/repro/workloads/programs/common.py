"""Shared scaffolding for the generated benchmark programs."""

from __future__ import annotations

from typing import Callable, List

from ..builder import ProgramBuilder
from ..kernels import declare_globals


def begin_program(name: str) -> ProgramBuilder:
    """New builder with the standard globals declared."""
    b = ProgramBuilder(name)
    declare_globals(b)
    return b


def driver(b: ProgramBuilder, iterations: int, init_calls: List[str],
           body: Callable[[], None]) -> None:
    """Emit ``main``: init, an outer loop around ``body``, checksum, exit.

    The loop counter lives in the ``g_iter`` global because the body is
    free to clobber every register (it is made of function calls).
    """
    b.label("main")
    for fn in init_calls:
        b.emit("call %s" % fn)
    outer = b.unique("outer")
    b.label(outer)
    body()
    b.emits(
        "movi esi, g_iter",
        "mov eax, [esi+0]",
        "add eax, 1",
        "mov [esi+0], eax",
        "cmp eax, %d" % iterations,
        "jl %s" % outer,
        "movi esi, g_sum",
        "mov ebx, [esi+0]",
    )
    b.emit_word("ebx")
    b.exit(0)


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration/size knob, keeping it sane."""
    return max(minimum, int(value * scale))
