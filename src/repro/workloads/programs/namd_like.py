"""namd stand-in: dense fixed-point arithmetic, heavily unrolled.

Signature behaviour: long straight-line multiply/shift/accumulate blocks
(force-field evaluation), many distinct unrolled variants giving a
sizeable hot code footprint with very few data accesses.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import gen_arith_block, gen_hot_loop
from .common import begin_program, driver, scaled

NAME = "namd"

_VARIANTS = 48
_UNROLL = 20


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    variants = scaled(_VARIANTS, scale, 8)

    names = []
    for v in range(variants):
        fname = "force_%d" % v
        gen_arith_block(b, fname, _UNROLL, v)
        names.append(fname)

    # The hot half: namd's nonbonded inner loop dominates execution
    # between sweeps over the per-atom-type force variants.
    gen_hot_loop(b, "pairlist_loop", iterations=700, variant=7)

    def body():
        for fname in names:
            b.emit("call %s" % fname)
        b.emit("call pairlist_loop")

    driver(b, iterations=scaled(4, scale), init_calls=[], body=body)
    return b.image()
