"""memcpy micro-benchmark (used in the paper's Fig. 2 emulator study)."""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import alloc_array, gen_memcpy_fn, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "memcpy"

_WORDS = 4096


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    words = scaled(_WORDS, scale, 64)

    alloc_array(b, "src", words)
    alloc_array(b, "dst", words)
    init_array_fn(b, "init_src", "src", words)

    gen_memcpy_fn(b, "do_memcpy", "src", "dst", words)
    gen_memcpy_fn(b, "copy_back", "dst", "src", words)
    gen_stream_sum(b, "check", "dst", words, stride_words=8)

    def body():
        b.emits("call do_memcpy", "call copy_back", "call check")

    driver(b, iterations=scaled(2, scale), init_calls=["init_src"], body=body)
    return b.image()
