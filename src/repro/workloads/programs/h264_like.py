"""h264ref stand-in: unrolled 4x4 integer block transforms over a frame.

Signature behaviour: heavily unrolled straight-line arithmetic over small
blocks, a large-ish hot footprint from many distinct block variants, and
mode dispatch through a small function-pointer table (indirect calls).
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..builder import jump_table
from ..kernels import alloc_array, gen_block_transform, gen_hot_loop, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "h264ref"

_BLOCKS = 48
_FRAME_WORDS = 16 * _BLOCKS
_MODES = 8


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    blocks = scaled(_BLOCKS, scale, 4)
    frame_words = 16 * blocks

    alloc_array(b, "frame", frame_words)
    init_array_fn(b, "init_frame", "frame", frame_words)

    transforms = []
    for blk in range(blocks):
        fname = "xform_%d" % blk
        gen_block_transform(b, fname, "frame", 16 * blk, rounds=1)
        transforms.append(fname)

    # Mode-decision dispatch: pick a transform via a function table.
    table = jump_table(b, "mode_table", transforms[:_MODES])
    b.func("mode_decide")
    for mode in range(_MODES):
        b.emits("movi edx, mode_table", "calli [edx+%d]" % (4 * mode))
    b.endfunc()

    gen_stream_sum(b, "frame_sum", "frame", frame_words)

    # Interpolation/SAD inner loop: the hot half of the encoder.
    gen_hot_loop(b, "sad_loop", iterations=500, variant=3)

    def body():
        for fname in transforms:
            b.emit("call %s" % fname)
        b.emits("call mode_decide", "call sad_loop", "call frame_sum")

    driver(b, iterations=scaled(4, scale), init_calls=["init_frame"], body=body)
    return b.image()
