"""libquantum stand-in: quantum-gate bit manipulation over a register file.

Signature behaviour: streaming XOR/shift transforms (gate applications)
over a quantum-state array, one pass per gate in the circuit.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import alloc_array, gen_bit_kernel, gen_stream_sum, init_array_fn
from .common import begin_program, driver, scaled

NAME = "libquantum"

_STATE_WORDS = 1536
_GATES = 6


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    words = scaled(_STATE_WORDS, scale, 64)

    alloc_array(b, "qstate", words)
    init_array_fn(b, "init_state", "qstate", words)

    gates = []
    masks = [0x55555555, 0x33333333, 0x0F0F0F0F, 0x00FF00FF, 0xAAAAAAAA,
             0x5A5A5A5A]
    for g in range(_GATES):
        fname = "gate_%d" % g
        gen_bit_kernel(b, fname, "qstate", words, gate_mask=masks[g % len(masks)])
        gates.append(fname)
    gen_stream_sum(b, "state_sum", "qstate", words, stride_words=2)

    def body():
        for fname in gates:
            b.emit("call %s" % fname)
        b.emit("call state_sum")

    driver(b, iterations=scaled(1, scale), init_calls=["init_state"], body=body)
    return b.image()
