"""gcc stand-in: very large code footprint, hundreds of distinct functions.

Signature behaviour: the biggest direct-transfer count of the suite
(Table II: gcc has ~150k direct transfers, far above the rest), a hot
instruction window that pressures the IL1 once randomized, phase rotation
(compiler passes change across "functions being compiled"), and a
table-driven pass dispatch with indirect calls.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..builder import ProgramBuilder, jump_table
from ..kernels import add_to_sum, alloc_array, gen_clones, gen_hot_loop, init_array_fn
from .common import begin_program, driver, scaled

NAME = "gcc"

_CLONES = 144
_WINDOWS = 8  # pass phases; each iteration runs one phase's clones
_INDIRECT_PASSES = 24


def _clone_body(b: ProgramBuilder, idx: int) -> None:
    """A small, genuinely distinct 'compiler pass helper' (~30 insts)."""
    skip = b.unique("cb")
    again = b.unique("ca")
    b.emits(
        "movi eax, %d" % (idx * 7 + 3),
        "movi ecx, %d" % ((idx ^ 0x5A) + 2),
        "movi ebx, 0",
    )
    b.label(again)
    b.emits(
        "imul eax, ecx",
        "add eax, %d" % (idx + 11),
        "mov edx, eax",
        "shr edx, %d" % (1 + idx % 11),
        "xor eax, edx",
        "cmp eax, %d" % (idx * 1000 + 5),
        "jl %s" % skip,
        "sub eax, %d" % (idx * 3 + 1),
    )
    b.label(skip)
    b.emits(
        "and eax, 262143",
        "add ebx, eax",
        "add ecx, 1",
        "cmp ecx, %d" % ((idx ^ 0x5A) + 4),
        "jl %s" % again,
    )
    add_to_sum(b, "ebx")


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    clones = scaled(_CLONES, scale, _WINDOWS * 4)
    per_window = clones // _WINDOWS

    alloc_array(b, "symtab", 256)
    init_array_fn(b, "init_symtab", "symtab", 256)

    names = gen_clones(b, "pass", clones, _clone_body)

    # Indirect pass dispatch: a pass-manager table of function pointers.
    jump_table(b, "pass_table", names[:_INDIRECT_PASSES])
    b.func("run_indirect_passes")
    for i in range(_INDIRECT_PASSES):
        b.emits(
            "movi edx, pass_table",
            "calli [edx+%d]" % (4 * i),
        )
    b.endfunc()

    # One "phase" function per window of clones; the driver rotates
    # through phases across iterations (pass scheduling).
    phase_names = []
    for w in range(_WINDOWS):
        pname = "phase_%d" % w
        phase_names.append(pname)
        b.func(pname)
        for name in names[w * per_window : (w + 1) * per_window]:
            for _ in range(4):
                b.emit("call %s" % name)
        b.endfunc()

    b.func("run_phase")
    b.emits("movi esi, g_iter", "mov eax, [esi+0]",
            "and eax, %d" % (_WINDOWS - 1))
    done = b.unique("rpd")
    for idx, pname in enumerate(phase_names):
        nxt = b.unique("rp")
        b.emits("cmp eax, %d" % idx, "jnz %s" % nxt,
                "call %s" % pname, "jmp %s" % done)
        b.label(nxt)
    b.label(done)
    b.endfunc()

    # The hot half of gcc's profile: a small, heavily reused kernel
    # (e.g. the bitmap/ggc inner loops) between cold pass sweeps.
    gen_hot_loop(b, "hot_kernel", iterations=220, variant=1)

    def body():
        b.emits("call run_phase", "call hot_kernel", "call run_indirect_passes")

    driver(b, iterations=scaled(12, scale), init_calls=["init_symtab"],
           body=body)
    return b.image()
