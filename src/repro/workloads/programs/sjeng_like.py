"""sjeng stand-in: recursive game-tree search with branchy evaluation.

Signature behaviour: deep recursion (call/ret pressure on the RAS and on
return-address randomization), data-dependent branches in the evaluator,
and several distinct evaluation functions.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import add_to_sum, gen_recursive_eval
from .common import begin_program, driver, scaled

NAME = "sjeng"

_SEARCH_DEPTH = 9  # 2^(d+1)-1 calls per search
_EVALS = 12


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    depth = max(3, _SEARCH_DEPTH + (0 if scale >= 1.0 else -2))

    evals = []
    for v in range(_EVALS):
        fname = "search_%d" % v
        gen_recursive_eval(b, fname, depth, fanout_label_seed=v)
        evals.append(fname)

    # Driver wrapper: run one search variant per outer iteration, rotating.
    b.func("run_search")
    b.emits("movi esi, g_iter", "mov eax, [esi+0]", "and eax, %d" % (len(evals) - 1
             if (len(evals) & (len(evals) - 1)) == 0 else 7))
    # dispatch among the first 8 variants with a chain of compares
    done = b.unique("rsd")
    for idx, fname in enumerate(evals[:8]):
        nxt = b.unique("rs")
        b.emits(
            "cmp eax, %d" % idx,
            "jnz %s" % nxt,
            "movi eax, %d" % depth,
            "call %s" % fname,
            "jmp %s" % done,
        )
        b.label(nxt)
    b.emits("movi eax, %d" % depth, "call %s" % evals[0])
    b.label(done)
    add_to_sum(b, "eax")
    b.endfunc()

    def body():
        b.emit("call run_search")

    driver(b, iterations=scaled(5, scale), init_calls=[], body=body)
    return b.image()
