"""mcf stand-in: pointer chasing over a shuffled network of nodes.

Signature behaviour: the classic memory-latency-bound profile — long
dependent chains of loads through a randomly permuted linked structure,
tiny hot code, poor spatial locality on the data side.
"""

from __future__ import annotations

import random

from ...binary import BinaryImage
from ..kernels import (
    add_to_sum,
    build_linked_list,
    gen_pointer_chase,
)
from .common import begin_program, driver, scaled

NAME = "mcf"

_NODES = 3072
_CHASE_STEPS = 3072


def build(scale: float = 1.0, seed: int = 20061004) -> BinaryImage:
    b = begin_program(NAME)
    rng = random.Random(seed)
    nodes = scaled(_NODES, scale, 64)
    steps = scaled(_CHASE_STEPS, scale, 64)

    build_linked_list(b, "arcs", nodes, rng)
    gen_pointer_chase(b, "chase_arcs", "arcs", steps)

    # A small cost-update pass: rewrite node values along a strided walk.
    b.func("update_costs")
    top = b.unique("uc")
    b.emits("movi esi, arcs", "movi ecx, 0", "movi ebx, 0")
    b.label(top)
    b.emits(
        "mov eax, [esi+4]",
        "add eax, 13",
        "and eax, 1073741823",
        "mov [esi+4], eax",
        "add ebx, eax",
        "add esi, 64",          # stride across node records
        "add ecx, 1",
        "cmp ecx, %d" % (nodes // 8),
        "jl %s" % top,
    )
    add_to_sum(b, "ebx")
    b.endfunc()

    # Arc-type processing clones: mcf's solver has a non-trivial hot code
    # footprint (price updates, basis maintenance) beyond the pure chase.
    arc_fns = []
    for v in range(24):
        fname = "arc_kind_%d" % v
        arc_fns.append(fname)
        b.func(fname)
        skip = b.unique("ak")
        b.emits(
            "movi esi, arcs",
            "mov eax, [esi+%d]" % (8 * (v * 37 % max(1, nodes)) + 4),
            "movi edx, %d" % (v + 3),
            "imul eax, edx",
            "mov ecx, eax",
            "shr ecx, %d" % (2 + v % 7),
            "xor eax, ecx",
            "cmp eax, %d" % (v * 4096),
            "jl %s" % skip,
            "sub eax, %d" % (v + 1),
        )
        b.label(skip)
        b.emit("and eax, 1048575")
        add_to_sum(b, "eax")
        b.endfunc()

    def body():
        b.emits("call chase_arcs", "call update_costs")
        for fname in arc_fns:
            b.emit("call %s" % fname)

    driver(b, iterations=scaled(4, scale), init_calls=[], body=body)
    return b.image()
