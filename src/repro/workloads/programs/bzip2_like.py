"""bzip2 stand-in: run-length compression passes over a word buffer.

Signature behaviour: byte/word-stream processing with data-dependent
branches (run detection), a moderate code footprint built from several
distinct compression-pass variants, and streaming reads.
"""

from __future__ import annotations

from ...binary import BinaryImage
from ..kernels import (
    alloc_array,
    gen_bit_kernel,
    gen_rle_compress,
    gen_stream_sum,
    init_array_fn,
)
from .common import begin_program, driver, scaled

NAME = "bzip2"

#: words in the input buffer.
_BUF_WORDS = 512
#: distinct compression-pass variants (code footprint).
_VARIANTS = 10


def build(scale: float = 1.0) -> BinaryImage:
    b = begin_program(NAME)
    words = scaled(_BUF_WORDS, scale, 64)

    alloc_array(b, "src", words)
    alloc_array(b, "dst", words + 4)
    init_array_fn(b, "init_src", "src", words)

    passes = []
    for v in range(_VARIANTS):
        fname = "rle_pass_%d" % v
        if v % 3 == 2:
            gen_bit_kernel(b, fname, "src", words, gate_mask=0x33333333 >> (v % 4))
        else:
            gen_rle_compress(b, fname, "src", "dst", words)
        passes.append(fname)
    gen_stream_sum(b, "final_sum", "dst", words // 2)

    def body():
        for fname in passes:
            b.emit("call %s" % fname)
        b.emit("call final_sum")

    driver(b, iterations=scaled(2, scale), init_calls=["init_src"], body=body)
    return b.image()
