"""The generated benchmark programs (one module per application)."""

from . import (
    bzip2_like,
    gcc_like,
    h264_like,
    hmmer_like,
    lbm_like,
    libquantum_like,
    mcf_like,
    memcpy_like,
    namd_like,
    python_like,
    sjeng_like,
    soplex_like,
    xalan_like,
)

__all__ = [
    "bzip2_like",
    "gcc_like",
    "h264_like",
    "hmmer_like",
    "lbm_like",
    "libquantum_like",
    "mcf_like",
    "memcpy_like",
    "namd_like",
    "python_like",
    "sjeng_like",
    "soplex_like",
    "xalan_like",
]
