"""Simulator-wide observability layer.

Three independent instruments, designed to be threaded through every
subsystem without coupling them to each other:

* :mod:`repro.obs.metrics` — an always-on metrics registry (counters,
  gauges, fixed-bucket histograms) with snapshot/reset semantics.  The
  hot simulation loops keep their ``__slots__`` stat dataclasses; the
  registry is the cross-run aggregation point they sync into.
* :mod:`repro.obs.events` — a structured event log emitting typed JSONL
  records (``run_start``, ``phase``, ``checkpoint``, ``drc_evict``,
  ``cache_fill_burst``, ``run_end``) through a pluggable sink (null /
  in-memory / file), replacing ad-hoc prints.
* :mod:`repro.obs.profile` — context-manager phase timers attributing
  host wall-time to simulator phases and harness stages.

``repro.tools.stats`` consumes the JSONL output and renders metric
tables, per-phase host-time breakdowns, and A-vs-B mode comparisons.
"""

from __future__ import annotations

import sys

from .events import (
    EventLog,
    FileSink,
    MemorySink,
    NullSink,
    make_sink,
    open_log,
    read_events,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .profile import PhaseProfiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "EventLog",
    "NullSink",
    "MemorySink",
    "FileSink",
    "make_sink",
    "open_log",
    "read_events",
    "PhaseProfiler",
    "status",
]


def status(message: str) -> None:
    """Print a diagnostic/progress line to stderr.

    Every CLI routes its non-product chatter ("wrote X", timings,
    heartbeats) through here so machine-readable stdout (``--json``,
    report tables) is never polluted.
    """
    print(message, file=sys.stderr, flush=True)
