"""Simulator-wide observability layer.

Five independent instruments, designed to be threaded through every
subsystem without coupling them to each other:

* :mod:`repro.obs.metrics` — an always-on metrics registry (counters,
  gauges, fixed-bucket histograms) with snapshot/reset semantics.  The
  hot simulation loops keep their ``__slots__`` stat dataclasses; the
  registry is the cross-run aggregation point they sync into.
* :mod:`repro.obs.events` — a structured event log emitting typed JSONL
  records (``run_start``, ``phase``, ``checkpoint``, ``drc_evict``,
  ``spec_dispatch``, ``spec_done``, ``run_end``, ...) through a
  pluggable sink (null / in-memory / file), replacing ad-hoc prints;
  :func:`~repro.obs.events.follow_events` tails a growing log live.
* :mod:`repro.obs.profile` — context-manager phase timers attributing
  host wall-time to simulator phases and harness stages.
* :mod:`repro.obs.trace` — hierarchical span tracing (``sweep → spec →
  attempt → phase``) with deterministic content-derived span ids,
  pickle-safe cross-process capture, and Chrome ``trace_event`` export.
* :mod:`repro.obs.store` — a SQLite run store indexing every completed
  run (spec fingerprint, config digest, key stats, span rollups) plus
  fuzz findings, with backfill from cache directories and JSONL logs.

``repro.tools.stats`` consumes both surfaces: JSONL logs for one-sweep
analysis, the run store for cross-history queries (``best`` /
``compare`` / ``history`` / raw SQL).
"""

from __future__ import annotations

import sys

from .events import (
    EventLog,
    FileSink,
    MemorySink,
    NullSink,
    follow_events,
    make_sink,
    open_log,
    read_events,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .profile import PhaseProfiler
from .store import RunStore
from .trace import NULL_TRACER, Span, TickClock, Tracer, rollup_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "EventLog",
    "NullSink",
    "MemorySink",
    "FileSink",
    "make_sink",
    "open_log",
    "read_events",
    "follow_events",
    "PhaseProfiler",
    "Span",
    "Tracer",
    "TickClock",
    "NULL_TRACER",
    "rollup_spans",
    "RunStore",
    "status",
]


def status(message: str) -> None:
    """Print a diagnostic/progress line to stderr.

    Every CLI routes its non-product chatter ("wrote X", timings,
    heartbeats) through here so machine-readable stdout (``--json``,
    report tables) is never polluted.
    """
    print(message, file=sys.stderr, flush=True)
