"""Structured event log: typed JSONL records through a pluggable sink.

Producers call ``log.emit(kind, **fields)``; the record is a flat dict
``{"kind": ..., "t": <seconds since log creation>, **fields}``.  Known
kinds (consumed by ``repro.tools.stats``):

``run_start``        one simulation/emulation begins (workload, mode)
``checkpoint``       periodic progress sample (instantaneous IPC, miss
                     rates since the previous checkpoint)
``phase``            one profiled host-time phase completed (seconds)
``drc_evict``        DRC evictions since the last checkpoint (aggregated
                     so a hot run cannot flood the log)
``cache_fill_burst`` a streak of consecutive IL1 fetch misses ended —
                     the signature of naive ILR's destroyed locality
``run_end``          the run finished (totals)
``spec_dispatch``    the sweep engine started (or scheduled) one
                     attempt of a spec — the dashboard's "running" edge
``spec_done``        a spec completed (result committed; ``cached``
                     marks cache hits) — the dashboard's "done" edge
``run_retry``        a sweep attempt failed and was rescheduled
                     (attempt number, failure kind, error)
``run_failed``       a spec exhausted its attempts and was quarantined
``pool_rebuild``     a broken/wedged worker pool was replaced
``status``           free-form harness diagnostics

Sinks: :class:`NullSink` (drop, ``enabled == False`` so producers can
skip building expensive fields), :class:`MemorySink` (list of dicts),
:class:`FileSink` (JSONL file).  ``read_events`` loads JSONL back.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "EventLog",
    "NullSink",
    "MemorySink",
    "FileSink",
    "make_sink",
    "open_log",
    "read_events",
    "follow_events",
    "EVENT_KINDS",
]

#: The typed record vocabulary (free-form kinds are allowed but these
#: are what the stats CLI knows how to render).
EVENT_KINDS = (
    "run_start",
    "checkpoint",
    "phase",
    "drc_evict",
    "cache_fill_burst",
    "run_end",
    "spec_dispatch",
    "spec_done",
    "run_retry",
    "run_failed",
    "pool_rebuild",
    "status",
    # repro.qa differential fuzzing (tools/fuzz CLI):
    "fuzz_program",
    "fuzz_finding",
    "fuzz_end",
    # repro.security rotation-service races (tools/race CLI):
    "race_start",
    "rotation",
    "race_point",
    "race_end",
)


class NullSink:
    """Drops everything; the always-on default."""

    enabled = False

    def write(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers records in a list (tests, in-process consumers)."""

    enabled = True

    def __init__(self):
        self.records: List[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class FileSink:
    """Appends one JSON object per line to ``path``.

    Single-writer by design: only the parent process may hold a
    FileSink.  Sweep workers buffer into a :class:`MemorySink` and the
    parent merges via :meth:`EventLog.replay`, so parallel runs cannot
    interleave partial lines into the JSONL stream.
    """

    enabled = True

    def __init__(self, path: str, append: bool = False):
        self.path = path
        self._fh = open(path, "a" if append else "w")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


def make_sink(spec: Optional[str]):
    """Sink from a CLI spec: None/"null" -> null, "memory" -> memory,
    anything else -> a JSONL file at that path."""
    if spec is None or spec == "null":
        return NullSink()
    if spec == "memory":
        return MemorySink()
    return FileSink(spec)


class EventLog:
    """Typed event emitter bound to one sink.

    ``log.enabled`` mirrors the sink: producers guard *expensive field
    construction* behind it (emit itself is always safe to call).
    Timestamps are seconds relative to log creation, so diffs between
    two captured logs line up regardless of wall-clock epoch.
    """

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else NullSink()
        self.enabled = self.sink.enabled
        self._t0 = time.perf_counter()
        self._seq = 0

    def emit(self, kind: str, **fields) -> None:
        if not self.enabled:
            return
        record: Dict[str, object] = {
            "kind": kind,
            "seq": self._seq,
            "t": round(time.perf_counter() - self._t0, 6),
        }
        record.update(fields)
        self._seq += 1
        self.sink.write(record)

    # Convenience wrappers: keep producer call sites short and the
    # field names consistent across subsystems.

    def run_start(self, workload: str, mode: str, **fields) -> None:
        self.emit("run_start", workload=workload, mode=mode, **fields)

    def run_end(self, workload: str, mode: str, **fields) -> None:
        self.emit("run_end", workload=workload, mode=mode, **fields)

    def phase(self, phase: str, seconds: float, **fields) -> None:
        self.emit("phase", phase=phase, seconds=round(seconds, 6), **fields)

    def status(self, message: str, **fields) -> None:
        self.emit("status", message=message, **fields)

    def replay(self, records: Iterable[dict], **extra_fields) -> None:
        """Merge records captured in another process into this log.

        File sinks are **not** multi-process safe: concurrent workers
        appending to one JSONL file interleave partial lines and corrupt
        the stream.  The sweep engine therefore gives each worker an
        in-memory :class:`MemorySink` and the parent replays the buffered
        records here, serializing all file writes in one process.

        Replayed records keep their original fields (including the
        worker-relative ``t``) but are re-sequenced into this log's
        ``seq`` ordering so the merged stream stays monotonic.
        ``extra_fields`` are stamped onto every replayed record
        (e.g. a worker id) without overriding existing keys.
        """
        if not self.enabled:
            return
        for record in records:
            merged = dict(record)
            for key, value in extra_fields.items():
                merged.setdefault(key, value)
            merged["seq"] = self._seq
            self._seq += 1
            self.sink.write(merged)

    def close(self) -> None:
        self.sink.close()

    # Context-manager sugar so CLIs can ``with open_log(path) as log:``.

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_log(spec: Optional[str]) -> EventLog:
    """EventLog from a CLI ``--events`` spec (see :func:`make_sink`)."""
    return EventLog(make_sink(spec))


def _wanted_kinds(kinds: Optional[Iterable[str]],
                  kind: Optional[str]) -> Optional[set]:
    """Normalize the two kind-filter spellings into one set (or None)."""
    wanted = set(kinds) if kinds is not None else None
    if kind is not None:
        wanted = (wanted or set()) | {kind}
    return wanted


def _parse_line(line: str) -> Optional[dict]:
    """One JSONL line -> record, or None for blank/corrupt lines.

    Blank lines and undecodable (truncated) lines are *skipped*, never
    raised: a process killed mid-write — the exact scenario the
    fault-tolerant sweep engine recovers from — leaves a partial final
    line, and the captured events before it must stay analyzable.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None  # truncated/corrupt line from a killed writer
    return record if isinstance(record, dict) else None


def read_events(path: str,
                kinds: Optional[Iterable[str]] = None,
                since: Optional[int] = None,
                kind: Optional[str] = None) -> List[dict]:
    """Load a JSONL event file, optionally filtered.

    ``kinds`` keeps only those record kinds (``kind`` is single-kind
    sugar for the common case); ``since`` keeps records whose ``seq``
    is strictly greater — pass the last ``seq`` already consumed to
    poll a growing log incrementally without re-reading history.
    """
    wanted = _wanted_kinds(kinds, kind)
    records: List[dict] = []
    with open(path) as fh:
        for line in fh:
            record = _parse_line(line)
            if record is None:
                continue
            if wanted is not None and record.get("kind") not in wanted:
                continue
            if since is not None and record.get("seq", 0) <= since:
                continue
            records.append(record)
    return records


def follow_events(path: str,
                  kinds: Optional[Iterable[str]] = None,
                  kind: Optional[str] = None,
                  poll_interval: float = 0.2,
                  stop=None,
                  from_start: bool = True) -> Iterator[dict]:
    """``tail -f`` a JSONL event log: yield records as they are written.

    The live half of :func:`read_events`, built for the sweep dashboard
    and ``stats tail``: a partially written final line (the writer is
    mid-``write``) is *buffered*, not dropped — it is yielded once its
    newline arrives, so a follower never loses or mangles a record that
    a later :func:`read_events` would have seen.

    ``stop`` is an optional zero-argument callable polled whenever the
    file is exhausted; returning True ends the generator (otherwise it
    follows forever, like ``tail -f``).  ``from_start=False`` seeks to
    the current end first and yields only new records.
    """
    wanted = _wanted_kinds(kinds, kind)
    buffer = ""
    with open(path) as fh:
        if not from_start:
            fh.seek(0, os.SEEK_END)
        while True:
            chunk = fh.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    record = _parse_line(line)
                    if record is None:
                        continue
                    if wanted is not None and record.get("kind") not in wanted:
                        continue
                    yield record
            else:
                if stop is not None and stop():
                    return
                time.sleep(poll_interval)
