"""Always-on metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (ISSUE 1):

* cheap enough to be always-on — instruments are plain ``__slots__``
  objects and an increment is one attribute add, no locks, no labels
  hashing on the hot path (callers hold the instrument, not its name);
* snapshot/reset on demand — the harness snapshots between runs so one
  registry can serve a whole experiment suite;
* a *disabled* registry hands out shared null instruments whose methods
  are no-ops, so instrumented code needs no ``if enabled`` guards.

The simulator's per-run ``__slots__`` stat classes (``CacheStats``,
``DRCStats``, ...) remain the per-component source of truth; the
registry is the cross-run aggregation layer they sync into (see
``CycleCPU._sync_metrics``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (powers of four: latencies and
#: burst lengths in the simulator span several orders of magnitude).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram (cumulative-style bounds, +inf implicit).

    ``bounds`` are upper edges: an observation lands in the first bucket
    whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for idx, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[idx] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def snapshot(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "mean": self.mean,
        }


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    total = 0.0
    count = 0
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def snapshot(self):
        return None


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instrument store with create-or-get semantics.

    ``registry.counter("sim.instructions")`` returns the same
    :class:`Counter` on every call; hot loops fetch the instrument once
    and increment the bound object.  ``enabled=False`` swaps every
    accessor for a shared null instrument (measured ≈ no-op, see
    ``benchmarks/bench_obs_overhead.py``).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    # -- bulk operations ---------------------------------------------------

    def counters(self, prefix: Optional[str] = None) -> Dict[str, int]:
        """Current counter values, optionally filtered by name prefix.

        The harness uses this to summarize one subsystem's counters
        (e.g. every ``sweep.*`` fault-handling count) without walking a
        full :meth:`snapshot`.
        """
        return {
            name: counter.value
            for name, counter in self._counters.items()
            if prefix is None or name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, dict]:
        """One JSON-serializable dict of every instrument's state."""
        return {
            "counters": {n: c.snapshot() for n, c in self._counters.items()},
            "gauges": {n: g.snapshot() for n, g in self._gauges.items()},
            "histograms": {
                n: h.snapshot() for n, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Zero every instrument (instrument identity is preserved, so
        hot loops holding a bound instrument keep working)."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation primitive: sweep workers simulate
        in their own process (syncing into *their* global registry),
        ship a snapshot back, and the parent merges so process-global
        totals match a sequential run.  Counters and histogram buckets
        add; gauges are last-write-wins, matching their single-process
        semantics.
        """
        if not self.enabled or not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, snap in snapshot.get("histograms", {}).items():
            bounds = tuple(sorted(snap["bounds"]))
            hist = self.histogram(name, bounds=bounds)
            if hist.bounds != bounds and hist.count == 0:
                # Pre-existing but *empty* instrument with different
                # buckets (e.g. it was created with DEFAULT_BUCKETS
                # before any snapshot arrived): adopt the snapshot's
                # bounds exactly so the merge round-trips bucket-for-
                # bucket.  Replaying through the mean here used to
                # silently misbin every observation.
                hist.bounds = bounds
                hist.counts = [0] * (len(bounds) + 1)
            if hist.bounds != bounds:
                # Populated instrument with genuinely different buckets:
                # conservatively rebin each incoming bucket at its upper
                # edge (overflow stays overflow).  Bucket placement is
                # approximate by necessity; total/count stay exact.
                for idx, count in enumerate(snap["counts"]):
                    if not count:
                        continue
                    if idx >= len(bounds):
                        target = len(hist.bounds)  # overflow -> overflow
                    else:
                        edge = bounds[idx]
                        for target, bound in enumerate(hist.bounds):
                            if edge <= bound:
                                break
                        else:
                            target = len(hist.bounds)
                    hist.counts[target] += count
                hist.total += snap["total"]
                hist.count += snap["count"]
                continue
            for idx, count in enumerate(snap["counts"]):
                hist.counts[idx] += count
            hist.total += snap["total"]
            hist.count += snap["count"]

    def clear(self) -> None:
        """Drop all instruments entirely."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Process-global default registry; the simulator syncs aggregate run
#: statistics here so long-lived harness processes can watch totals.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY
