"""Phase profiler: attribute host wall-time to named simulator phases.

A :class:`PhaseProfiler` accumulates ``perf_counter`` deltas per phase
name via context managers::

    prof = PhaseProfiler()
    with prof.phase("randomize"):
        ...
    with prof.phase("simulate", workload="gcc", mode="vcfr"):
        ...
    print(prof.format_table())

Phases nest; time is *inclusive* (a child's time is also inside its
parent's), matching how one reads a flame graph top-down.  When an
:class:`~repro.obs.events.EventLog` is attached, each completed phase
also emits a ``phase`` record, so offline analysis
(``repro.tools.stats``) sees the same attribution as the live process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

__all__ = ["PhaseProfiler"]


class PhaseStat:
    """Accumulated time for one phase name."""

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


class PhaseProfiler:
    """Named wall-time accumulator with optional event-log mirroring."""

    def __init__(self, events=None):
        self.stats: Dict[str, PhaseStat] = {}
        self.events = events

    @contextmanager
    def phase(self, name: str, **fields):
        """Time a block under ``name``; extra ``fields`` only annotate
        the emitted event (the accumulator keys on the name alone, so
        per-workload detail lives in the log, not the table)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = PhaseStat()
            stat.add(elapsed)
            if self.events is not None:
                self.events.phase(name, elapsed, **fields)

    def add(self, name: str, seconds: float, calls: int = 1,
            **fields) -> None:
        """Fold externally-measured time into phase ``name``.

        Hot loops (e.g. the profiled pipeline loop in
        :mod:`repro.arch.cpu`) time sections with raw ``perf_counter``
        arithmetic and deposit totals here once per run, instead of
        entering a context manager per instruction.
        """
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = PhaseStat()
        stat.seconds += seconds
        stat.calls += calls
        if self.events is not None:
            self.events.phase(name, seconds, **fields)

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Unlike :meth:`add`, nothing is re-emitted to the event log: the
        sweep engine replays the worker's own buffered ``phase`` records
        separately, so emitting here would double-count them offline.
        """
        for name, stat in snapshot.items():
            mine = self.stats.get(name)
            if mine is None:
                mine = self.stats[name] = PhaseStat()
            mine.seconds += stat["seconds"]
            mine.calls += stat["calls"]

    # -- inspection --------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.stats.values())

    def snapshot(self) -> Dict[str, dict]:
        return {
            name: {"seconds": round(stat.seconds, 6), "calls": stat.calls}
            for name, stat in self.stats.items()
        }

    def reset(self) -> None:
        self.stats.clear()

    def format_table(self, title: Optional[str] = None) -> str:
        """Aligned per-phase breakdown, hottest phase first."""
        total = self.total_seconds
        lines = []
        if title:
            lines.append(title)
        lines.append("%-18s %10s %7s %7s" % ("phase", "seconds", "calls", "%"))
        for name, stat in sorted(
            self.stats.items(), key=lambda kv: -kv[1].seconds
        ):
            share = 100.0 * stat.seconds / total if total else 0.0
            lines.append(
                "%-18s %10.4f %7d %6.1f%%"
                % (name, stat.seconds, stat.calls, share)
            )
        lines.append("%-18s %10.4f" % ("total", total))
        return "\n".join(lines)
