"""Hierarchical span tracing: causal wall-time trees for sweeps.

ISSUE 1's instruments answer "how much" (counters) and "where did host
time go in aggregate" (the phase profiler); they cannot answer *why was
this spec slow* — which attempt, which phase, behind which retry wait.
A :class:`Tracer` records **spans**: named, nested intervals forming a
tree (``sweep → spec → attempt → phase``, plus dedicated spans for
``apply_rerandomization`` epochs and retry/backoff waits).

Determinism is the design center (and what makes traces testable):

* **Span ids are content-derived, never random.**  A span's id is a
  SHA-256 prefix of either an explicit ``span_key`` (the sweep engine
  keys spec spans by the spec's own hash) or of
  ``parent_id/name#occurrence``.  The same RunSpec therefore produces
  the byte-identical span tree on every run, and a worker process
  derives the *same* ids the sequential path would — so a pooled
  sweep's adopted spans line up exactly with an inline sweep's.
  A corollary: ``span_id_for_key`` lets a producer reference a span's
  id *before* the span exists (the pooled dispatcher parents
  retry-wait spans under a spec span that is only materialized at
  merge time).
* **The clock is injectable.**  The default is ``time.perf_counter``;
  tests pass a :class:`TickClock` so start/end times are exact.
* **Worker capture is pickle-safe.**  Workers trace into their own
  :class:`Tracer`, :meth:`export` the spans as plain dicts, and the
  parent :meth:`adopt`\\ s them (re-parenting roots) on result merge —
  the same single-writer discipline as :meth:`EventLog.replay
  <repro.obs.events.EventLog.replay>`.

:meth:`Tracer.structure` is the canonical *tree* view — names, ids,
parents, and fields, with times excluded — used by the determinism
tests (wall-clock differs between sequential and pooled execution; the
tree must not).  :meth:`Tracer.to_chrome` exports Chrome
``trace_event`` JSON for ``chrome://tracing`` / Perfetto flamegraphs,
and :func:`rollup_spans` folds a span list into per-name
seconds/calls totals (the shape stored per run by
:class:`~repro.obs.store.RunStore`).
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "TickClock",
    "NULL_TRACER",
    "span_id_for_key",
    "rollup_spans",
]


def span_id_for_key(key: str) -> str:
    """The (deterministic) span id an explicit ``span_key`` yields."""
    return hashlib.sha256(key.encode()).hexdigest()[:16]


class TickClock:
    """Deterministic clock: each reading advances by ``step`` seconds.

    Substituting this for ``perf_counter`` makes a trace's times a pure
    function of the span sequence, so tests can assert exact start/end
    values (and two captures of the same run are byte-identical,
    timestamps included).
    """

    def __init__(self, step: float = 0.001):
        self.step = step
        self._ticks = 0

    def __call__(self) -> float:
        now = self._ticks * self.step
        self._ticks += 1
        return now


class Span:
    """One named interval in the trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "fields")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 start: float, end: Optional[float] = None,
                 fields: Optional[dict] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.fields = fields or {}

    @property
    def seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": self.start,
            "t1": self.end,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(data["name"], data["id"], data.get("parent"),
                   data.get("t0", 0.0), data.get("t1"),
                   dict(data.get("fields", {})))


class Tracer:
    """Span recorder with deterministic ids and an injectable clock.

    A disabled tracer (:data:`NULL_TRACER`) costs one attribute check
    per ``span()`` entry and records nothing, so producers thread a
    tracer unconditionally the same way they thread an
    :class:`~repro.obs.events.EventLog`.
    """

    def __init__(self, enabled: bool = True, clock=None,
                 root_key: str = "trace"):
        self.enabled = enabled
        self.clock = clock if clock is not None else time.perf_counter
        self.root_key = root_key
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        #: (parent_id, name) -> occurrences, for derived ids.
        self._occurrences: Dict[tuple, int] = {}

    # -- id derivation -----------------------------------------------------

    def _derive_id(self, parent_id: Optional[str], name: str,
                   span_key: Optional[str]) -> str:
        if span_key is not None:
            return span_id_for_key(span_key)
        scope = (parent_id or self.root_key, name)
        index = self._occurrences.get(scope, 0)
        self._occurrences[scope] = index + 1
        return span_id_for_key("%s/%s#%d" % (scope[0], name, index))

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, span_key: Optional[str] = None, **fields):
        """Record a span around the ``with`` body.

        ``span_key`` pins the span's id to an explicit content key
        (identical across processes and runs); without it the id
        derives from the parent id, the name, and the per-parent
        occurrence count — deterministic as long as the structure is.
        Yields the open :class:`Span` (None when disabled).
        """
        if not self.enabled:
            yield None
            return
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._derive_id(parent_id, name, span_key),
                    parent_id, self.clock(), None, fields)
        self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self.clock()

    def add_span(self, name: str, seconds: float, *,
                 parent_id: Optional[str] = None,
                 span_key: Optional[str] = None, **fields) -> Optional[Span]:
        """Record an already-elapsed interval as a completed span.

        Used where a ``with`` block cannot wrap the interval — e.g. the
        pooled dispatcher's retry backoffs, which are scheduling delays
        rather than blocking sleeps.  ``parent_id`` may name a span that
        does not exist yet (ids are content-derived, so the parent's id
        is known before the span is materialized at merge time).
        """
        if not self.enabled:
            return None
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        end = self.clock()
        span = Span(name, self._derive_id(parent_id, name, span_key),
                    parent_id, end - seconds, end, fields)
        self.spans.append(span)
        return span

    # -- cross-process capture ---------------------------------------------

    def export(self) -> List[dict]:
        """All spans as plain (pickle/JSON-safe) dicts, in record order."""
        return [span.as_dict() for span in self.spans]

    def adopt(self, records: Iterable[dict],
              parent_id: Optional[str] = None) -> None:
        """Graft spans exported by another tracer into this trace.

        Root spans (``parent is None``) are re-parented under
        ``parent_id`` (or the current open span), so a worker's attempt
        subtree lands exactly where the sequential path would have
        recorded it.  Non-root spans keep their (content-derived)
        parent links — they already match.
        """
        if not self.enabled:
            return
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        for record in records:
            span = Span.from_dict(record)
            if span.parent_id is None:
                span.parent_id = parent_id
            self.spans.append(span)

    # -- views -------------------------------------------------------------

    def _children(self) -> Dict[Optional[str], List[Span]]:
        children: Dict[Optional[str], List[Span]] = {}
        ids = {span.span_id for span in self.spans}
        for span in self.spans:
            # Spans whose parent was never recorded here (e.g. adopted
            # fragments) group as roots so no span is unreachable.
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        return children

    def structure(self) -> List[dict]:
        """The canonical span *tree*: everything except the times.

        Two runs of the same work — sequential or pooled, today or
        tomorrow — produce byte-identical structures
        (``json.dumps(tracer.structure(), sort_keys=True)``); only
        ``t0``/``t1`` vary run to run.
        """
        children = self._children()

        def node(span: Span) -> dict:
            return {
                "name": span.name,
                "id": span.span_id,
                "fields": dict(span.fields),
                "children": [node(c) for c in children.get(span.span_id, [])],
            }

        return [node(span) for span in children.get(None, [])]

    def subtree(self, span_id: str) -> List[dict]:
        """The span with ``span_id`` plus every descendant, exported."""
        children = self._children()
        by_id = {span.span_id: span for span in self.spans}
        out: List[dict] = []
        queue = [by_id[span_id]] if span_id in by_id else []
        while queue:
            span = queue.pop(0)
            out.append(span.as_dict())
            queue.extend(children.get(span.span_id, []))
        return out

    def to_chrome(self, path: str) -> int:
        """Write Chrome ``trace_event`` JSON (complete ``X`` events).

        Load in ``chrome://tracing`` or https://ui.perfetto.dev for a
        flamegraph.  Adopted worker spans keep their worker-relative
        times, so cross-process nesting is approximate; within one
        process the nesting is exact.  Returns the span count written.
        """
        events = []
        for span in self.spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.seconds * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": dict(span.fields, span_id=span.span_id,
                             parent=span.parent_id),
            })
        with open(path, "w") as fh:
            json.dump({"traceEvents": events,
                       "displayTimeUnit": "ms"}, fh)
        return len(events)

    def reset(self) -> None:
        self.spans = []
        self._stack = []
        self._occurrences = {}


#: Shared disabled tracer: thread it anywhere a tracer is optional.
NULL_TRACER = Tracer(enabled=False)


def rollup_spans(records: Iterable[dict]) -> Dict[str, dict]:
    """Fold exported spans into ``{name: {"seconds", "calls"}}`` totals.

    The per-run aggregation stored by the run store (and the natural
    diffable summary of a trace).  Open spans (``t1 is None``) count a
    call with zero seconds.
    """
    totals: Dict[str, dict] = {}
    for record in records:
        name = record["name"]
        entry = totals.setdefault(name, {"seconds": 0.0, "calls": 0})
        t0, t1 = record.get("t0"), record.get("t1")
        if t0 is not None and t1 is not None:
            entry["seconds"] += t1 - t0
        entry["calls"] += 1
    for entry in totals.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return totals
