"""SQLite-backed run store: every completed run, indexed and queryable.

The experiment suite's durable memory.  JSONL event logs are perfect
for streaming one sweep's telemetry but answering *"best DRC config per
workload across every run ever"* by rescanning JSONL is O(history);
:class:`RunStore` indexes each completed run — spec fingerprint,
machine-config digest, the key architectural stats (IPC, miss rates,
DRC activity), host wall time, attempt/fault counters, and per-name
span rollups — in one SQLite file that ``repro.tools.stats`` queries
directly (``best``/``compare``/``history``/``sql``).

Write discipline mirrors :class:`~repro.harness.resultcache.ResultCache`
commit-as-you-go: the sweep engine records each run the moment it
completes (and commits immediately), so a later crash loses nothing
already finished.  Like the event log's :class:`FileSink
<repro.obs.events.FileSink>`, the store is **single-writer,
parent-process-only** — workers ship results back and the parent
records them, so SQLite never sees multi-process write contention.

Schema versioning: the ``meta`` table stores ``schema_version``; a
store created by a different schema is *refused*, not migrated —
the store is a derived index, so the recovery path is cheap and total:
delete the file and re-run :meth:`backfill_cache` /
:meth:`backfill_events` over the primary artifacts (cache directories,
JSONL logs).  That keeps this module free of migration machinery.

This module is importable with **zero** repro dependencies beyond
``repro.obs`` itself (specs and results are duck-typed), so the obs
package never drags the harness in — the harness imports *us*.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import read_events

__all__ = ["RunStore", "SCHEMA_VERSION", "STORE_METRICS", "LOWER_IS_BETTER"]

SCHEMA_VERSION = 1

#: Queryable metric columns of the ``runs`` table.
STORE_METRICS = (
    "ipc",
    "il1_miss_rate",
    "dl1_miss_rate",
    "l2_miss_rate",
    "drc_miss_rate",
    "cycles",
    "instructions",
    "host_seconds",
)

#: Metrics where smaller wins (everything else: bigger wins).
LOWER_IS_BETTER = frozenset(
    ("il1_miss_rate", "dl1_miss_rate", "l2_miss_rate", "drc_miss_rate",
     "cycles", "host_seconds")
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id                  INTEGER PRIMARY KEY,
    spec_key            TEXT NOT NULL,
    workload            TEXT NOT NULL,
    mode                TEXT NOT NULL,
    drc_entries         INTEGER NOT NULL DEFAULT 0,
    seed                INTEGER,
    scale               REAL,
    max_instructions    INTEGER,
    warmup_instructions INTEGER,
    config_digest       TEXT NOT NULL DEFAULT '',
    status              TEXT NOT NULL DEFAULT 'ok',
    source              TEXT NOT NULL DEFAULT 'sweep',
    attempts            INTEGER NOT NULL DEFAULT 1,
    cached              INTEGER NOT NULL DEFAULT 0,
    instructions        INTEGER,
    cycles              INTEGER,
    ipc                 REAL,
    il1_miss_rate       REAL,
    dl1_miss_rate       REAL,
    l2_miss_rate       REAL,
    drc_lookups         INTEGER,
    drc_misses          INTEGER,
    drc_miss_rate       REAL,
    host_seconds        REAL,
    host_instructions   INTEGER,
    error               TEXT,
    created_at          REAL NOT NULL,
    UNIQUE (spec_key, config_digest, source, created_at)
);
CREATE INDEX IF NOT EXISTS idx_runs_workload ON runs (workload, mode);
CREATE INDEX IF NOT EXISTS idx_runs_spec ON runs (spec_key);
CREATE TABLE IF NOT EXISTS span_rollups (
    run_id  INTEGER NOT NULL REFERENCES runs (id),
    name    TEXT NOT NULL,
    seconds REAL NOT NULL,
    calls   INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_rollups_run ON span_rollups (run_id);
CREATE TABLE IF NOT EXISTS findings (
    id            INTEGER PRIMARY KEY,
    session_seed  INTEGER,
    program_index INTEGER,
    oracle_seed   INTEGER,
    kinds         TEXT,
    detail        TEXT,
    path          TEXT,
    shrunk_lines  INTEGER,
    source        TEXT NOT NULL DEFAULT 'fuzz',
    created_at    REAL NOT NULL,
    UNIQUE (session_seed, program_index, source)
);
CREATE TABLE IF NOT EXISTS race_points (
    id                  INTEGER PRIMARY KEY,
    workload            TEXT NOT NULL,
    seed                INTEGER NOT NULL,
    tenants             INTEGER NOT NULL,
    policy              TEXT NOT NULL,
    disclosure_rate     REAL NOT NULL,
    probe_rate          REAL NOT NULL,
    adversary_enabled   INTEGER NOT NULL,
    window_instructions INTEGER NOT NULL,
    max_instructions    INTEGER NOT NULL,
    instructions        INTEGER,
    cycles              INTEGER,
    ipc                 REAL,
    rotations           INTEGER,
    rotation_cycles     INTEGER,
    drc_flushes         INTEGER,
    block_invalidations INTEGER,
    trace_invalidations INTEGER,
    max_stale_overlap   REAL,
    mappings_leaked     INTEGER,
    probe_crashes       INTEGER,
    payload_possible    INTEGER,
    exposed_windows     INTEGER,
    exposed_instructions INTEGER,
    exposure_fraction   REAL,
    max_exposure_streak INTEGER,
    first_goal_icount   INTEGER,
    source              TEXT NOT NULL DEFAULT 'race',
    created_at          REAL NOT NULL,
    UNIQUE (workload, seed, tenants, policy, disclosure_rate, probe_rate,
            adversary_enabled, window_instructions, max_instructions, source)
);
CREATE INDEX IF NOT EXISTS idx_race_policy ON race_points (policy);
CREATE TABLE IF NOT EXISTS fleet_points (
    id                   INTEGER PRIMARY KEY,
    workload             TEXT NOT NULL,
    mode                 TEXT NOT NULL,
    seed                 INTEGER NOT NULL,
    tenants              INTEGER NOT NULL,
    cores                INTEGER NOT NULL,
    quantum_instructions INTEGER NOT NULL,
    switch_cycles        INTEGER NOT NULL,
    request_instructions INTEGER NOT NULL,
    arrival_kind         TEXT NOT NULL,
    arrival_requests     INTEGER NOT NULL,
    arrival_mean_gap     INTEGER NOT NULL,
    tenant               TEXT NOT NULL,
    core                 INTEGER,
    requests             INTEGER,
    served               INTEGER,
    unserved             INTEGER,
    p50_latency          INTEGER,
    p95_latency          INTEGER,
    p99_latency          INTEGER,
    max_latency          INTEGER,
    mean_latency         REAL,
    instructions         INTEGER,
    cycles               INTEGER,
    ipc                  REAL,
    ipc_fairness         REAL,
    quanta               INTEGER,
    switches             INTEGER,
    switch_cycles_total  INTEGER,
    max_queue_depth      INTEGER,
    il1_miss_rate        REAL,
    drc_miss_rate        REAL,
    l2_miss_rate         REAL,
    source               TEXT NOT NULL DEFAULT 'fleet',
    created_at           REAL NOT NULL,
    UNIQUE (workload, mode, seed, tenants, cores, quantum_instructions,
            switch_cycles, request_instructions, arrival_kind,
            arrival_requests, arrival_mean_gap, tenant, source)
);
CREATE INDEX IF NOT EXISTS idx_fleet_arrival ON fleet_points (arrival_kind);
"""


def _spec_dict(spec) -> dict:
    """Canonical plain-dict form of a spec-like object.

    Accepts a :class:`~repro.harness.spec.RunSpec` (normalized first)
    or an already-plain dict — duck typing keeps this module free of
    harness imports.
    """
    if hasattr(spec, "normalized"):
        return spec.normalized().as_dict()
    return dict(spec)


class RunStore:
    """One SQLite file of runs, span rollups, and fuzz findings."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            self._conn.close()
            raise RuntimeError(
                "run store %s has schema v%s, this build expects v%d; "
                "the store is a derived index — delete it and re-run "
                "'python -m repro.tools.stats backfill'" %
                (path, row[0], SCHEMA_VERSION)
            )

    # -- keys --------------------------------------------------------------

    @staticmethod
    def spec_key(spec) -> str:
        """Content digest of the normalized spec (config-independent).

        Deliberately *excludes* the machine config — the same spec swept
        across machine variants shares a key, and ``config_digest`` is a
        separate column — so history queries can follow one spec across
        timing-model revisions.
        """
        payload = json.dumps(_spec_dict(spec), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- recording ---------------------------------------------------------

    def record_run(self, spec, result, *, config_digest: str = "",
                   source: str = "sweep", attempts: int = 1,
                   cached: bool = False, host_seconds: float = 0.0,
                   spans: Optional[Dict[str, dict]] = None,
                   created_at: Optional[float] = None) -> int:
        """Index one completed run; commits before returning.

        ``result`` is duck-typed: a cycle-simulator
        :class:`~repro.arch.simstats.SimResult` (has ``cycles``), an
        emulator result (has ``icount``), or a plain stats dict from an
        event-log backfill.  ``spans`` is a
        :func:`~repro.obs.trace.rollup_spans`-shaped mapping.
        """
        fields = _spec_dict(spec)
        stats = _result_columns(result)
        run_id = self._insert_run(
            fields, stats, status="ok", source=source, attempts=attempts,
            cached=cached, host_seconds=host_seconds, error=None,
            config_digest=config_digest, created_at=created_at,
        )
        if run_id is not None and spans:
            self._conn.executemany(
                "INSERT INTO span_rollups (run_id, name, seconds, calls) "
                "VALUES (?, ?, ?, ?)",
                [(run_id, name, entry["seconds"], entry["calls"])
                 for name, entry in sorted(spans.items())],
            )
        self._conn.commit()
        return run_id if run_id is not None else -1

    def record_failure(self, spec, error: str, *, config_digest: str = "",
                       source: str = "sweep", attempts: int = 1,
                       created_at: Optional[float] = None) -> int:
        """Index a quarantined spec (status ``failed``); commits."""
        run_id = self._insert_run(
            _spec_dict(spec), {}, status="failed", source=source,
            attempts=attempts, cached=False, host_seconds=0.0,
            error=error, config_digest=config_digest, created_at=created_at,
        )
        self._conn.commit()
        return run_id if run_id is not None else -1

    def record_finding(self, finding: dict, *, session_seed: int,
                       source: str = "fuzz",
                       created_at: Optional[float] = None) -> None:
        """Index one fuzz finding (``FuzzFinding.as_dict`` shape).

        Idempotent per (session seed, program index, source): replaying
        the same deterministic session does not duplicate rows.
        """
        self._conn.execute(
            "INSERT OR IGNORE INTO findings (session_seed, program_index, "
            "oracle_seed, kinds, detail, path, shrunk_lines, source, "
            "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (session_seed, finding.get("index"), finding.get("seed"),
             ",".join(finding.get("kinds", ())), finding.get("detail"),
             finding.get("path"), finding.get("shrunk_lines"),
             source, created_at if created_at is not None else time.time()),
        )
        self._conn.commit()

    def record_race_point(self, point: dict, *, source: str = "race",
                          created_at: Optional[float] = None) -> None:
        """Index one rotation-vs-adversary race point
        (:meth:`repro.security.race.RaceResult.as_dict` shape).

        Idempotent per full spec echo + source: re-running the same
        deterministic sweep does not duplicate rows.
        """
        self._conn.execute(
            "INSERT OR IGNORE INTO race_points (workload, seed, tenants, "
            "policy, disclosure_rate, probe_rate, adversary_enabled, "
            "window_instructions, max_instructions, instructions, cycles, "
            "ipc, rotations, rotation_cycles, drc_flushes, "
            "block_invalidations, trace_invalidations, max_stale_overlap, "
            "mappings_leaked, probe_crashes, payload_possible, "
            "exposed_windows, exposed_instructions, exposure_fraction, "
            "max_exposure_streak, first_goal_icount, source, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                point.get("workload", "?"),
                point.get("seed", 0),
                point.get("tenants", 1),
                point.get("policy", "?"),
                point.get("disclosure_rate", 0.0),
                point.get("probe_rate", 0.0),
                1 if point.get("adversary_enabled") else 0,
                point.get("window_instructions", 0),
                point.get("max_instructions", 0),
                point.get("instructions"),
                point.get("cycles"),
                point.get("ipc"),
                point.get("rotations"),
                point.get("rotation_cycles"),
                point.get("drc_flushes"),
                point.get("block_invalidations"),
                point.get("trace_invalidations"),
                point.get("max_stale_overlap"),
                point.get("mappings_leaked"),
                point.get("probe_crashes"),
                1 if point.get("payload_possible") else 0,
                point.get("exposed_windows"),
                point.get("exposed_instructions"),
                point.get("exposure_fraction"),
                point.get("max_exposure_streak"),
                point.get("first_goal_icount"),
                source,
                created_at if created_at is not None else time.time(),
            ),
        )
        self._conn.commit()

    def record_fleet_point(self, point: dict, *, source: str = "fleet",
                           created_at: Optional[float] = None) -> None:
        """Index one per-tenant fleet row
        (:meth:`repro.fleet.FleetResult.tenant_points` shape).

        Idempotent per full spec echo + tenant + source: re-running the
        same deterministic sweep does not duplicate rows.
        """
        self._conn.execute(
            "INSERT OR IGNORE INTO fleet_points (workload, mode, seed, "
            "tenants, cores, quantum_instructions, switch_cycles, "
            "request_instructions, arrival_kind, arrival_requests, "
            "arrival_mean_gap, tenant, core, requests, served, unserved, "
            "p50_latency, p95_latency, p99_latency, max_latency, "
            "mean_latency, instructions, cycles, ipc, ipc_fairness, "
            "quanta, switches, switch_cycles_total, max_queue_depth, "
            "il1_miss_rate, drc_miss_rate, l2_miss_rate, source, "
            "created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                point.get("workload", "?"),
                point.get("mode", "?"),
                point.get("seed", 0),
                point.get("tenants", 1),
                point.get("cores", 1),
                point.get("quantum_instructions", 0),
                point.get("switch_cycles", 0),
                point.get("request_instructions", 0),
                point.get("arrival_kind", "?"),
                point.get("arrival_requests", 0),
                point.get("arrival_mean_gap", 0),
                point.get("tenant", "?"),
                point.get("core"),
                point.get("requests"),
                point.get("served"),
                point.get("unserved"),
                point.get("p50_latency"),
                point.get("p95_latency"),
                point.get("p99_latency"),
                point.get("max_latency"),
                point.get("mean_latency"),
                point.get("instructions"),
                point.get("cycles"),
                point.get("ipc"),
                point.get("ipc_fairness"),
                point.get("quanta"),
                point.get("switches"),
                point.get("switch_cycles_total"),
                point.get("max_queue_depth"),
                point.get("il1_miss_rate"),
                point.get("drc_miss_rate"),
                point.get("l2_miss_rate"),
                source,
                created_at if created_at is not None else time.time(),
            ),
        )
        self._conn.commit()

    def fleet_points(self, *, arrival_kind: Optional[str] = None,
                     mode: Optional[str] = None) -> List[dict]:
        """All indexed per-tenant fleet rows, oldest first."""
        clauses = []
        params: List = []
        if arrival_kind is not None:
            clauses.append("arrival_kind = ?")
            params.append(arrival_kind)
        if mode is not None:
            clauses.append("mode = ?")
            params.append(mode)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        keys = ("workload", "mode", "arrival_kind", "tenants", "cores",
                "tenant", "core", "requests", "served", "p50_latency",
                "p95_latency", "p99_latency", "ipc", "ipc_fairness",
                "switches", "l2_miss_rate", "created_at")
        rows = self._conn.execute(
            "SELECT %s FROM fleet_points%s ORDER BY created_at ASC, id ASC"
            % (", ".join(keys), where),
            tuple(params),
        ).fetchall()
        return [dict(zip(keys, row)) for row in rows]

    def race_points(self, *, policy: Optional[str] = None) -> List[dict]:
        """All indexed race points, oldest first."""
        where = ""
        params: tuple = ()
        if policy is not None:
            where = " WHERE policy = ?"
            params = (policy,)
        rows = self._conn.execute(
            "SELECT workload, policy, disclosure_rate, probe_rate, tenants, "
            "rotations, rotation_cycles, exposure_fraction, "
            "max_exposure_streak, first_goal_icount, ipc, created_at "
            "FROM race_points%s ORDER BY created_at ASC, id ASC" % where,
            params,
        ).fetchall()
        keys = ("workload", "policy", "disclosure_rate", "probe_rate",
                "tenants", "rotations", "rotation_cycles",
                "exposure_fraction", "max_exposure_streak",
                "first_goal_icount", "ipc", "created_at")
        return [dict(zip(keys, row)) for row in rows]

    def _insert_run(self, fields: dict, stats: dict, *, status: str,
                    source: str, attempts: int, cached: bool,
                    host_seconds: float, error: Optional[str],
                    config_digest: str,
                    created_at: Optional[float]) -> Optional[int]:
        key = self.spec_key(fields)
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO runs (spec_key, workload, mode, "
            "drc_entries, seed, scale, max_instructions, "
            "warmup_instructions, config_digest, status, source, attempts, "
            "cached, instructions, cycles, ipc, il1_miss_rate, "
            "dl1_miss_rate, l2_miss_rate, drc_lookups, drc_misses, "
            "drc_miss_rate, host_seconds, host_instructions, error, "
            "created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                fields.get("workload", "?"),
                fields.get("mode", "?"),
                fields.get("drc_entries", 0) or 0,
                fields.get("seed"),
                fields.get("scale"),
                fields.get("max_instructions"),
                fields.get("warmup_instructions"),
                config_digest,
                status,
                source,
                attempts,
                1 if cached else 0,
                stats.get("instructions"),
                stats.get("cycles"),
                stats.get("ipc"),
                stats.get("il1_miss_rate"),
                stats.get("dl1_miss_rate"),
                stats.get("l2_miss_rate"),
                stats.get("drc_lookups"),
                stats.get("drc_misses"),
                stats.get("drc_miss_rate"),
                round(host_seconds, 6),
                stats.get("host_instructions"),
                error,
                created_at if created_at is not None else time.time(),
            ),
        )
        # INSERT OR IGNORE: a duplicate (backfill re-run) inserts nothing.
        return cursor.lastrowid if cursor.rowcount else None

    # -- queries -----------------------------------------------------------

    def best(self, metric: str = "ipc", *, mode: Optional[str] = None,
             workload: Optional[str] = None) -> List[dict]:
        """Best row per workload by ``metric`` across all indexed runs.

        "Best" honors :data:`LOWER_IS_BETTER` (miss rates, cycles, and
        host time minimize; IPC and throughput maximize).  The paper's
        design-space question — best DRC config per workload — is
        ``best("ipc", mode="vcfr")``.
        """
        if metric not in STORE_METRICS:
            raise ValueError("unknown metric %r (one of %s)"
                             % (metric, ", ".join(STORE_METRICS)))
        order = "ASC" if metric in LOWER_IS_BETTER else "DESC"
        where, params = _filters(mode=mode, workload=workload)
        rows = self._conn.execute(
            "SELECT workload, mode, drc_entries, %s AS value, attempts, "
            "source, created_at FROM runs "
            "WHERE status = 'ok' AND %s IS NOT NULL%s "
            "ORDER BY workload ASC, value %s, created_at ASC"
            % (metric, metric, where, order),
            params,
        ).fetchall()
        out: List[dict] = []
        seen = set()
        for workload_, mode_, drc, value, attempts, source, created in rows:
            if workload_ in seen:
                continue
            seen.add(workload_)
            out.append({
                "workload": workload_,
                "label": _mode_label(mode_, drc),
                "metric": metric,
                "value": value,
                "attempts": attempts,
                "source": source,
                "created_at": created,
            })
        return out

    def compare(self, a: str, b: str, metric: str = "ipc") -> List[dict]:
        """Per-workload ``a`` vs ``b`` on ``metric`` (latest run each).

        ``a``/``b`` are mode labels — ``baseline``, ``naive_ilr``,
        ``vcfr`` (any DRC size), or ``vcfr@64`` (that size exactly).
        """
        if metric not in STORE_METRICS:
            raise ValueError("unknown metric %r (one of %s)"
                             % (metric, ", ".join(STORE_METRICS)))
        left = self._latest_by_workload(a, metric)
        right = self._latest_by_workload(b, metric)
        out: List[dict] = []
        for workload in sorted(set(left) & set(right)):
            va, vb = left[workload], right[workload]
            out.append({
                "workload": workload,
                "metric": metric,
                "a": va,
                "b": vb,
                "ratio": (vb / va) if va else 0.0,
            })
        return out

    def _latest_by_workload(self, label: str, metric: str) -> Dict[str, float]:
        mode, _, drc = label.partition("@")
        where = " AND mode = ?"
        params: List[object] = [mode]
        if drc:
            where += " AND drc_entries = ?"
            params.append(int(drc))
        rows = self._conn.execute(
            "SELECT workload, %s FROM runs "
            "WHERE status = 'ok' AND %s IS NOT NULL%s "
            "ORDER BY created_at ASC" % (metric, metric, where),
            params,
        ).fetchall()
        # ASC + overwrite: the latest run per workload wins.
        return {workload: value for workload, value in rows}

    def history(self, *, workload: Optional[str] = None,
                mode: Optional[str] = None, limit: int = 20) -> List[dict]:
        """Most recent runs (including failures), newest first."""
        where, params = _filters(mode=mode, workload=workload)
        rows = self._conn.execute(
            "SELECT workload, mode, drc_entries, status, source, attempts, "
            "cached, ipc, host_seconds, error, created_at "
            "FROM runs WHERE 1=1%s ORDER BY created_at DESC, id DESC "
            "LIMIT ?" % where,
            params + [limit],
        ).fetchall()
        return [
            {
                "workload": r[0], "label": _mode_label(r[1], r[2]),
                "status": r[3], "source": r[4], "attempts": r[5],
                "cached": bool(r[6]), "ipc": r[7], "host_seconds": r[8],
                "error": r[9], "created_at": r[10],
            }
            for r in rows
        ]

    def query(self, sql: str, params: Sequence = ()) -> Tuple[List[str], List[tuple]]:
        """Raw SQL passthrough: ``(column names, rows)``."""
        cursor = self._conn.execute(sql, tuple(params))
        columns = [d[0] for d in cursor.description or []]
        return columns, cursor.fetchall()

    def rollups(self, run_id: int) -> Dict[str, dict]:
        """Span rollups recorded for one run."""
        rows = self._conn.execute(
            "SELECT name, seconds, calls FROM span_rollups "
            "WHERE run_id = ? ORDER BY name", (run_id,),
        ).fetchall()
        return {name: {"seconds": seconds, "calls": calls}
                for name, seconds, calls in rows}

    def findings(self, *, session_seed: Optional[int] = None) -> List[dict]:
        where, params = "", []
        if session_seed is not None:
            where, params = " WHERE session_seed = ?", [session_seed]
        rows = self._conn.execute(
            "SELECT session_seed, program_index, oracle_seed, kinds, "
            "detail, path, shrunk_lines, source, created_at FROM findings"
            + where + " ORDER BY session_seed, program_index", params,
        ).fetchall()
        return [
            {
                "session_seed": r[0], "index": r[1], "seed": r[2],
                "kinds": r[3].split(",") if r[3] else [], "detail": r[4],
                "path": r[5], "shrunk_lines": r[6], "source": r[7],
                "created_at": r[8],
            }
            for r in rows
        ]

    def counts(self) -> Dict[str, int]:
        out = {}
        for table in ("runs", "findings", "span_rollups"):
            out[table] = self._conn.execute(
                "SELECT COUNT(*) FROM %s" % table
            ).fetchone()[0]
        return out

    # -- backfill ----------------------------------------------------------

    def backfill_cache(self, root: str) -> Dict[str, int]:
        """Ingest a :class:`ResultCache` directory's JSON entries.

        Works on every cache layout by walking the whole tree and
        recognizing entry files by shape rather than location: the flat
        ``root/<digest>.json``, the two-level ``root/ab/<digest>.json``,
        and the sharded ``root/ab/<digest>/result.json`` all hold the
        same ``{"spec": ..., "config": ..., "result": ...}`` document.
        The walk order is sorted, so ingestion is deterministic across
        filesystems; the entry's own ``config`` fingerprint (when
        present — older entries predate it) becomes the row's
        ``config_digest``; the file mtime becomes ``created_at``, making
        re-runs idempotent (the uniqueness constraint ignores exact
        duplicates).  Pickle entries (emulation results) store no spec
        and are skipped, as are work-queue ``claim`` files and orphaned
        ``.tmp-*`` writes.
        """
        ingested = skipped = 0
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                path = os.path.join(dirpath, name)
                if not name.endswith(".json") or name.startswith(".tmp-"):
                    if name.endswith(".pkl"):
                        skipped += 1
                    continue
                try:
                    with open(path) as fh:
                        entry = json.load(fh)
                    spec, result = entry["spec"], entry["result"]
                except (OSError, ValueError, KeyError, TypeError):
                    skipped += 1
                    continue
                run_id = self.record_run(
                    spec, result, source="backfill-cache",
                    cached=True, created_at=os.stat(path).st_mtime,
                    config_digest=entry.get("config", ""),
                )
                if run_id >= 0:
                    ingested += 1
        return {"ingested": ingested, "skipped": skipped}

    def backfill_events(self, path: str) -> Dict[str, int]:
        """Ingest a JSONL event log: ``run_end`` rows + fuzz findings.

        Event logs carry a run's telemetry, not its full spec (seed,
        scale, and budgets are not stamped on events), so backfilled
        rows key on the fields events do carry; ``created_at`` is the
        log file's mtime so re-ingestion is idempotent.
        """
        mtime = os.stat(path).st_mtime
        ingested = findings = 0
        session_seed = None
        for record in read_events(path):
            kind = record.get("kind")
            if kind == "fuzz_program":
                session_seed = record.get("session_seed", session_seed)
            elif kind == "run_end":
                spec = {
                    "workload": record.get("workload", "?"),
                    "mode": record.get("mode", "?"),
                    "drc_entries": record.get("drc_entries", 0),
                }
                run_id = self.record_run(
                    spec, record, source="backfill-events",
                    attempts=record.get("attempt", 0) + 1,
                    host_seconds=record.get("host_seconds", 0.0),
                    created_at=mtime + record.get("t", 0.0),
                )
                if run_id >= 0:
                    ingested += 1
            elif kind == "fuzz_finding":
                seed = record.get("session_seed", session_seed)
                self.record_finding(
                    record, session_seed=seed if seed is not None else -1,
                    source="backfill-events", created_at=mtime,
                )
                findings += 1
        return {"ingested": ingested, "findings": findings}

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RunStore(path=%r)" % self.path


def _mode_label(mode: str, drc_entries: int) -> str:
    return "%s@%d" % (mode, drc_entries) if mode == "vcfr" else mode


def _filters(*, mode: Optional[str],
             workload: Optional[str]) -> Tuple[str, List[object]]:
    where = ""
    params: List[object] = []
    if mode:
        base, _, drc = mode.partition("@")
        where += " AND mode = ?"
        params.append(base)
        if drc:
            where += " AND drc_entries = ?"
            params.append(int(drc))
    if workload:
        where += " AND workload = ?"
        params.append(workload)
    return where, params


def _result_columns(result) -> dict:
    """Key stats from a duck-typed result (SimResult / emulation / dict)."""
    if isinstance(result, dict):
        data = result
        if "cycles" in data and "il1" in data:
            # SimResult.as_dict shape (cache backfill): derive the rates
            # the live object derives via its properties.
            return {
                "instructions": data.get("instructions"),
                "cycles": data.get("cycles"),
                "ipc": _ratio(data.get("instructions"), data.get("cycles")),
                "il1_miss_rate": _rate(data.get("il1")),
                "dl1_miss_rate": _rate(data.get("dl1")),
                "l2_miss_rate": _rate(data.get("l2")),
                "drc_lookups": data.get("drc_lookups"),
                "drc_misses": data.get("drc_misses"),
                "drc_miss_rate": _ratio(data.get("drc_misses"),
                                        data.get("drc_lookups")),
            }
        # run_end event shape (events backfill): rates precomputed.
        return {key: data.get(key) for key in (
            "instructions", "cycles", "ipc", "il1_miss_rate",
            "dl1_miss_rate", "l2_miss_rate", "drc_lookups", "drc_misses",
            "drc_miss_rate", "host_instructions",
        )}
    if hasattr(result, "cycles"):  # SimResult
        return {
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "il1_miss_rate": result.il1_miss_rate,
            "dl1_miss_rate": result.dl1_miss_rate,
            "l2_miss_rate": result.l2_miss_rate,
            "drc_lookups": result.drc_lookups,
            "drc_misses": result.drc_misses,
            "drc_miss_rate": result.drc_miss_rate,
        }
    if hasattr(result, "icount"):  # EmulationResult
        return {
            "instructions": result.icount,
            "host_instructions": getattr(result, "host_instructions", None),
        }
    return {}


def _ratio(numerator, denominator):
    if not numerator and not denominator:
        return 0.0
    if numerator is None or not denominator:
        return None
    return numerator / denominator


def _rate(stats) -> Optional[float]:
    if not stats:
        return 0.0
    if "misses" not in stats or "accesses" not in stats:
        return None
    return _ratio(stats["misses"], stats["accesses"])
