"""Register file definition for the RX86 instruction set.

RX86 is the x86-flavoured, variable-length instruction set used throughout
this reproduction.  It keeps the eight classic 32-bit x86 general purpose
registers with their conventional roles (``ESP`` is the stack pointer,
``EBP`` the frame pointer) so that workloads, the binary rewriter and the
ROP-gadget tooling all behave like their real-x86 counterparts.
"""

from __future__ import annotations

# Register encodings, identical to the x86 ModRM register numbering.
EAX = 0
ECX = 1
EDX = 2
EBX = 3
ESP = 4
EBP = 5
ESI = 6
EDI = 7

NUM_REGS = 8

REG_NAMES = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

_NAME_TO_REG = {name: idx for idx, name in enumerate(REG_NAMES)}

MASK32 = 0xFFFFFFFF


def reg_name(reg: int) -> str:
    """Return the canonical lowercase name of register number ``reg``."""
    return REG_NAMES[reg]


def reg_number(name: str) -> int:
    """Return the register number for ``name`` (case insensitive).

    Raises ``KeyError`` for unknown register names.
    """
    return _NAME_TO_REG[name.lower()]


def is_reg_name(name: str) -> bool:
    """Return True if ``name`` names an RX86 register."""
    return name.lower() in _NAME_TO_REG


class RegisterFile:
    """Architectural register state of an RX86 core.

    All values are stored as unsigned 32-bit integers.  Reads and writes
    are masked to 32 bits, mirroring hardware wrap-around semantics.
    """

    __slots__ = ("regs",)

    def __init__(self, stack_pointer: int = 0):
        self.regs = [0] * NUM_REGS
        self.regs[ESP] = stack_pointer & MASK32

    def read(self, reg: int) -> int:
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        self.regs[reg] = value & MASK32

    def snapshot(self) -> tuple:
        """Return an immutable copy of the register state (for comparisons)."""
        return tuple(self.regs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            "%s=%08x" % (REG_NAMES[i], v) for i, v in enumerate(self.regs)
        )
        return "RegisterFile(%s)" % pairs
