"""Syscall ABI for RX86 programs.

Programs request services with ``int 0x80``; the service number lives in
``EAX`` and the argument in ``EBX``.  The ABI is deliberately tiny: just
enough for workloads to terminate and to emit verifiable output (the
cross-mode equivalence checks compare these output streams).

=========  =========  =================================================
``EAX``    name       effect
=========  =========  =================================================
1          EXIT       terminate; exit code in ``EBX``
4          PUTC       append ``EBX & 0xFF`` to the byte output stream
5          EMIT       append ``EBX`` (u32) to the word output stream
7          ICOUNT     return retired-instruction count in ``EAX``
=========  =========  =================================================

``ICOUNT`` is deterministic across execution modes (it counts
*architectural* instructions, not cycles) so it never breaks equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

SYSCALL_VECTOR = 0x80

SYS_EXIT = 1
SYS_PUTC = 4
SYS_EMIT = 5
SYS_ICOUNT = 7


class SyscallError(ValueError):
    """Raised for unknown syscall numbers or vectors."""


@dataclass
class OutputStream:
    """Observable program output: bytes from PUTC, words from EMIT."""

    chars: bytearray = field(default_factory=bytearray)
    words: List[int] = field(default_factory=list)

    def putc(self, byte: int) -> None:
        self.chars.append(byte & 0xFF)

    def emit(self, word: int) -> None:
        self.words.append(word & 0xFFFFFFFF)

    def text(self) -> str:
        return self.chars.decode("latin-1")

    def snapshot(self) -> tuple:
        return (bytes(self.chars), tuple(self.words))

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutputStream):
            return NotImplemented
        return self.snapshot() == other.snapshot()
