"""FLAGS register and condition evaluation for RX86.

RX86 keeps the four x86 arithmetic flags that the conditional branches
consume: ZF (zero), SF (sign), CF (carry) and OF (overflow).
"""

from __future__ import annotations

from . import opcodes

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000


class Flags:
    """Architectural FLAGS state."""

    __slots__ = ("zf", "sf", "cf", "of")

    def __init__(self):
        self.zf = False
        self.sf = False
        self.cf = False
        self.of = False

    def set_logic(self, result: int) -> None:
        """Flag update for logic ops (and/or/xor/test/shifts): CF=OF=0."""
        result &= MASK32
        self.zf = result == 0
        self.sf = bool(result & SIGN_BIT)
        self.cf = False
        self.of = False

    def set_add(self, a: int, b: int, result: int) -> None:
        """Flag update for ``a + b``; ``result`` may exceed 32 bits."""
        r = result & MASK32
        self.zf = r == 0
        self.sf = bool(r & SIGN_BIT)
        self.cf = result > MASK32
        self.of = bool((~(a ^ b) & (a ^ r)) & SIGN_BIT)

    def set_sub(self, a: int, b: int) -> None:
        """Flag update for ``a - b`` (also used by cmp)."""
        r = (a - b) & MASK32
        self.zf = r == 0
        self.sf = bool(r & SIGN_BIT)
        self.cf = b > a
        self.of = bool(((a ^ b) & (a ^ r)) & SIGN_BIT)

    def set_mul(self, signed_product: int) -> None:
        """Flag update for imul given the exact signed product.

        CF and OF are set when the product does not fit in 32 signed bits.
        """
        r = signed_product & MASK32
        truncated = r - (1 << 32) if r & SIGN_BIT else r
        overflow = truncated != signed_product
        self.zf = r == 0
        self.sf = bool(r & SIGN_BIT)
        self.cf = overflow
        self.of = overflow

    def evaluate(self, cc: int) -> bool:
        """Evaluate condition code ``cc`` against the current flags."""
        if cc == opcodes.CC_Z:
            return self.zf
        if cc == opcodes.CC_NZ:
            return not self.zf
        if cc == opcodes.CC_L:
            return self.sf != self.of
        if cc == opcodes.CC_GE:
            return self.sf == self.of
        if cc == opcodes.CC_LE:
            return self.zf or (self.sf != self.of)
        if cc == opcodes.CC_G:
            return (not self.zf) and (self.sf == self.of)
        if cc == opcodes.CC_B:
            return self.cf
        if cc == opcodes.CC_AE:
            return not self.cf
        raise ValueError("bad condition code %r" % cc)

    def snapshot(self) -> tuple:
        return (self.zf, self.sf, self.cf, self.of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Flags(zf=%s, sf=%s, cf=%s, of=%s)" % self.snapshot()


def to_signed32(value: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    value &= MASK32
    return value - (1 << 32) if value & SIGN_BIT else value
