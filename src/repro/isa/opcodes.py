"""Opcode table for the RX86 instruction set.

The table is the single source of truth shared by the encoder, the decoder,
the assembler and the disassembler.  RX86 deliberately mimics x86's
variable-length encoding (1 to 6 bytes) because several of the paper's
phenomena depend on it:

* unintended instruction decodes at misaligned offsets (the raw material of
  ROP gadget scanning, paper §V-B);
* instruction-granular randomization inflating the cache-line footprint of
  hot code (the naive-ILR penalty of paper §III, Fig. 3).

Encoding formats
----------------

====================  =======================================  ======
format                layout                                   length
====================  =======================================  ======
``F_NONE``            ``[op]``                                 1
``F_REG_IN_OP``       ``[op+r]``                               1
``F_REG_IMM32``       ``[op+r][imm32]``                        5
``F_REL8``            ``[op][rel8]``                           2
``F_REL32``           ``[op][rel32]``                          5
``F_CC_REL32``        ``[0x0F][0x80+cc][rel32]``               6
``F_MODRM``           ``[op][modrm]`` (+disp32 / +imm32)       2 / 6
``F_MODRM_IMM8``      ``[op][modrm][imm8]``                    3
``F_IMM8``            ``[op][imm8]``                           2
====================  =======================================  ======

ModRM byte: ``mode(2) | reg(3) | rm(3)``, with addressing modes

* mode 0 (``MODE_RR``): ``reg, rm`` register-register — 2 bytes,
* mode 1 (``MODE_RM``): ``reg, [rm + disp32]`` load — 6 bytes,
* mode 2 (``MODE_MR``): ``[rm + disp32], reg`` store — 6 bytes,
* mode 3 (``MODE_RI``): ``reg, imm32`` — 6 bytes.

The ``0xFF`` group (indirect ``jmp``/``call``) and the ``0xC1`` shift group
use the ModRM ``reg`` field as a sub-opcode, exactly as x86 does.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Encoding formats
# ---------------------------------------------------------------------------

F_NONE = "none"
F_REG_IN_OP = "reg_in_op"
F_REG_IMM32 = "reg_imm32"
F_REL8 = "rel8"
F_REL32 = "rel32"
F_CC_REL32 = "cc_rel32"
F_MODRM = "modrm"
F_MODRM_IMM8 = "modrm_imm8"
F_IMM8 = "imm8"

# ModRM addressing modes.
MODE_RR = 0
MODE_RM = 1
MODE_MR = 2
MODE_RI = 3

# ---------------------------------------------------------------------------
# Primary one-byte opcodes
# ---------------------------------------------------------------------------

OP_ADD = 0x01
OP_OR = 0x09
OP_AND = 0x21
OP_SUB = 0x29
OP_XOR = 0x31
OP_CMP = 0x39
OP_PUSH_BASE = 0x50  # 0x50..0x57
OP_POP_BASE = 0x58  # 0x58..0x5F
OP_JCC8_BASE = 0x70  # 0x70..0x77
OP_TEST = 0x85
OP_MOV = 0x8B
OP_LEA = 0x8D
OP_NOP = 0x90
OP_IMUL = 0xAF
OP_MOVI_BASE = 0xB8  # 0xB8..0xBF
OP_SHIFT_GRP = 0xC1
OP_RET = 0xC3
OP_LEAVE = 0xC9
OP_INT = 0xCD
OP_CALL = 0xE8
OP_JMP = 0xE9
OP_JMP8 = 0xEB
OP_TWO_BYTE = 0x0F
OP_FF_GRP = 0xFF
OP_HALT = 0xF4

OP2_JCC32_BASE = 0x80  # second byte of 0x0F-prefixed Jcc rel32

# Sub-opcodes (ModRM ``reg`` field) of the 0xFF group.
FF_CALL = 2
FF_JMP = 4

# Sub-opcodes of the 0xC1 shift group.
SHIFT_SHL = 4
SHIFT_SHR = 5
SHIFT_SAR = 7

# ---------------------------------------------------------------------------
# Condition codes (Jcc)
# ---------------------------------------------------------------------------

CC_Z = 0  # equal / zero             (ZF)
CC_NZ = 1  # not equal / not zero     (!ZF)
CC_L = 2  # signed less              (SF != OF)
CC_GE = 3  # signed greater-or-equal  (SF == OF)
CC_LE = 4  # signed less-or-equal     (ZF or SF != OF)
CC_G = 5  # signed greater           (!ZF and SF == OF)
CC_B = 6  # unsigned below           (CF)
CC_AE = 7  # unsigned above-or-equal  (!CF)

NUM_CC = 8

CC_NAMES = ("z", "nz", "l", "ge", "le", "g", "b", "ae")

_CC_ALIASES = {
    "e": CC_Z,
    "ne": CC_NZ,
    "c": CC_B,
    "nc": CC_AE,
}


def cc_number(name: str) -> int:
    """Map a condition suffix (``z``, ``ne``, ``ge`` …) to its code."""
    name = name.lower()
    if name in _CC_ALIASES:
        return _CC_ALIASES[name]
    return CC_NAMES.index(name)


# ---------------------------------------------------------------------------
# Opcode descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one RX86 mnemonic."""

    mnemonic: str
    opcode: int
    fmt: str
    #: Does the instruction write the FLAGS register?
    writes_flags: bool = False
    #: Is the instruction a control transfer?
    is_control: bool = False
    #: Execution latency in cycles for the timing model.
    latency: int = 1


# Two-operand ALU group: each opcode supports all four ModRM modes.
ALU_OPCODES = {
    "add": OpcodeInfo("add", OP_ADD, F_MODRM, writes_flags=True),
    "or": OpcodeInfo("or", OP_OR, F_MODRM, writes_flags=True),
    "and": OpcodeInfo("and", OP_AND, F_MODRM, writes_flags=True),
    "sub": OpcodeInfo("sub", OP_SUB, F_MODRM, writes_flags=True),
    "xor": OpcodeInfo("xor", OP_XOR, F_MODRM, writes_flags=True),
    "cmp": OpcodeInfo("cmp", OP_CMP, F_MODRM, writes_flags=True),
    "test": OpcodeInfo("test", OP_TEST, F_MODRM, writes_flags=True),
    "mov": OpcodeInfo("mov", OP_MOV, F_MODRM),
    "lea": OpcodeInfo("lea", OP_LEA, F_MODRM),
    "imul": OpcodeInfo("imul", OP_IMUL, F_MODRM, writes_flags=True, latency=3),
}

SIMPLE_OPCODES = {
    "nop": OpcodeInfo("nop", OP_NOP, F_NONE),
    "halt": OpcodeInfo("halt", OP_HALT, F_NONE),
    "ret": OpcodeInfo("ret", OP_RET, F_NONE, is_control=True),
    "leave": OpcodeInfo("leave", OP_LEAVE, F_NONE),
    "push": OpcodeInfo("push", OP_PUSH_BASE, F_REG_IN_OP),
    "pop": OpcodeInfo("pop", OP_POP_BASE, F_REG_IN_OP),
    "movi": OpcodeInfo("movi", OP_MOVI_BASE, F_REG_IMM32),
    "call": OpcodeInfo("call", OP_CALL, F_REL32, is_control=True),
    "jmp": OpcodeInfo("jmp", OP_JMP, F_REL32, is_control=True),
    "jmp8": OpcodeInfo("jmp8", OP_JMP8, F_REL8, is_control=True),
    "int": OpcodeInfo("int", OP_INT, F_IMM8, latency=1),
    "shl": OpcodeInfo("shl", OP_SHIFT_GRP, F_MODRM_IMM8, writes_flags=True),
    "shr": OpcodeInfo("shr", OP_SHIFT_GRP, F_MODRM_IMM8, writes_flags=True),
    "sar": OpcodeInfo("sar", OP_SHIFT_GRP, F_MODRM_IMM8, writes_flags=True),
    # Indirect control transfers (0xFF group).
    "calli": OpcodeInfo("calli", OP_FF_GRP, F_MODRM, is_control=True),
    "jmpi": OpcodeInfo("jmpi", OP_FF_GRP, F_MODRM, is_control=True),
}

# Conditional branches get one logical mnemonic per condition; both the
# rel8 and rel32 encodings exist, the assembler picks rel32 by default.
JCC_OPCODES = {
    "j" + CC_NAMES[cc]: OpcodeInfo(
        "j" + CC_NAMES[cc], OP_JCC8_BASE + cc, F_CC_REL32, is_control=True
    )
    for cc in range(NUM_CC)
}

SHIFT_SUBOPS = {"shl": SHIFT_SHL, "shr": SHIFT_SHR, "sar": SHIFT_SAR}
SUBOP_TO_SHIFT = {v: k for k, v in SHIFT_SUBOPS.items()}

FF_SUBOPS = {"calli": FF_CALL, "jmpi": FF_JMP}
SUBOP_TO_FF = {v: k for k, v in FF_SUBOPS.items()}

#: Every mnemonic understood by the assembler / encoder.
MNEMONICS = {}
MNEMONICS.update(ALU_OPCODES)
MNEMONICS.update(SIMPLE_OPCODES)
MNEMONICS.update(JCC_OPCODES)

#: ALU opcode byte -> mnemonic, for the decoder.
ALU_BY_OPCODE = {info.opcode: name for name, info in ALU_OPCODES.items()}

#: Mnemonics whose F_MODRM form transfers control (0xFF group).
CONTROL_MODRM = frozenset(("calli", "jmpi"))


def lookup(mnemonic: str) -> OpcodeInfo:
    """Return the :class:`OpcodeInfo` for ``mnemonic`` (KeyError if unknown)."""
    return MNEMONICS[mnemonic]
