"""Two-pass assembler for RX86.

The assembler turns textual assembly into a :class:`BinaryImage` with
symbols and relocations.  It exists so that the workload suite (the
synthetic SPEC-like programs of :mod:`repro.workloads`) can be authored as
real programs, and so the randomizer has honest relocation information to
work from — mirroring the paper's toolchain where the rewriter starts from
a disassembled binary plus relocation info (Fig. 6).

Syntax overview
---------------

::

    ; comment (also '#')
    .section code 0x00400000   ; or: .code [base] / .data [base]
    .global main
    .equ    SIZE, 64

    main:                      ; label
        push ebp
        mov  ebp, esp          ; reg, reg
        movi eax, SIZE         ; reg, imm (constants fold)
        movi esi, table        ; label immediate -> relocation if code label
        mov  eax, [ebp-8]      ; load
        mov  [ebp-8], eax      ; store
        add  eax, 5            ; reg, imm32
        cmp  eax, ecx
        jl   main
        calli [esi+4]          ; jump-table call
        ret

    .section data 0x08000000
    table:
        .word main, main       ; code addresses -> relocations
        .byte 1, 2, 3
        .space 64
        .asciz "hello"
        .align 4

Numeric literals: decimal, ``0x`` hex, ``'c'`` characters, unary minus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..binary import (
    BinaryImage,
    FLAG_EXEC,
    FLAG_READ,
    FLAG_WRITE,
    KIND_CODE_IMM32,
    KIND_DATA_ABS32,
    Relocation,
    Section,
)
from ..binary.loader import CODE_BASE, DATA_BASE
from . import opcodes
from .encoder import encode, instruction_length, make
from .registers import is_reg_name, reg_number


class AssemblyError(ValueError):
    """Raised with a line number for any assembly-time problem."""

    def __init__(self, message: str, line: int = 0):
        super().__init__("line %d: %s" % (line, message) if line else message)
        self.line = line


# ---------------------------------------------------------------------------
# Operand model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegOperand:
    reg: int


@dataclass(frozen=True)
class ImmOperand:
    """Immediate: either a resolved value or a symbol reference."""

    value: int = 0
    symbol: Optional[str] = None


@dataclass(frozen=True)
class MemOperand:
    """``[base + disp]`` memory reference."""

    base: int
    disp: int = 0
    disp_symbol: Optional[str] = None


Operand = Union[RegOperand, ImmOperand, MemOperand]


# ---------------------------------------------------------------------------
# Parsed statements
# ---------------------------------------------------------------------------


@dataclass
class _Item:
    """One statement placed in a section during pass 1."""

    kind: str  # 'inst' | 'bytes' | 'words' | 'space'
    line: int
    addr: int = 0
    size: int = 0
    # instruction payload
    mnemonic: str = ""
    operands: Tuple[Operand, ...] = ()
    mode: Optional[int] = None
    # data payload
    values: Tuple = ()
    fill: int = 0


@dataclass
class _SectionState:
    name: str
    base: int
    flags: int
    items: List[_Item] = field(default_factory=list)
    cursor: int = 0  # size so far


_NUMBER_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


class Assembler:
    """Two-pass RX86 assembler producing a :class:`BinaryImage`."""

    def __init__(self):
        self._sections: Dict[str, _SectionState] = {}
        self._order: List[str] = []
        self._symbols: Dict[str, int] = {}
        self._func_symbols: set = set()
        self._equ: Dict[str, int] = {}
        self._globals: set = set()
        self._current: Optional[_SectionState] = None
        self._entry_symbol = "main"

    # -- public API ------------------------------------------------------------

    def assemble(self, source: str) -> BinaryImage:
        """Assemble ``source`` text and return the binary image."""
        self._pass1(source)
        return self._pass2()

    # -- pass 1: parse, lay out, collect symbols -------------------------------

    def _pass1(self, source: str) -> None:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            # Labels (possibly several, possibly followed by a statement).
            while True:
                match = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not match:
                    break
                self._define_label(match.group(1), lineno)
                line = line[match.end():]
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, lineno)
            else:
                self._instruction(line, lineno)

    def _require_section(self, lineno: int) -> _SectionState:
        if self._current is None:
            raise AssemblyError("statement outside any section", lineno)
        return self._current

    def _define_label(self, name: str, lineno: int) -> None:
        sec = self._require_section(lineno)
        if name in self._symbols or name in self._equ:
            raise AssemblyError("duplicate symbol %r" % name, lineno)
        self._symbols[name] = sec.base + sec.cursor
        if sec.flags & FLAG_EXEC and not name.startswith("."):
            self._func_symbols.add(name)

    def _switch_section(self, name: str, base: int, flags: int) -> None:
        if name in self._sections:
            self._current = self._sections[name]
        else:
            state = _SectionState(name, base, flags)
            self._sections[name] = state
            self._order.append(name)
            self._current = state

    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        if name == ".code":
            base = self._parse_number(rest, lineno) if rest else CODE_BASE
            self._switch_section("code", base, FLAG_READ | FLAG_EXEC)
        elif name == ".data":
            base = self._parse_number(rest, lineno) if rest else DATA_BASE
            self._switch_section("data", base, FLAG_READ | FLAG_WRITE)
        elif name == ".section":
            args = rest.split()
            if not args:
                raise AssemblyError(".section requires a name", lineno)
            sec_name = args[0]
            base = self._parse_number(args[1], lineno) if len(args) > 1 else (
                CODE_BASE if sec_name == "code" else DATA_BASE
            )
            flags = FLAG_READ | (
                FLAG_EXEC if sec_name.startswith("code") else FLAG_WRITE
            )
            self._switch_section(sec_name, base, flags)
        elif name == ".global":
            self._globals.add(rest.strip())
        elif name == ".entry":
            self._entry_symbol = rest.strip()
        elif name == ".equ":
            args = [a.strip() for a in rest.split(",")]
            if len(args) != 2:
                raise AssemblyError(".equ requires 'name, value'", lineno)
            if args[0] in self._equ or args[0] in self._symbols:
                raise AssemblyError("duplicate symbol %r" % args[0], lineno)
            self._equ[args[0]] = self._parse_number(args[1], lineno)
        elif name == ".byte":
            values = tuple(
                self._parse_value(tok.strip(), lineno) for tok in rest.split(",")
            )
            self._emit_item(_Item("bytes", lineno, values=values, size=len(values)))
        elif name == ".word":
            values = tuple(
                self._parse_value(tok.strip(), lineno) for tok in rest.split(",")
            )
            self._emit_item(_Item("words", lineno, values=values, size=4 * len(values)))
        elif name == ".space":
            args = [a.strip() for a in rest.split(",")]
            count = self._parse_number(args[0], lineno)
            fill = self._parse_number(args[1], lineno) if len(args) > 1 else 0
            self._emit_item(_Item("space", lineno, size=count, fill=fill))
        elif name in (".ascii", ".asciz"):
            text = _parse_string(rest, lineno)
            payload = text.encode() + (b"\x00" if name == ".asciz" else b"")
            values = tuple(ImmOperand(b) for b in payload)
            self._emit_item(_Item("bytes", lineno, values=values, size=len(payload)))
        elif name == ".align":
            boundary = self._parse_number(rest, lineno)
            sec = self._require_section(lineno)
            pad = (-(sec.base + sec.cursor)) % boundary
            if pad:
                self._emit_item(_Item("space", lineno, size=pad, fill=0x90))
        else:
            raise AssemblyError("unknown directive %r" % name, lineno)

    def _emit_item(self, item: _Item) -> None:
        sec = self._require_section(item.line)
        item.addr = sec.base + sec.cursor
        sec.items.append(item)
        sec.cursor += item.size

    # -- instruction parsing ------------------------------------------------------

    def _instruction(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            self._parse_operand(tok.strip(), lineno)
            for tok in _split_operands(operand_text)
            if tok.strip()
        )
        mnemonic, mode = self._select_form(mnemonic, operands, lineno)
        size = instruction_length(mnemonic, mode)
        self._emit_item(
            _Item("inst", lineno, mnemonic=mnemonic, operands=operands,
                  mode=mode, size=size)
        )

    def _select_form(self, mnemonic: str, operands, lineno: int):
        """Choose the concrete mnemonic and ModRM mode for the operand shapes."""
        if mnemonic == "mov" and len(operands) == 2 and isinstance(
            operands[0], RegOperand
        ) and isinstance(operands[1], ImmOperand):
            # Canonicalize 'mov reg, imm' to the short movi encoding.
            return "movi", None

        if mnemonic not in opcodes.MNEMONICS:
            raise AssemblyError("unknown mnemonic %r" % mnemonic, lineno)
        info = opcodes.MNEMONICS[mnemonic]

        if info.fmt != opcodes.F_MODRM:
            self._check_arity(mnemonic, info, operands, lineno)
            return mnemonic, None

        if mnemonic in opcodes.CONTROL_MODRM:
            if len(operands) != 1:
                raise AssemblyError("%s takes one operand" % mnemonic, lineno)
            if isinstance(operands[0], RegOperand):
                return mnemonic, opcodes.MODE_RR
            if isinstance(operands[0], MemOperand):
                return mnemonic, opcodes.MODE_RM
            raise AssemblyError(
                "%s needs a register or memory operand" % mnemonic, lineno
            )

        if len(operands) != 2:
            raise AssemblyError("%s takes two operands" % mnemonic, lineno)
        dst, src = operands
        if isinstance(dst, RegOperand) and isinstance(src, RegOperand):
            if mnemonic == "lea":
                raise AssemblyError("lea source must be a memory operand", lineno)
            return mnemonic, opcodes.MODE_RR
        if isinstance(dst, RegOperand) and isinstance(src, MemOperand):
            return mnemonic, opcodes.MODE_RM
        if isinstance(dst, MemOperand) and isinstance(src, RegOperand):
            if mnemonic == "lea":
                raise AssemblyError("lea destination must be a register", lineno)
            return mnemonic, opcodes.MODE_MR
        if isinstance(dst, RegOperand) and isinstance(src, ImmOperand):
            if mnemonic == "lea":
                raise AssemblyError("lea source must be a memory operand", lineno)
            return mnemonic, opcodes.MODE_RI
        raise AssemblyError("bad operand combination for %s" % mnemonic, lineno)

    @staticmethod
    def _check_arity(mnemonic, info, operands, lineno):
        fmt = info.fmt
        expected = {
            opcodes.F_NONE: 0,
            opcodes.F_REG_IN_OP: 1,
            opcodes.F_REG_IMM32: 2,
            opcodes.F_REL8: 1,
            opcodes.F_REL32: 1,
            opcodes.F_CC_REL32: 1,
            opcodes.F_IMM8: 1,
            opcodes.F_MODRM_IMM8: 2,
        }[fmt]
        if len(operands) != expected:
            raise AssemblyError(
                "%s takes %d operand(s), got %d" % (mnemonic, expected, len(operands)),
                lineno,
            )

    # -- operand parsing ----------------------------------------------------------

    def _parse_operand(self, text: str, lineno: int) -> Operand:
        if not text:
            raise AssemblyError("empty operand", lineno)
        if text.startswith("["):
            if not text.endswith("]"):
                raise AssemblyError("unterminated memory operand %r" % text, lineno)
            return self._parse_mem(text[1:-1].strip(), lineno)
        if is_reg_name(text):
            return RegOperand(reg_number(text))
        return self._parse_value(text, lineno)

    def _parse_mem(self, inner: str, lineno: int) -> MemOperand:
        match = re.match(r"^([A-Za-z]+)\s*([+-].*)?$", inner)
        if not match or not is_reg_name(match.group(1)):
            raise AssemblyError("memory operand needs a base register: %r" % inner,
                                lineno)
        base = reg_number(match.group(1))
        disp_text = (match.group(2) or "").replace(" ", "")
        if not disp_text:
            return MemOperand(base, 0)
        sign = -1 if disp_text[0] == "-" else 1
        body = disp_text[1:]
        if _NUMBER_RE.match(body):
            return MemOperand(base, sign * self._parse_number(body, lineno))
        if _LABEL_RE.match(body):
            if sign < 0:
                raise AssemblyError("cannot negate symbol displacement", lineno)
            if body in self._equ:
                return MemOperand(base, self._equ[body])
            return MemOperand(base, 0, disp_symbol=body)
        raise AssemblyError("bad displacement %r" % disp_text, lineno)

    def _parse_value(self, text: str, lineno: int) -> ImmOperand:
        if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
            body = text[1:-1]
            decoded = body.encode().decode("unicode_escape")
            if len(decoded) != 1:
                raise AssemblyError("bad character literal %r" % text, lineno)
            return ImmOperand(ord(decoded))
        if _NUMBER_RE.match(text):
            return ImmOperand(self._parse_number(text, lineno))
        if _LABEL_RE.match(text):
            if text in self._equ:
                return ImmOperand(self._equ[text])
            return ImmOperand(symbol=text)
        raise AssemblyError("bad value %r" % text, lineno)

    @staticmethod
    def _parse_number(text: str, lineno: int) -> int:
        text = text.strip()
        if not _NUMBER_RE.match(text):
            raise AssemblyError("bad number %r" % text, lineno)
        return int(text, 0)

    # -- pass 2: resolve and encode --------------------------------------------------

    def _pass2(self) -> BinaryImage:
        image = BinaryImage()
        code_ranges = [
            (s.base, s.base + s.cursor)
            for s in self._sections.values()
            if s.flags & FLAG_EXEC
        ]

        def is_code(addr: int) -> bool:
            return any(lo <= addr < hi for lo, hi in code_ranges)

        for name in self._order:
            state = self._sections[name]
            data = bytearray()
            for item in state.items:
                payload = self._encode_item(item, image, is_code)
                if len(payload) != item.size:
                    raise AssemblyError(
                        "internal: size mismatch for %r (%d != %d)"
                        % (item.mnemonic or item.kind, len(payload), item.size),
                        item.line,
                    )
                data += payload
            image.add_section(Section(state.name, state.base, data, state.flags))

        for sym_name, addr in sorted(self._symbols.items()):
            image.symbols.add(
                sym_name, addr,
                is_func=sym_name in self._func_symbols and is_code(addr),
            )
        if self._entry_symbol in self._symbols:
            image.entry = self._symbols[self._entry_symbol]
        elif code_ranges:
            image.entry = min(lo for lo, _hi in code_ranges)
        return image

    def _resolve(self, operand: ImmOperand, lineno: int) -> int:
        if operand.symbol is None:
            return operand.value
        if operand.symbol in self._symbols:
            return self._symbols[operand.symbol]
        if operand.symbol in self._equ:
            return self._equ[operand.symbol]
        raise AssemblyError("undefined symbol %r" % operand.symbol, lineno)

    def _encode_item(self, item: _Item, image: BinaryImage, is_code) -> bytes:
        if item.kind == "space":
            return bytes([item.fill & 0xFF]) * item.size

        if item.kind == "bytes":
            out = bytearray()
            for val in item.values:
                out.append(self._resolve(val, item.line) & 0xFF)
            return bytes(out)

        if item.kind == "words":
            out = bytearray()
            for idx, val in enumerate(item.values):
                resolved = self._resolve(val, item.line)
                slot = item.addr + 4 * idx
                if isinstance(val, ImmOperand) and val.symbol and is_code(resolved):
                    image.relocations.append(
                        Relocation(slot, KIND_DATA_ABS32, resolved)
                    )
                out += resolved.to_bytes(4, "little", signed=resolved < 0)
            return bytes(out)

        return self._encode_instruction(item, image, is_code)

    def _encode_instruction(self, item: _Item, image: BinaryImage, is_code) -> bytes:
        m = item.mnemonic
        ops = item.operands
        line = item.line
        fields: Dict[str, int] = {}
        reloc: Optional[Relocation] = None

        info = opcodes.MNEMONICS[m]
        fmt = info.fmt

        if fmt == opcodes.F_REG_IN_OP:
            fields["reg"] = self._expect_reg(ops[0], m, line)
        elif fmt == opcodes.F_REG_IMM32:
            fields["reg"] = self._expect_reg(ops[0], m, line)
            imm = self._resolve(self._expect_imm(ops[1], m, line), line)
            fields["imm"] = imm
            if isinstance(ops[1], ImmOperand) and ops[1].symbol and is_code(imm):
                # The imm32 lives 1 byte into the encoding.
                reloc = Relocation(item.addr + 1, KIND_CODE_IMM32, imm)
        elif fmt in (opcodes.F_REL8, opcodes.F_REL32, opcodes.F_CC_REL32):
            target = self._resolve(self._expect_imm(ops[0], m, line), line)
            fields["imm"] = target - (item.addr + item.size)
        elif fmt == opcodes.F_IMM8:
            fields["imm"] = self._resolve(self._expect_imm(ops[0], m, line), line)
        elif fmt == opcodes.F_MODRM_IMM8:
            fields["rm"] = self._expect_reg(ops[0], m, line)
            fields["imm"] = self._resolve(self._expect_imm(ops[1], m, line), line)
        elif fmt == opcodes.F_MODRM:
            reloc = self._fill_modrm(item, ops, fields, image, is_code)
        # F_NONE: nothing to fill.

        inst = make(m, addr=item.addr, mode=item.mode, **fields)
        if reloc is not None:
            image.relocations.append(reloc)
        return encode(inst)

    def _fill_modrm(self, item, ops, fields, image, is_code):
        m = item.mnemonic
        line = item.line
        mode = item.mode
        reloc = None

        if m in opcodes.CONTROL_MODRM:
            if mode == opcodes.MODE_RR:
                fields["rm"] = self._expect_reg(ops[0], m, line)
            else:
                mem = ops[0]
                fields["rm"] = mem.base
                fields["disp"] = self._mem_disp(mem, line)
            return None

        dst, src = ops
        if mode == opcodes.MODE_RR:
            fields["reg"] = dst.reg
            fields["rm"] = src.reg
        elif mode == opcodes.MODE_RM:
            fields["reg"] = dst.reg
            fields["rm"] = src.base
            fields["disp"] = self._mem_disp(src, line)
        elif mode == opcodes.MODE_MR:
            fields["reg"] = src.reg
            fields["rm"] = dst.base
            fields["disp"] = self._mem_disp(dst, line)
        else:  # MODE_RI
            fields["reg"] = dst.reg
            imm = self._resolve(src, line)
            fields["imm"] = imm
            if src.symbol and is_code(imm):
                # imm32 lives 2 bytes into the 6-byte RI encoding.
                reloc = Relocation(item.addr + 2, KIND_CODE_IMM32, imm)
        return reloc

    def _mem_disp(self, mem: MemOperand, line: int) -> int:
        if mem.disp_symbol is not None:
            if mem.disp_symbol in self._symbols:
                return self._symbols[mem.disp_symbol]
            if mem.disp_symbol in self._equ:
                return self._equ[mem.disp_symbol]
            raise AssemblyError("undefined symbol %r" % mem.disp_symbol, line)
        return mem.disp

    @staticmethod
    def _expect_reg(operand, mnemonic, line) -> int:
        if not isinstance(operand, RegOperand):
            raise AssemblyError("%s expects a register operand" % mnemonic, line)
        return operand.reg

    @staticmethod
    def _expect_imm(operand, mnemonic, line) -> ImmOperand:
        if not isinstance(operand, ImmOperand):
            raise AssemblyError("%s expects an immediate operand" % mnemonic, line)
        return operand


def _strip_comment(line: str) -> str:
    in_string = False
    for idx, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char in ";#" and not in_string:
            return line[:idx]
    return line


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside brackets or quotes."""
    parts = []
    depth = 0
    current = []
    in_quote = False
    for char in text:
        if char == "'" and not in_quote:
            in_quote = True
            current.append(char)
        elif char == "'" and in_quote:
            in_quote = False
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0 and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _parse_string(text: str, lineno: int) -> str:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblyError("expected a quoted string", lineno)
    return text[1:-1].encode().decode("unicode_escape")


def assemble(source: str) -> BinaryImage:
    """Assemble ``source`` and return the :class:`BinaryImage`."""
    return Assembler().assemble(source)
