"""Decoded instruction model for RX86.

A :class:`Instruction` is the normal-form representation produced by the
decoder and consumed by the executor, the static analyses, the randomizer
and the gadget scanner.  It is deliberately flat (plain integer fields,
``__slots__`` storage) so the cycle simulator can interrogate it cheaply
in its hot loop: the slot layout keeps every field access monomorphic —
no per-instance ``__dict__`` probe — which matters when the block fast
path replays millions of pre-decoded instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import opcodes
from .registers import reg_name


@dataclass(slots=True)
class Instruction:
    """One decoded RX86 instruction.

    Attributes
    ----------
    mnemonic:
        Canonical lowercase mnemonic (``add``, ``jz``, ``calli`` …).
    addr:
        Address the instruction was decoded at (original address space).
    length:
        Encoded length in bytes.
    mode:
        ModRM addressing mode (``MODE_RR``/``RM``/``MR``/``RI``) or None.
    reg / rm:
        ModRM register fields (register numbers, or sub-opcode for groups).
    disp:
        Signed 32-bit displacement for memory operands.
    imm:
        Immediate value: imm32/imm8, or the *relative* branch displacement
        for rel8/rel32 forms (signed).
    cc:
        Condition code for conditional branches, else None.
    """

    mnemonic: str
    addr: int
    length: int
    mode: Optional[int] = None
    reg: Optional[int] = None
    rm: Optional[int] = None
    disp: int = 0
    imm: int = 0
    cc: Optional[int] = None

    # -- classification ----------------------------------------------------

    @property
    def is_control(self) -> bool:
        """True for every control transfer (branch, jump, call, ret)."""
        return self.mnemonic in _CONTROL

    @property
    def is_direct_branch(self) -> bool:
        """True for PC-relative transfers whose target is encoded inline."""
        return self.mnemonic in _DIRECT

    @property
    def is_indirect_branch(self) -> bool:
        """True for register/memory-indirect transfers and ``ret``."""
        return self.mnemonic in _INDIRECT

    @property
    def is_conditional(self) -> bool:
        return self.cc is not None

    @property
    def is_call(self) -> bool:
        return self.mnemonic in ("call", "calli")

    @property
    def is_return(self) -> bool:
        return self.mnemonic == "ret"

    @property
    def is_halt(self) -> bool:
        return self.mnemonic == "halt"

    @property
    def next_addr(self) -> int:
        """Fall-through address (original address space)."""
        return self.addr + self.length

    @property
    def target(self) -> Optional[int]:
        """Static target of a direct branch, else None."""
        if self.mnemonic in _DIRECT:
            return (self.addr + self.length + self.imm) & 0xFFFFFFFF
        return None

    @property
    def reads_memory(self) -> bool:
        if self.mnemonic == "lea":
            return False
        if self.mode == opcodes.MODE_RM:
            return True
        if self.mnemonic == "jmpi" or self.mnemonic == "calli":
            return self.mode == opcodes.MODE_RM
        return self.mnemonic in ("pop", "ret", "leave")

    @property
    def writes_memory(self) -> bool:
        if self.mode == opcodes.MODE_MR:
            return True
        return self.mnemonic in ("push", "call", "calli")

    # -- pretty printing ----------------------------------------------------

    def __str__(self) -> str:
        return "%08x: %s" % (self.addr, self.text())

    def text(self) -> str:
        """Render assembler-compatible text for this instruction."""
        m = self.mnemonic
        if m in ("nop", "halt", "ret", "leave"):
            return m
        if m in ("push", "pop"):
            return "%s %s" % (m, reg_name(self.reg))
        if m == "movi":
            return "movi %s, %d" % (reg_name(self.reg), self.imm)
        if m == "int":
            return "int %d" % self.imm
        if m in ("call", "jmp", "jmp8") or (self.cc is not None):
            base = "jmp" if m == "jmp8" else m
            return "%s 0x%x" % (base, self.target)
        if m in ("shl", "shr", "sar"):
            return "%s %s, %d" % (m, reg_name(self.rm), self.imm)
        if m in ("calli", "jmpi"):
            if self.mode == opcodes.MODE_RR:
                return "%s %s" % (m, reg_name(self.rm))
            return "%s [%s%+d]" % (m, reg_name(self.rm), self.disp)
        # Two-operand ALU / mov / lea forms.
        if self.mode == opcodes.MODE_RR:
            return "%s %s, %s" % (m, reg_name(self.reg), reg_name(self.rm))
        if self.mode == opcodes.MODE_RM:
            return "%s %s, [%s%+d]" % (m, reg_name(self.reg), reg_name(self.rm), self.disp)
        if self.mode == opcodes.MODE_MR:
            return "%s [%s%+d], %s" % (m, reg_name(self.rm), self.disp, reg_name(self.reg))
        return "%s %s, %d" % (m, reg_name(self.reg), self.imm)


_DIRECT = frozenset(
    ["call", "jmp", "jmp8"] + ["j" + name for name in opcodes.CC_NAMES]
)
_INDIRECT = frozenset(["calli", "jmpi", "ret"])
_CONTROL = _DIRECT | _INDIRECT
