"""Binary encoder for RX86 instructions.

The encoder turns :class:`~repro.isa.instruction.Instruction` objects (or
keyword specifications) into byte sequences.  It is the inverse of
:mod:`repro.isa.decoder`; round-tripping is covered by property tests.
"""

from __future__ import annotations

import struct
from typing import Optional

from . import opcodes
from .instruction import Instruction

MASK32 = 0xFFFFFFFF


class EncodeError(ValueError):
    """Raised when an instruction specification cannot be encoded."""


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & MASK32)


def _i8(value: int) -> bytes:
    if not -128 <= value <= 127:
        raise EncodeError("value %d does not fit in 8 bits" % value)
    return struct.pack("<b", value)


def _modrm(mode: int, reg: int, rm: int) -> int:
    return ((mode & 3) << 6) | ((reg & 7) << 3) | (rm & 7)


def instruction_length(mnemonic: str, mode: Optional[int] = None) -> int:
    """Return the encoded length of ``mnemonic`` with ModRM ``mode``.

    Lengths are static per (mnemonic, mode) pair; the assembler uses this
    for layout before the final encoding pass.
    """
    info = opcodes.lookup(mnemonic)
    fmt = info.fmt
    if fmt == opcodes.F_NONE or fmt == opcodes.F_REG_IN_OP:
        return 1
    if fmt == opcodes.F_REL8 or fmt == opcodes.F_IMM8:
        return 2
    if fmt == opcodes.F_MODRM_IMM8:
        return 3
    if fmt == opcodes.F_REL32 or fmt == opcodes.F_REG_IMM32:
        return 5
    if fmt == opcodes.F_CC_REL32:
        return 6
    if fmt == opcodes.F_MODRM:
        if mode is None:
            raise EncodeError("%s requires an addressing mode" % mnemonic)
        return 2 if mode == opcodes.MODE_RR else 6
    raise EncodeError("unknown format %r" % fmt)


def encode(inst: Instruction) -> bytes:
    """Encode a decoded/constructed :class:`Instruction` into bytes."""
    m = inst.mnemonic
    info = opcodes.lookup(m)
    fmt = info.fmt

    if fmt == opcodes.F_NONE:
        return bytes([info.opcode])

    if fmt == opcodes.F_REG_IN_OP:
        return bytes([info.opcode + (inst.reg & 7)])

    if fmt == opcodes.F_REG_IMM32:
        return bytes([info.opcode + (inst.reg & 7)]) + _u32(inst.imm)

    if fmt == opcodes.F_REL8:
        return bytes([info.opcode]) + _i8(inst.imm)

    if fmt == opcodes.F_REL32:
        return bytes([info.opcode]) + _u32(inst.imm)

    if fmt == opcodes.F_CC_REL32:
        cc = inst.cc
        if cc is None:
            raise EncodeError("%s requires a condition code" % m)
        return bytes([opcodes.OP_TWO_BYTE, opcodes.OP2_JCC32_BASE + cc]) + _u32(inst.imm)

    if fmt == opcodes.F_IMM8:
        return bytes([info.opcode, inst.imm & 0xFF])

    if fmt == opcodes.F_MODRM_IMM8:
        subop = opcodes.SHIFT_SUBOPS[m]
        modrm = _modrm(opcodes.MODE_RR, subop, inst.rm)
        return bytes([info.opcode, modrm, inst.imm & 0xFF])

    if fmt == opcodes.F_MODRM:
        if m in opcodes.CONTROL_MODRM:
            subop = opcodes.FF_SUBOPS[m]
            if inst.mode == opcodes.MODE_RR:
                return bytes([info.opcode, _modrm(opcodes.MODE_RR, subop, inst.rm)])
            if inst.mode == opcodes.MODE_RM:
                return (
                    bytes([info.opcode, _modrm(opcodes.MODE_RM, subop, inst.rm)])
                    + _u32(inst.disp)
                )
            raise EncodeError("%s supports register or memory form only" % m)
        mode = inst.mode
        if mode is None:
            raise EncodeError("%s requires an addressing mode" % m)
        if m == "lea" and mode != opcodes.MODE_RM:
            raise EncodeError("lea only supports the reg, [mem] form")
        head = bytes([info.opcode, _modrm(mode, inst.reg or 0, inst.rm or 0)])
        if mode == opcodes.MODE_RR:
            return head
        if mode in (opcodes.MODE_RM, opcodes.MODE_MR):
            return head + _u32(inst.disp)
        return head + _u32(inst.imm)

    raise EncodeError("unknown format %r" % fmt)


def make(mnemonic: str, addr: int = 0, **fields) -> Instruction:
    """Convenience constructor: build an :class:`Instruction` with computed length."""
    mode = fields.get("mode")
    inst = Instruction(
        mnemonic=mnemonic,
        addr=addr,
        length=instruction_length(mnemonic, mode),
        mode=mode,
        reg=fields.get("reg"),
        rm=fields.get("rm"),
        disp=fields.get("disp", 0),
        imm=fields.get("imm", 0),
        cc=fields.get("cc"),
    )
    if mnemonic.startswith("j") and mnemonic not in ("jmp", "jmp8", "jmpi"):
        inst.cc = opcodes.cc_number(mnemonic[1:])
    return inst
