"""Binary decoder for RX86.

``decode`` turns bytes at an address into an :class:`Instruction`.  The
decoder is shared by

* the functional executor and the cycle simulator (instruction fetch),
* the disassembler (recursive descent and linear sweep), and
* the ROP-gadget scanner, which decodes at *every* byte offset — exactly
  like ROPgadget does on real x86 — so the decoder must fail cleanly on
  junk bytes (:class:`DecodeError`) rather than crash.
"""

from __future__ import annotations

import struct

from . import opcodes
from .instruction import Instruction


class DecodeError(ValueError):
    """Raised when the byte sequence is not a valid RX86 instruction."""


#: Pre-built conditional-branch mnemonics ("jz", "jnz", ...), indexed by
#: condition code — decoding a Jcc must not concatenate strings (the
#: mnemonic strings stay interned and identical across all decodes, which
#: keeps downstream string compares pointer-fast).
_JCC_MNEMONICS = tuple("j" + name for name in opcodes.CC_NAMES)


def _i32(data, offset: int) -> int:
    return struct.unpack_from("<i", data, offset)[0]


def _u32(data, offset: int) -> int:
    return struct.unpack_from("<I", data, offset)[0]


def _i8(data, offset: int) -> int:
    return struct.unpack_from("<b", data, offset)[0]


def _need(data, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise DecodeError("truncated instruction")


def decode(data, offset: int = 0, addr: int = 0) -> Instruction:
    """Decode one instruction from ``data`` starting at ``offset``.

    ``addr`` is the architectural address of the instruction, used to
    compute direct branch targets.  Raises :class:`DecodeError` on any
    invalid or truncated encoding.
    """
    _need(data, offset, 1)
    op = data[offset]

    # -- one-byte instructions ---------------------------------------------
    if op == opcodes.OP_NOP:
        return Instruction("nop", addr, 1)
    if op == opcodes.OP_HALT:
        return Instruction("halt", addr, 1)
    if op == opcodes.OP_RET:
        return Instruction("ret", addr, 1)
    if op == opcodes.OP_LEAVE:
        return Instruction("leave", addr, 1)

    if opcodes.OP_PUSH_BASE <= op < opcodes.OP_PUSH_BASE + 8:
        return Instruction("push", addr, 1, reg=op - opcodes.OP_PUSH_BASE)
    if opcodes.OP_POP_BASE <= op < opcodes.OP_POP_BASE + 8:
        return Instruction("pop", addr, 1, reg=op - opcodes.OP_POP_BASE)

    # -- immediates ----------------------------------------------------------
    if opcodes.OP_MOVI_BASE <= op < opcodes.OP_MOVI_BASE + 8:
        _need(data, offset, 5)
        return Instruction(
            "movi", addr, 5, reg=op - opcodes.OP_MOVI_BASE, imm=_u32(data, offset + 1)
        )

    if op == opcodes.OP_INT:
        _need(data, offset, 2)
        return Instruction("int", addr, 2, imm=data[offset + 1])

    # -- direct control transfers ---------------------------------------------
    if op == opcodes.OP_CALL:
        _need(data, offset, 5)
        return Instruction("call", addr, 5, imm=_i32(data, offset + 1))
    if op == opcodes.OP_JMP:
        _need(data, offset, 5)
        return Instruction("jmp", addr, 5, imm=_i32(data, offset + 1))
    if op == opcodes.OP_JMP8:
        _need(data, offset, 2)
        return Instruction("jmp8", addr, 2, imm=_i8(data, offset + 1))

    if opcodes.OP_JCC8_BASE <= op < opcodes.OP_JCC8_BASE + opcodes.NUM_CC:
        _need(data, offset, 2)
        cc = op - opcodes.OP_JCC8_BASE
        # rel8 Jcc shares the logical mnemonic with the rel32 form but keeps
        # its own 2-byte length.
        return Instruction(
            _JCC_MNEMONICS[cc], addr, 2, imm=_i8(data, offset + 1), cc=cc
        )

    if op == opcodes.OP_TWO_BYTE:
        _need(data, offset, 2)
        op2 = data[offset + 1]
        if opcodes.OP2_JCC32_BASE <= op2 < opcodes.OP2_JCC32_BASE + opcodes.NUM_CC:
            _need(data, offset, 6)
            cc = op2 - opcodes.OP2_JCC32_BASE
            return Instruction(
                _JCC_MNEMONICS[cc], addr, 6, imm=_i32(data, offset + 2), cc=cc
            )
        raise DecodeError("bad two-byte opcode 0x0f 0x%02x" % op2)

    # -- shift group ----------------------------------------------------------
    if op == opcodes.OP_SHIFT_GRP:
        _need(data, offset, 3)
        modrm = data[offset + 1]
        subop = (modrm >> 3) & 7
        if subop not in opcodes.SUBOP_TO_SHIFT:
            raise DecodeError("bad shift sub-opcode %d" % subop)
        if (modrm >> 6) & 3 != opcodes.MODE_RR:
            raise DecodeError("shift group requires register form")
        return Instruction(
            opcodes.SUBOP_TO_SHIFT[subop],
            addr,
            3,
            mode=opcodes.MODE_RR,
            reg=subop,
            rm=modrm & 7,
            imm=data[offset + 2],
        )

    # -- indirect control transfer group ---------------------------------------
    if op == opcodes.OP_FF_GRP:
        _need(data, offset, 2)
        modrm = data[offset + 1]
        mode = (modrm >> 6) & 3
        subop = (modrm >> 3) & 7
        rm = modrm & 7
        if subop not in opcodes.SUBOP_TO_FF:
            raise DecodeError("bad 0xff sub-opcode %d" % subop)
        mnemonic = opcodes.SUBOP_TO_FF[subop]
        if mode == opcodes.MODE_RR:
            return Instruction(mnemonic, addr, 2, mode=mode, reg=subop, rm=rm)
        if mode == opcodes.MODE_RM:
            _need(data, offset, 6)
            return Instruction(
                mnemonic, addr, 6, mode=mode, reg=subop, rm=rm,
                disp=_i32(data, offset + 2),
            )
        raise DecodeError("bad 0xff addressing mode %d" % mode)

    # -- two-operand ALU / mov / lea --------------------------------------------
    if op in opcodes.ALU_BY_OPCODE:
        mnemonic = opcodes.ALU_BY_OPCODE[op]
        _need(data, offset, 2)
        modrm = data[offset + 1]
        mode = (modrm >> 6) & 3
        reg = (modrm >> 3) & 7
        rm = modrm & 7
        if mode == opcodes.MODE_RR:
            if mnemonic == "lea":
                raise DecodeError("lea requires a memory operand")
            return Instruction(mnemonic, addr, 2, mode=mode, reg=reg, rm=rm)
        _need(data, offset, 6)
        if mode in (opcodes.MODE_RM, opcodes.MODE_MR):
            if mnemonic == "lea" and mode != opcodes.MODE_RM:
                raise DecodeError("lea requires the load form")
            return Instruction(
                mnemonic, addr, 6, mode=mode, reg=reg, rm=rm,
                disp=_i32(data, offset + 2),
            )
        if mnemonic == "lea":
            raise DecodeError("lea requires a memory operand")
        return Instruction(
            mnemonic, addr, 6, mode=mode, reg=reg, rm=rm, imm=_u32(data, offset + 2)
        )

    raise DecodeError("unknown opcode 0x%02x" % op)


def try_decode(data, offset: int = 0, addr: int = 0):
    """Like :func:`decode` but returns None instead of raising."""
    try:
        return decode(data, offset, addr)
    except DecodeError:
        return None
