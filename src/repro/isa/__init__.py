"""RX86: the x86-like variable-length instruction set used by this repo.

Public surface:

* :func:`assemble` — text to :class:`~repro.binary.BinaryImage`,
* :func:`decode` / :func:`encode` — bytes <-> :class:`Instruction`,
* register and opcode tables, :class:`Flags`, syscall ABI.
"""

from . import opcodes
from .assembler import Assembler, AssemblyError, assemble
from .decoder import DecodeError, decode, try_decode
from .encoder import EncodeError, encode, instruction_length, make
from .flags import Flags, to_signed32
from .instruction import Instruction
from .registers import (
    EAX,
    EBP,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    ESP,
    NUM_REGS,
    RegisterFile,
    reg_name,
    reg_number,
)
from .syscalls import (
    SYS_EMIT,
    SYS_EXIT,
    SYS_ICOUNT,
    SYS_PUTC,
    SYSCALL_VECTOR,
    OutputStream,
    SyscallError,
)

__all__ = [
    "opcodes",
    "assemble",
    "Assembler",
    "AssemblyError",
    "decode",
    "try_decode",
    "DecodeError",
    "encode",
    "make",
    "instruction_length",
    "EncodeError",
    "Instruction",
    "Flags",
    "to_signed32",
    "RegisterFile",
    "reg_name",
    "reg_number",
    "NUM_REGS",
    "EAX",
    "ECX",
    "EDX",
    "EBX",
    "ESP",
    "EBP",
    "ESI",
    "EDI",
    "OutputStream",
    "SyscallError",
    "SYSCALL_VECTOR",
    "SYS_EXIT",
    "SYS_PUTC",
    "SYS_EMIT",
    "SYS_ICOUNT",
]
