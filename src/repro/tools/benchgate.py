"""Machine-readable benchmark-gate reports.

Every performance/quality gate in ``benchmarks/bench_*.py`` funnels
through this module so each pytest gate leaves a ``BENCH_<name>.json``
artifact next to its pass/fail — the perf trajectory across PRs is
then diffable instead of living only in CI logs.

Report shape (one file per bench, rewritten as its gates record)::

    {
      "bench": "hot_loop",
      "pass": true,
      "gates": [
        {"metric": "baseline_speedup", "value": 3.61,
         "threshold": 3.0, "op": ">=", "pass": true},
        ...
      ]
    }

Gates record *before* asserting, so a failing run still leaves a
report with ``"pass": false`` for the trajectory.  The output
directory is ``$BENCH_REPORT_DIR`` when set, else the current working
directory (the repo root under ``make verify``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = ["gate", "record", "emit_experiment", "report_path"]

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    "==": lambda value, threshold: value == threshold,
}

#: bench name -> accumulated gate records for this process.
_registry: Dict[str, List[dict]] = {}


def report_path(bench: str) -> str:
    """Filesystem path of ``bench``'s report."""
    out_dir = os.environ.get("BENCH_REPORT_DIR") or os.getcwd()
    return os.path.join(out_dir, "BENCH_%s.json" % bench)


def _flush(bench: str) -> None:
    gates = _registry[bench]
    payload = {
        "bench": bench,
        "pass": all(g["pass"] for g in gates),
        "gates": gates,
    }
    path = report_path(bench)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def record(bench: str, metric: str, value, threshold, op: str = ">=",
           **extra) -> bool:
    """Record one gate outcome into ``BENCH_<bench>.json``.

    Returns whether the gate passed; never raises on failure (use
    :func:`gate` for asserting callers)."""
    ok = bool(_OPS[op](value, threshold))
    entry = {"metric": metric, "value": value, "threshold": threshold,
             "op": op, "pass": ok}
    if extra:
        entry.update(extra)
    _registry.setdefault(bench, []).append(entry)
    _flush(bench)
    return ok


def gate(bench: str, metric: str, value, threshold, op: str = ">=",
         **extra) -> None:
    """Record one gate and assert it passed.

    The report is written before the assert, so a red gate still
    leaves its value on disk."""
    ok = record(bench, metric, value, threshold, op=op, **extra)
    assert ok, "%s: %s = %r not %s %r" % (bench, metric, value, op,
                                          threshold)


def emit_experiment(result, bench: Optional[str] = None) -> None:
    """Record every check of a harness ``ExperimentResult`` as a gate.

    Experiment checks are boolean facts rather than thresholded
    metrics, so each becomes ``value == True``.  Does not assert —
    callers keep their own ``assert result.passed`` semantics (see
    ``benchmarks/conftest.py:gate_result``)."""
    name = bench or result.exp_id
    gates = _registry.setdefault(name, [])
    for description, ok in result.checks:
        gates.append({"metric": description, "value": bool(ok),
                      "threshold": True, "op": "==", "pass": bool(ok)})
    _flush(name)
