"""Machine-readable benchmark-gate reports.

Every performance/quality gate in ``benchmarks/bench_*.py`` funnels
through this module so each pytest gate leaves a ``BENCH_<name>.json``
artifact next to its pass/fail — the perf trajectory across PRs is
then diffable instead of living only in CI logs.

Report shape (one file per bench, rewritten as its gates record)::

    {
      "bench": "hot_loop",
      "pass": true,
      "gates": [
        {"metric": "baseline_speedup", "value": 3.61,
         "threshold": 3.0, "op": ">=", "pass": true},
        ...
      ]
    }

Gates record *before* asserting, so a failing run still leaves a
report with ``"pass": false`` for the trajectory.  The output
directory is ``$BENCH_REPORT_DIR`` when set, else the current working
directory (the repo root under ``make verify``).

``python -m repro.tools.benchgate --compare`` is the *trend* check:
it diffs freshly written reports against the versions committed at
``HEAD`` (via ``git show``) and fails when a thresholded metric moved
in its regression direction by more than the tolerance — so a perf
slide that still clears its hard gate is caught at the PR that caused
it, not three PRs later when the gate finally trips.  ``make verify``
runs it after the benchmark legs.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

__all__ = ["gate", "record", "emit_experiment", "report_path",
           "compare_reports", "main"]

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    "==": lambda value, threshold: value == threshold,
}

#: bench name -> accumulated gate records for this process.
_registry: Dict[str, List[dict]] = {}


def report_path(bench: str) -> str:
    """Filesystem path of ``bench``'s report."""
    out_dir = os.environ.get("BENCH_REPORT_DIR") or os.getcwd()
    return os.path.join(out_dir, "BENCH_%s.json" % bench)


def _flush(bench: str) -> None:
    gates = _registry[bench]
    payload = {
        "bench": bench,
        "pass": all(g["pass"] for g in gates),
        "gates": gates,
    }
    path = report_path(bench)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def record(bench: str, metric: str, value, threshold, op: str = ">=",
           **extra) -> bool:
    """Record one gate outcome into ``BENCH_<bench>.json``.

    Returns whether the gate passed; never raises on failure (use
    :func:`gate` for asserting callers)."""
    ok = bool(_OPS[op](value, threshold))
    entry = {"metric": metric, "value": value, "threshold": threshold,
             "op": op, "pass": ok}
    if extra:
        entry.update(extra)
    _registry.setdefault(bench, []).append(entry)
    _flush(bench)
    return ok


def gate(bench: str, metric: str, value, threshold, op: str = ">=",
         **extra) -> None:
    """Record one gate and assert it passed.

    The report is written before the assert, so a red gate still
    leaves its value on disk."""
    ok = record(bench, metric, value, threshold, op=op, **extra)
    assert ok, "%s: %s = %r not %s %r" % (bench, metric, value, op,
                                          threshold)


def emit_experiment(result, bench: Optional[str] = None) -> None:
    """Record every check of a harness ``ExperimentResult`` as a gate.

    Experiment checks are boolean facts rather than thresholded
    metrics, so each becomes ``value == True``.  Does not assert —
    callers keep their own ``assert result.passed`` semantics (see
    ``benchmarks/conftest.py:gate_result``)."""
    name = bench or result.exp_id
    gates = _registry.setdefault(name, [])
    for description, ok in result.checks:
        gates.append({"metric": description, "value": bool(ok),
                      "threshold": True, "op": "==", "pass": bool(ok)})
    _flush(name)


# -- trend check (--compare) ------------------------------------------------

#: Relative drift allowed before a moved metric counts as a regression.
#: Generous by design: these are host wall-clock-derived numbers on a
#: shared machine; the hard thresholds inside each bench stay the
#: precision gate, this catches *large* slides early.
DEFAULT_TOLERANCE = 0.3


def _committed_report(name: str, rev: str = "HEAD") -> Optional[dict]:
    """The report committed at ``rev``, or None if absent there."""
    try:
        blob = subprocess.run(
            ["git", "show", "%s:BENCH_%s.json" % (rev, name)],
            capture_output=True, check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        return json.loads(blob)
    except ValueError:
        return None


def _committed_names(rev: str = "HEAD") -> List[str]:
    """Bench names with a ``BENCH_*.json`` committed at ``rev``."""
    try:
        out = subprocess.run(
            ["git", "ls-tree", "--name-only", rev],
            capture_output=True, check=True, text=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return []
    names = []
    for line in out.splitlines():
        if line.startswith("BENCH_") and line.endswith(".json"):
            names.append(line[len("BENCH_"):-len(".json")])
    return sorted(names)


def compare_reports(current: dict, baseline: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Regression messages for ``current`` vs the committed ``baseline``.

    The regression *direction* comes from each gate's op: ``>=``/``>``
    metrics are better high (a drop is a regression), ``<=``/``<``
    better low (a rise is).  ``==`` gates (boolean experiment checks)
    carry no direction and are skipped — their own ``pass`` field
    already gates them.  The allowed drift is
    ``tolerance * max(|baseline|, |threshold|)``: anchoring on the
    threshold keeps near-zero overhead metrics from flagging on
    absolute noise a fraction of their budget.
    """
    problems: List[str] = []
    if not current.get("pass", True):
        problems.append("report is failing its own gates")
    before = {g["metric"]: g for g in baseline.get("gates", [])
              if isinstance(g, dict) and "metric" in g}
    for entry in current.get("gates", []):
        metric = entry.get("metric")
        old = before.get(metric)
        op = entry.get("op")
        if old is None or op not in (">=", ">", "<=", "<"):
            continue
        try:
            value = float(entry["value"])
            base = float(old["value"])
            threshold = float(entry.get("threshold", 0.0))
        except (TypeError, ValueError):
            continue
        margin = tolerance * max(abs(base), abs(threshold))
        higher_is_better = op in (">=", ">")
        drift = base - value if higher_is_better else value - base
        if drift > margin:
            problems.append(
                "%s: %.6g -> %.6g (%s, allowed drift %.6g)"
                % (metric, base, value,
                   "dropped" if higher_is_better else "rose", margin))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.benchgate",
        description="Benchmark-gate report utilities.",
    )
    parser.add_argument("--compare", action="store_true",
                        help="diff fresh BENCH_*.json reports against "
                             "the versions committed at --rev and fail "
                             "on directional regressions")
    parser.add_argument("names", nargs="*",
                        help="bench names to compare (default: every "
                             "BENCH_*.json committed at --rev)")
    parser.add_argument("--rev", default="HEAD",
                        help="git revision holding the baselines "
                             "(default HEAD)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative drift allowed before a metric "
                             "is a regression (default %.2f)"
                             % DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)
    if not args.compare:
        parser.error("nothing to do (did you mean --compare?)")

    names = args.names or _committed_names(args.rev)
    if not names:
        # Bootstrap: nothing committed yet to regress against.  The
        # first `make verify` after the reports land starts gating.
        print("benchgate: no committed BENCH_*.json baselines at %s "
              "(bootstrap — nothing to compare)" % args.rev)
        return 0

    failed = False
    for name in names:
        baseline = _committed_report(name, args.rev)
        if baseline is None:
            print("%-20s no baseline at %s (new bench?) — skipped"
                  % (name, args.rev))
            continue
        path = report_path(name)
        try:
            with open(path) as fh:
                current = json.load(fh)
        except (OSError, ValueError):
            print("%-20s no fresh report at %s — skipped" % (name, path))
            continue
        problems = compare_reports(current, baseline, args.tolerance)
        if problems:
            failed = True
            print("%-20s REGRESSED" % name)
            for problem in problems:
                print("    %s" % problem)
        else:
            print("%-20s ok (%d gates vs %s)"
                  % (name, len(current.get("gates", [])), args.rev))
    if failed:
        print("benchgate: trend regression vs %s (tolerance %.0f%%)"
              % (args.rev, 100 * args.tolerance), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
